"""Envelope contract tests: lossless JSON round-trips, versioning.

The satellite requirement is byte-level honesty: any
:class:`VoiceResponse` the engine can produce must survive
``response_to_dict -> json -> response_from_dict`` unchanged — enums,
exact predicate value types, floats including ``-0.0`` — and anything
that would silently corrupt the wire (NaN, unknown schema versions,
malformed shapes) must fail loudly instead.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.envelopes import (
    SCHEMA_VERSION,
    EnvelopeError,
    VoiceRequest,
    query_from_dict,
    query_to_dict,
    response_from_dict,
    response_to_dict,
)
from repro.system.classification import RequestType
from repro.system.engine import ResponseKind, VoiceResponse
from repro.system.queries import DataQuery


def roundtrip(response: VoiceResponse) -> VoiceResponse:
    """Encode, push through real JSON text, decode."""
    wire = json.dumps(response_to_dict(response), allow_nan=False)
    return response_from_dict(json.loads(wire))


# ----------------------------------------------------------------------
# Strategies covering everything the engine can emit.
# ----------------------------------------------------------------------
finite_floats = st.floats(allow_nan=False, allow_infinity=False)
predicate_values = st.one_of(
    st.text(max_size=20),
    st.integers(min_value=-(2**53), max_value=2**53),
    finite_floats,
    st.booleans(),
)
queries = st.builds(
    lambda target, predicates: DataQuery.create(target, predicates),
    st.text(min_size=1, max_size=10),
    st.dictionaries(st.text(min_size=1, max_size=8), predicate_values, max_size=4),
)
responses = st.builds(
    VoiceResponse,
    kind=st.sampled_from(list(ResponseKind)),
    text=st.text(max_size=200),
    request_type=st.sampled_from(list(RequestType)),
    query=st.one_of(st.none(), queries),
    exact_match=st.booleans(),
    latency_seconds=finite_floats,
)


class TestResponseRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(responses)
    def test_round_trip_is_lossless(self, response):
        decoded = roundtrip(response)
        assert decoded == response
        # Dataclass equality treats -0.0 == 0.0; re-encoding must also
        # be byte-identical, which distinguishes signed zeros.
        assert json.dumps(response_to_dict(decoded), sort_keys=True) == json.dumps(
            response_to_dict(response), sort_keys=True
        )

    @settings(max_examples=100, deadline=None)
    @given(responses)
    def test_predicate_value_types_survive(self, response):
        decoded = roundtrip(response)
        if response.query is None:
            assert decoded.query is None
        else:
            for (_, original), (_, recovered) in zip(
                response.query.predicates, decoded.query.predicates
            ):
                assert type(recovered) is type(original)

    def test_negative_zero_survives_with_sign(self):
        response = VoiceResponse(
            kind=ResponseKind.SPEECH,
            text="zero",
            request_type=RequestType.SUPPORTED_QUERY,
            query=DataQuery.create("delay", {"x": -0.0}),
            latency_seconds=-0.0,
        )
        decoded = roundtrip(response)
        assert math.copysign(1.0, decoded.latency_seconds) == -1.0
        assert math.copysign(1.0, decoded.query.predicates[0][1]) == -1.0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_floats_are_rejected_at_encode_time(self, bad):
        response = VoiceResponse(
            kind=ResponseKind.SPEECH,
            text="x",
            request_type=RequestType.SUPPORTED_QUERY,
            latency_seconds=bad,
        )
        with pytest.raises(EnvelopeError, match="non-finite"):
            response_to_dict(response)
        with_query = VoiceResponse(
            kind=ResponseKind.SPEECH,
            text="x",
            request_type=RequestType.SUPPORTED_QUERY,
            query=DataQuery.create("delay", {"x": bad}),
        )
        with pytest.raises(EnvelopeError, match="non-finite"):
            response_to_dict(with_query)

    def test_request_id_is_echoed_only_when_given(self):
        response = VoiceResponse(
            kind=ResponseKind.HELP, text="h", request_type=RequestType.HELP
        )
        assert "request_id" not in response_to_dict(response)
        assert response_to_dict(response, request_id="r-1")["request_id"] == "r-1"

    def test_unknown_schema_version_is_rejected(self):
        payload = response_to_dict(
            VoiceResponse(kind=ResponseKind.HELP, text="h", request_type=RequestType.HELP)
        )
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(EnvelopeError, match="schema_version"):
            response_from_dict(payload)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("kind"),
            lambda p: p.update(kind="not-a-kind"),
            lambda p: p.update(request_type="nope"),
            lambda p: p.update(query={"target": "t"}),  # missing predicates
        ],
    )
    def test_malformed_payloads_raise_envelope_error(self, mutate):
        payload = response_to_dict(
            VoiceResponse(kind=ResponseKind.HELP, text="h", request_type=RequestType.HELP)
        )
        mutate(payload)
        with pytest.raises(EnvelopeError):
            response_from_dict(payload)

    def test_non_mapping_payload_raises(self):
        with pytest.raises(EnvelopeError, match="object"):
            response_from_dict(["not", "a", "dict"])


class TestQueryPayloads:
    @settings(max_examples=100, deadline=None)
    @given(queries)
    def test_query_round_trip(self, query):
        assert query_from_dict(json.loads(json.dumps(query_to_dict(query), allow_nan=False))) == query

    def test_malformed_query_raises(self):
        with pytest.raises(EnvelopeError):
            query_from_dict({"predicates": [["a", 1]]})  # no target


class TestVoiceRequest:
    @settings(max_examples=100, deadline=None)
    @given(
        st.text(max_size=100),
        st.one_of(st.none(), st.text(max_size=30)),
        st.one_of(st.none(), st.text(max_size=30)),
    )
    def test_round_trip(self, text, session_id, request_id):
        request = VoiceRequest(text=text, session_id=session_id, request_id=request_id)
        assert VoiceRequest.from_dict(json.loads(json.dumps(request.to_dict()))) == request

    def test_missing_text_rejected(self):
        with pytest.raises(EnvelopeError, match="text"):
            VoiceRequest.from_dict({"schema_version": SCHEMA_VERSION})

    def test_non_string_fields_rejected(self):
        with pytest.raises(EnvelopeError):
            VoiceRequest(text=42)
        with pytest.raises(EnvelopeError):
            VoiceRequest(text="x", session_id=7)
        with pytest.raises(EnvelopeError):
            VoiceRequest(text="x", request_id=7)

    def test_version_checked(self):
        with pytest.raises(EnvelopeError, match="schema_version"):
            VoiceRequest.from_dict({"text": "hi"})
        with pytest.raises(EnvelopeError, match="schema_version"):
            VoiceRequest.from_dict({"schema_version": 99, "text": "hi"})
