"""HTTP front-end protocol tests: routes, status codes, keep-alive."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import HttpClient, VoiceHttpServer, VoiceRequest
from repro.api.envelopes import SCHEMA_VERSION
from repro.serving import VoiceService


def run_with_server(engine, scenario, **service_kwargs):
    """Run ``scenario(service, server, client)`` against a live stack."""

    async def main():
        async with VoiceService(engine, concurrency=2, **service_kwargs) as service:
            async with VoiceHttpServer(service) as server:
                async with HttpClient(server.host, server.port) as client:
                    return await scenario(service, server, client)

    return asyncio.run(main())


async def raw_request(server, payload: bytes) -> bytes:
    """Send raw bytes, return everything until the server closes."""
    reader, writer = await asyncio.open_connection(server.host, server.port)
    writer.write(payload)
    await writer.drain()
    writer.write_eof()
    data = await reader.read()
    writer.close()
    return data


class TestRoutes:
    def test_healthz_reports_ok_and_snapshot_version(self, engine):
        async def scenario(service, server, client):
            return await client.health()

        health = run_with_server(engine, scenario)
        assert health == {"status": "ok", "reasons": [], "snapshot_version": 0}

    def test_metrics_includes_service_and_session_counters(self, engine):
        async def scenario(service, server, client):
            await client.ask(VoiceRequest(text="what is the delay for East", session_id="s"))
            return await client.metrics()

        metrics = run_with_server(engine, scenario)
        assert metrics["completed"] == 1
        assert metrics["sessions"] == 1
        assert metrics["snapshot_version"] == 0
        assert "p99_ms" in metrics and "qps" in metrics

    def test_session_ids_with_unsafe_characters_round_trip(self, engine):
        async def scenario(service, server, client):
            unsafe = "user 42/one?two\r\nthree"
            await client.ask(
                VoiceRequest(text="what is the delay for East", session_id=unsafe)
            )
            return await client.session(unsafe)

        summary = run_with_server(engine, scenario)
        assert summary is not None
        assert summary["session_id"] == "user 42/one?two\r\nthree"
        assert summary["requests"] == 1

    def test_session_endpoint_describes_live_sessions(self, engine):
        async def scenario(service, server, client):
            first = await client.ask(
                VoiceRequest(text="what is the delay for East", session_id="abc")
            )
            summary = await client.session("abc")
            missing = await client.session("missing")
            return first, summary, missing

        first, summary, missing = run_with_server(engine, scenario)
        assert summary["requests"] == 1
        assert summary["schema_version"] == SCHEMA_VERSION
        assert summary["last_response"]["text"] == first.text
        assert missing is None

    def test_unknown_route_is_404_and_wrong_method_is_405(self, engine):
        async def scenario(service, server, client):
            return (
                await client._request("GET", "/v2/ask"),
                await client._request("GET", "/v1/ask"),
                await client._request("POST", "/v1/metrics"),
                await client._request("POST", "/healthz"),
            )

        results = run_with_server(engine, scenario)
        assert [status for status, _, _ in results] == [404, 405, 405, 405]


class TestAskValidation:
    def test_invalid_json_is_400(self, engine):
        async def scenario(service, server, client):
            body = b"this is not json"
            head = (
                f"POST /v1/ask HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
            ).encode()
            return await raw_request(server, head + body)

        raw = run_with_server(engine, scenario)
        assert raw.startswith(b"HTTP/1.1 400 ")

    def test_wrong_schema_version_is_400(self, engine):
        async def scenario(service, server, client):
            payload = VoiceRequest(text="hello").to_dict()
            payload["schema_version"] = SCHEMA_VERSION + 7
            return await client._request("POST", "/v1/ask", body=payload)

        status, payload, _ = run_with_server(engine, scenario)
        assert status == 400
        assert payload["code"] == "bad_envelope"
        assert "schema_version" in payload["error"]

    def test_missing_text_is_400(self, engine):
        async def scenario(service, server, client):
            return await client._request(
                "POST", "/v1/ask", body={"schema_version": SCHEMA_VERSION}
            )

        status, payload, _ = run_with_server(engine, scenario)
        assert status == 400
        assert payload["code"] == "bad_envelope"
        assert "text" in payload["error"]

    def test_oversized_body_is_413(self, engine):
        async def scenario(service, server, client):
            head = (
                "POST /v1/ask HTTP/1.1\r\nHost: x\r\n"
                "Content-Length: 99999999\r\n\r\n"
            ).encode()
            return await raw_request(server, head)

        raw = run_with_server(engine, scenario)
        assert raw.startswith(b"HTTP/1.1 413 ")

    @pytest.mark.parametrize("bad_length", ["abc", "-5"])
    def test_malformed_content_length_is_400_not_a_dropped_connection(
        self, engine, bad_length
    ):
        async def scenario(service, server, client):
            head = (
                f"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {bad_length}\r\n\r\n"
            ).encode()
            return await raw_request(server, head)

        raw = run_with_server(engine, scenario)
        assert raw.startswith(b"HTTP/1.1 400 ")
        assert b"Content-Length" in raw

    def test_single_nul_byte_body_is_bad_json_not_413(self, engine):
        async def scenario(service, server, client):
            head = (
                "POST /v1/ask HTTP/1.1\r\nHost: x\r\n"
                "Content-Length: 1\r\nConnection: close\r\n\r\n"
            ).encode()
            return await raw_request(server, head + b"\x00")

        raw = run_with_server(engine, scenario)
        assert raw.startswith(b"HTTP/1.1 400 ")
        assert b"not valid JSON" in raw


class TestProtocol:
    def test_keep_alive_serves_many_requests_on_one_connection(self, engine):
        async def scenario(service, server, client):
            # The pooled client reuses its single connection here.
            for _ in range(5):
                await client.ask("what is the delay for East")
            assert len(client._idle) == 1
            return (await client.metrics())["completed"]

        assert run_with_server(engine, scenario) == 5

    def test_connection_close_is_honored(self, engine):
        async def scenario(service, server, client):
            body = json.dumps(VoiceRequest(text="help").to_dict()).encode()
            head = (
                f"POST /v1/ask HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
            ).encode()
            reader, writer = await asyncio.open_connection(server.host, server.port)
            writer.write(head + body)
            await writer.drain()
            data = await reader.read()  # EOF only if the server closed
            writer.close()
            return data

        raw = run_with_server(engine, scenario)
        assert raw.startswith(b"HTTP/1.1 200 ")
        assert b"Connection: close" in raw

    def test_ephemeral_port_is_resolved(self, engine):
        async def scenario(service, server, client):
            return server.port, server.address

        port, address = run_with_server(engine, scenario)
        assert port != 0
        assert str(port) in address

    def test_server_stop_leaves_service_running(self, engine):
        async def main():
            async with VoiceService(engine, concurrency=2) as service:
                server = VoiceHttpServer(service)
                await server.start()
                assert server.running
                await server.stop()
                assert not server.running
                # The service outlives its front-end.
                response = await service.submit("what is the delay for East")
                return response.kind.value

        assert asyncio.run(main()) == "speech"
