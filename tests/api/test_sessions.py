"""SessionStore unit tests: LRU bounds, recency, engine-state parity."""

from __future__ import annotations

import pytest

from repro.api.sessions import SessionStore
from repro.system.classification import RequestType
from repro.system.engine import ResponseKind, SessionState, VoiceResponse
from repro.system.nlq import ParsedRequest, RequestKind


def parsed(text: str) -> ParsedRequest:
    return ParsedRequest(text=text, kind=RequestKind.QUERY)


def speech(text: str) -> VoiceResponse:
    return VoiceResponse(
        kind=ResponseKind.SPEECH, text=text, request_type=RequestType.SUPPORTED_QUERY
    )


def repeat(text: str) -> VoiceResponse:
    return VoiceResponse(
        kind=ResponseKind.REPEAT, text=text, request_type=RequestType.REPEAT
    )


class TestRecording:
    def test_record_creates_and_advances_state(self):
        store = SessionStore(capacity=4)
        store.record("s1", parsed("q1"), speech("a1"))
        store.record("s1", parsed("q2"), speech("a2"))
        assert store.last_response("s1").text == "a2"
        assert len(store) == 1

    def test_repeat_responses_do_not_advance_repeat_state(self):
        store = SessionStore(capacity=4)
        store.record("s1", parsed("q1"), speech("a1"))
        store.record("s1", parsed("repeat"), repeat("a1"))
        assert store.last_response("s1").text == "a1"
        assert store.last_response("s1").kind is ResponseKind.SPEECH

    def test_record_matches_engine_session_state_exactly(self):
        """The store must observe through the engine's own SessionState."""
        store = SessionStore(capacity=4)
        reference = SessionState()
        exchanges = [
            (parsed("q1"), speech("a1")),
            (parsed("repeat"), repeat("a1")),
            (parsed("q2"), speech("a2")),
        ]
        for request, response in exchanges:
            store.record("s", request, response)
            reference.observe(request, response)
        state = store.record("s", parsed("q3"), speech("a3"))
        reference.observe(parsed("q3"), speech("a3"))
        assert state.last_response == reference.last_response
        assert state.log.responses == reference.log.responses
        assert state.log.requests == reference.log.requests

    def test_unknown_session_has_no_repeat_state(self):
        store = SessionStore(capacity=4)
        assert store.last_response("never-seen") is None


class TestEviction:
    def test_sessions_evict_at_the_lru_bound(self):
        store = SessionStore(capacity=2)
        store.record("a", parsed("q"), speech("ra"))
        store.record("b", parsed("q"), speech("rb"))
        store.record("c", parsed("q"), speech("rc"))  # evicts a
        assert len(store) == 2
        assert store.evicted == 1
        assert "a" not in store
        assert store.last_response("a") is None  # degraded, not an error
        assert store.last_response("b").text == "rb"
        assert store.last_response("c").text == "rc"

    def test_recency_touch_protects_active_sessions(self):
        store = SessionStore(capacity=2)
        store.record("a", parsed("q"), speech("ra"))
        store.record("b", parsed("q"), speech("rb"))
        # Touch "a" (a repeat-state read counts as activity) ...
        assert store.last_response("a").text == "ra"
        store.record("c", parsed("q"), speech("rc"))  # ... so "b" evicts
        assert "a" in store
        assert "b" not in store

    def test_evicted_session_restarts_cleanly(self):
        store = SessionStore(capacity=1)
        store.record("a", parsed("q"), speech("old"))
        store.record("b", parsed("q"), speech("rb"))
        store.record("a", parsed("q2"), speech("new"))
        assert store.last_response("a").text == "new"
        state = store.record("a", parsed("q3"), speech("n2"))
        assert len(state.log.requests) == 2  # history restarted at re-creation

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            SessionStore(capacity=0)
        with pytest.raises(ValueError, match="log_limit"):
            SessionStore(log_limit=0)


class TestLogBound:
    def test_session_log_is_bounded_but_counts_every_exchange(self):
        store = SessionStore(capacity=2, log_limit=5)
        for index in range(40):
            store.record("hot", parsed(f"q{index}"), speech(f"a{index}"))
        state = store.record("hot", parsed("q-last"), speech("a-last"))
        assert len(state.log.requests) == 5
        assert len(state.log.responses) == 5
        assert state.log.responses[-1].text == "a-last"
        assert store.describe("hot")["requests"] == 41  # true total, not kept

    def test_trimming_never_disturbs_repeat_state(self):
        store = SessionStore(capacity=2, log_limit=2)
        for index in range(10):
            store.record("s", parsed(f"q{index}"), speech(f"a{index}"))
        store.record("s", parsed("repeat"), repeat("a9"))
        assert store.last_response("s").text == "a9"


class TestDescribe:
    def test_describe_summarizes_without_touching_recency(self):
        clock = iter(range(100)).__next__
        store = SessionStore(capacity=2, clock=lambda: float(clock()))
        store.record("a", parsed("q"), speech("ra"))
        store.record("b", parsed("q"), speech("rb"))
        summary = store.describe("a")
        assert summary["session_id"] == "a"
        assert summary["requests"] == 1
        assert summary["last_response"]["text"] == "ra"
        store.record("c", parsed("q"), speech("rc"))
        assert "a" not in store  # describe("a") did not refresh it

    def test_describe_unknown_session_is_none(self):
        assert SessionStore(capacity=2).describe("nope") is None
