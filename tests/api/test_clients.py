"""Session semantics through the public clients, on both transports.

The acceptance bar for the API redesign: a REPEAT request through
either client replays *byte-identical* text to what the interactive
:meth:`VoiceQueryEngine.ask` would answer for the same session history,
sessions evict at the LRU bound, and unknown session ids degrade to the
stateless answer instead of erroring.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import (
    HttpClient,
    InProcessClient,
    ServingConfig,
    VoiceHttpServer,
    VoiceRequest,
)
from repro.serving import VoiceService

#: A conversation exercising data answers, repeats (including repeated
#: repeats) and an unparseable utterance, all on one session.
SCRIPT = [
    "what is the delay for East",
    "repeat",
    "what is the delay for West in Winter",
    "repeat",
    "repeat",
    "tell me something unrelated",
    "repeat",
]


def interactive_replay(engine, script=SCRIPT) -> list[str]:
    """What the single-caller interactive engine answers for ``script``."""
    return [engine.ask(text).text for text in script]


async def client_replay(client, session_id: str, script=SCRIPT) -> list[str]:
    texts = []
    for text in script:
        response = await client.ask(VoiceRequest(text=text, session_id=session_id))
        texts.append(response.text)
    return texts


class TestInProcessClientSessions:
    def test_repeat_matches_interactive_ask_byte_for_byte(self, engine, twin_engine):
        async def scenario():
            async with VoiceService(engine, concurrency=2) as service:
                return await client_replay(InProcessClient(service), "s1")

        served = asyncio.run(scenario())
        assert served == interactive_replay(twin_engine)

    def test_sessions_are_isolated_from_each_other(self, engine):
        async def scenario():
            async with VoiceService(engine, concurrency=2) as service:
                client = InProcessClient(service)
                first = await client.ask(
                    VoiceRequest(text="what is the delay for East", session_id="a")
                )
                await client.ask(
                    VoiceRequest(text="what is the delay for Winter", session_id="b")
                )
                replay = await client.ask(VoiceRequest(text="repeat", session_id="a"))
                return first, replay

        first, replay = asyncio.run(scenario())
        assert replay.text == first.text  # b's answer did not leak into a

    def test_unknown_session_repeat_degrades_to_stateless_answer(self, engine):
        async def scenario():
            async with VoiceService(engine, concurrency=2) as service:
                with_session = await service.submit(
                    VoiceRequest(text="repeat", session_id="fresh-session")
                )
                stateless = await service.submit("repeat")
                return with_session, stateless

        with_session, stateless = asyncio.run(scenario())
        # Both fall back to the engine's stateless repeat answer (help).
        assert with_session.text == stateless.text == engine.respond("repeat").text

    def test_sessions_evict_at_the_lru_bound(self, engine):
        async def scenario():
            config = ServingConfig(concurrency=2, session_capacity=2)
            async with VoiceService(engine, config) as service:
                client = InProcessClient(service)
                answers = {}
                for session in ("a", "b", "c"):
                    answers[session] = await client.ask(
                        VoiceRequest(
                            text="what is the delay for East", session_id=session
                        )
                    )
                evicted_replay = await client.ask(
                    VoiceRequest(text="repeat", session_id="a")
                )
                live_replay = await client.ask(
                    VoiceRequest(text="repeat", session_id="c")
                )
                return service, answers, evicted_replay, live_replay

        service, answers, evicted_replay, live_replay = asyncio.run(scenario())
        assert service.sessions.evicted >= 1
        # "a" was evicted: repeat degrades to the stateless answer ...
        assert evicted_replay.text == engine.respond("repeat").text
        # ... while the still-live "c" replays its real answer.
        assert live_replay.text == answers["c"].text

    def test_plain_string_submit_shim_stays_stateless(self, engine):
        async def scenario():
            async with VoiceService(engine, concurrency=2) as service:
                await service.submit("what is the delay for East")
                return await service.submit("repeat"), len(service.sessions)

        replay, live_sessions = asyncio.run(scenario())
        assert replay.text == engine.respond("repeat").text
        assert live_sessions == 0  # the shim never creates sessions


class TestHttpClientSessions:
    def test_http_repeat_matches_interactive_ask_byte_for_byte(self, engine, twin_engine):
        async def scenario():
            async with VoiceService(engine, concurrency=4) as service:
                async with VoiceHttpServer(service) as server:
                    async with HttpClient(server.host, server.port) as client:
                        return await client_replay(client, "http-session")

        served = asyncio.run(scenario())
        assert served == interactive_replay(twin_engine)

    def test_http_unknown_session_degrades(self, engine):
        async def scenario():
            async with VoiceService(engine, concurrency=2) as service:
                async with VoiceHttpServer(service) as server:
                    async with HttpClient(server.host, server.port) as client:
                        return await client.ask(
                            VoiceRequest(text="repeat", session_id="never-before-seen")
                        )

        response = asyncio.run(scenario())
        assert response.text == engine.respond("repeat").text

    def test_transports_answer_identically(self, engine):
        """The same session history answers the same on both transports."""

        async def scenario():
            async with VoiceService(engine, concurrency=4) as service:
                in_process = await client_replay(
                    InProcessClient(service), "session-in-process"
                )
                async with VoiceHttpServer(service) as server:
                    async with HttpClient(server.host, server.port) as client:
                        over_http = await client_replay(client, "session-http")
                return in_process, over_http

        in_process, over_http = asyncio.run(scenario())
        assert in_process == over_http

    def test_concurrent_http_sessions_keep_their_own_repeat_state(self, engine):
        async def scenario():
            async with VoiceService(engine, concurrency=4) as service:
                async with VoiceHttpServer(service) as server:
                    async with HttpClient(server.host, server.port, max_connections=4) as client:

                        async def converse(session, question):
                            first = await client.ask(
                                VoiceRequest(text=question, session_id=session)
                            )
                            replay = await client.ask(
                                VoiceRequest(text="repeat", session_id=session)
                            )
                            return first.text, replay.text

                        pairs = await asyncio.gather(
                            converse("s-east", "what is the delay for East"),
                            converse("s-west", "what is the delay for West"),
                            converse("s-winter", "what is the delay for Winter"),
                        )
                        return pairs

        for first, replay in asyncio.run(scenario()):
            assert replay == first


class TestClientMetadata:
    def test_request_id_round_trips_over_http(self, engine):
        async def scenario():
            async with VoiceService(engine, concurrency=2) as service:
                async with VoiceHttpServer(service) as server:
                    async with HttpClient(server.host, server.port) as client:
                        status, payload, _ = await client._request(
                            "POST",
                            "/v1/ask",
                            body=VoiceRequest(
                                text="what is the delay for East",
                                request_id="corr-42",
                            ).to_dict(),
                        )
                        return status, payload

        status, payload = asyncio.run(scenario())
        assert status == 200
        assert payload["request_id"] == "corr-42"

    def test_invalid_client_arguments(self):
        with pytest.raises(ValueError, match="max_connections"):
            HttpClient("127.0.0.1", 80, max_connections=0)
