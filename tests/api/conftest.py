"""Shared fixtures for the public-API tests."""

from __future__ import annotations

import pytest

from repro.system.engine import VoiceQueryEngine

from tests.serving.conftest import make_engine


@pytest.fixture()
def engine(example_table) -> VoiceQueryEngine:
    """A pre-processed engine over the running-example table."""
    return make_engine(example_table)


@pytest.fixture()
def twin_engine(example_table) -> VoiceQueryEngine:
    """A second, identically built engine (pre-processing is
    deterministic, so its store is byte-identical to ``engine``'s) for
    interactive-replay parity checks."""
    return make_engine(example_table)
