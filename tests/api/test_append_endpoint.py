"""POST /v1/append over both transports, with and without durability."""

from __future__ import annotations

import asyncio

import pytest

from repro.api import HttpClient, InProcessClient, VoiceHttpServer, VoiceRequest
from repro.api.errors import VoiceApiError
from repro.reliability import FAILPOINTS
from repro.serving import VoiceService
from repro.system.persistence import canonical_store_payload

ROW = {"region": "East", "season": "Winter", "delay": 55.0}


def run_with_server(engine, scenario, **service_kwargs):
    """Run ``scenario(service, server, client)`` against a live stack."""

    async def main():
        async with VoiceService(engine, concurrency=2, **service_kwargs) as service:
            async with VoiceHttpServer(service) as server:
                async with HttpClient(server.host, server.port) as client:
                    return await scenario(service, server, client)

    return asyncio.run(main())


@pytest.fixture(autouse=True)
def _clean_failpoints():
    FAILPOINTS.clear()
    yield
    FAILPOINTS.clear()


class TestAppendRoute:
    def test_accepts_object_rows(self, engine):
        async def scenario(service, server, client):
            receipt = await client.append([ROW, {**ROW, "season": "Summer"}])
            await service.scheduler.quiesce()
            return receipt, service.registry.version

        receipt, version = run_with_server(engine, scenario)
        assert receipt == {"accepted_rows": 2, "journal_seq": None}
        assert version == 1

    def test_accepts_array_rows_in_schema_order(self, engine):
        async def scenario(service, server, client):
            return await client.append([["East", "Winter", 55.0]])

        receipt = run_with_server(engine, scenario)
        assert receipt["accepted_rows"] == 1

    def test_empty_rows_is_400(self, engine):
        async def scenario(service, server, client):
            with pytest.raises(VoiceApiError) as excinfo:
                await client.append([])
            return excinfo.value

        assert run_with_server(engine, scenario).status == 400

    def test_missing_column_is_400(self, engine):
        async def scenario(service, server, client):
            with pytest.raises(VoiceApiError) as excinfo:
                await client.append([{"region": "East"}])
            return excinfo.value

        error = run_with_server(engine, scenario)
        assert error.status == 400
        assert "missing columns" in str(error)

    def test_scalar_row_is_400(self, engine):
        async def scenario(service, server, client):
            with pytest.raises(VoiceApiError) as excinfo:
                await client.append(["not-a-row"])
            return excinfo.value

        assert run_with_server(engine, scenario).status == 400

    def test_get_method_is_405(self, engine):
        async def scenario(service, server, client):
            status, payload, _ = await client._request("GET", "/v1/append")
            return status, payload

        status, payload = run_with_server(engine, scenario)
        assert status == 405
        assert payload["code"] == "method_not_allowed"

    def test_in_process_client_matches_http(self, engine):
        async def main():
            async with VoiceService(engine, concurrency=2) as service:
                client = InProcessClient(service)
                return await client.append([ROW])

        assert asyncio.run(main()) == {"accepted_rows": 1, "journal_seq": None}


class TestDurableAppend:
    def test_receipts_carry_monotonic_journal_seqs(self, engine, tmp_path):
        async def scenario(service, server, client):
            first = await client.append([ROW])
            second = await client.append([{**ROW, "season": "Summer"}])
            await service.scheduler.quiesce()
            return first, second, await client.metrics()

        first, second, metrics = run_with_server(
            engine, scenario, data_dir=str(tmp_path)
        )
        assert first["journal_seq"] == 1
        assert second["journal_seq"] == 2
        durability = metrics["durability"]
        assert durability["data_dir"] == str(tmp_path)
        assert durability["next_seq"] == 3
        assert durability["applied_seq"] == 2

    def test_journal_failure_rejects_batch_without_acking(self, engine, tmp_path):
        async def scenario(service, server, client):
            with pytest.raises(VoiceApiError) as excinfo:
                await client.append([ROW])
            receipt = await client.append([ROW])
            return excinfo.value, receipt

        error, receipt = run_with_server(
            engine,
            scenario,
            data_dir=str(tmp_path),
            failpoints=("journal.write:times=1",),
        )
        # The failed batch was never persisted nor acked; the journal
        # seq was not consumed.
        assert error.status == 500
        assert receipt["journal_seq"] == 1

    def test_clean_restart_recovers_identical_store(
        self, engine, twin_engine, tmp_path
    ):
        async def first_life(service, server, client):
            await client.append([ROW])
            await client.append([{**ROW, "season": "Summer", "delay": 5.0}])
            await service.scheduler.quiesce()
            return canonical_store_payload(service.registry.current.store)

        final_payload = run_with_server(engine, first_life, data_dir=str(tmp_path))

        async def second_life():
            async with VoiceService(
                twin_engine, concurrency=2, data_dir=str(tmp_path)
            ) as service:
                recovery = service.recovery
                payload = canonical_store_payload(service.registry.current.store)
                response = await service.submit(
                    VoiceRequest(text="what is the delay for East")
                )
                return recovery, payload, response

        recovery, payload, response = asyncio.run(second_life())
        assert payload == final_payload
        assert response.text
        # The clean stop checkpointed the final state, so the second
        # boot replays nothing.
        assert recovery.replayed_records == 0
        assert recovery.checkpoint is not None

    def test_metrics_surface_reliability_counters(self, engine, tmp_path):
        async def scenario(service, server, client):
            return await client.metrics(), await client.health()

        metrics, health = run_with_server(engine, scenario, data_dir=str(tmp_path))
        reliability = metrics["reliability"]
        for key in (
            "retry_pending",
            "breaker_state",
            "worker_respawns",
            "pool_degraded",
            "maintenance_dropped_rows",
        ):
            assert key in reliability
        assert reliability["breaker_state"] == "closed"
        assert reliability["retry_pending"] is False
        assert health["status"] == "ok"
