"""Unit tests for the asyncio voice-serving service."""

from __future__ import annotations

import asyncio

import pytest

from repro.serving import ServiceOverloadedError, VoiceService
from repro.system.engine import ResponseKind

from tests.serving.conftest import append_table

QUESTIONS = [
    "what is the delay in Winter",
    "delays for East",
    "delays for East in Winter",
    "what is the average delay",
    "help",
    "which region has the highest delay",
    "play some music",
]


class TestRequestPath:
    def test_responses_match_quiesced_engine(self, engine):
        expected = {text: engine.respond(text).text for text in QUESTIONS}

        async def run():
            async with VoiceService(engine, concurrency=4) as service:
                responses = await asyncio.gather(
                    *(service.submit(text) for text in QUESTIONS)
                )
            return responses

        responses = asyncio.run(run())
        for text, response in zip(QUESTIONS, responses):
            assert response.text == expected[text]

    def test_latency_and_kind_recorded(self, engine):
        async def run():
            async with VoiceService(engine, concurrency=2) as service:
                response = await service.submit("what is the delay in Winter")
            return response

        response = asyncio.run(run())
        assert response.kind is ResponseKind.SPEECH
        assert response.exact_match
        assert response.latency_seconds > 0.0

    def test_submit_when_not_running_raises(self, engine):
        async def run():
            service = VoiceService(engine)
            with pytest.raises(RuntimeError):
                await service.submit("help")
            await service.start()
            await service.stop()
            with pytest.raises(RuntimeError):
                await service.submit("help")

        asyncio.run(run())

    def test_inline_vs_offload_split(self, engine):
        async def run():
            async with VoiceService(engine, concurrency=2) as service:
                await service.submit("what is the delay in Winter")  # exact hit
                await service.submit("help")  # canned text
                await service.submit("delays for East in Winter")  # subset match
                return service.metrics.summary()

        summary = asyncio.run(run())
        assert summary["inline"] == 2
        assert summary["offloaded"] == 1
        assert summary["completed"] == 3


class TestAdmissionControl:
    def test_queue_depth_backpressure(self, engine):
        async def run():
            service = VoiceService(engine, concurrency=1, max_queue_depth=1)
            gate = asyncio.Event()
            inner_answer = service._answer

            async def gated_answer(text):
                await gate.wait()
                return await inner_answer(text)

            service._answer = gated_answer
            await service.start()
            first = asyncio.ensure_future(service.submit("help"))
            await asyncio.sleep(0.01)  # worker picks request 1 up, then blocks
            second = asyncio.ensure_future(service.submit("help"))
            await asyncio.sleep(0.01)  # request 2 now waits in the queue
            with pytest.raises(ServiceOverloadedError):
                await service.submit("help")
            assert service.metrics.rejected == 1
            gate.set()
            responses = await asyncio.gather(first, second)
            await service.stop()
            return responses

        responses = asyncio.run(run())
        assert all(r.kind is ResponseKind.HELP for r in responses)

    def test_invalid_parameters_rejected(self, engine):
        with pytest.raises(ValueError):
            VoiceService(engine, concurrency=0)
        with pytest.raises(ValueError):
            VoiceService(engine, max_queue_depth=-1)


class TestLifecycle:
    def test_stop_adopts_final_snapshot_and_table(self, engine, append_batches):
        rows_before = engine.table.num_rows

        async def run():
            service = VoiceService(engine, concurrency=2)
            await service.start()
            service.request_append(append_batches[0])
            await service.scheduler.quiesce()
            await service.stop()
            return service

        service = asyncio.run(run())
        assert service.registry.version == 1
        assert engine.store is service.registry.current.store
        # The engine's table advanced with the appends, matching the
        # store it adopted (a second service would continue from here).
        assert engine.table.num_rows == rows_before + append_batches[0].num_rows
        # A quiesced engine now answers with the maintained speech.
        response = engine.ask("delays for East in Winter")
        assert response.kind is ResponseKind.SPEECH
        assert response.exact_match

    def test_new_dimension_value_parseable_after_swap(self, engine):
        new_rows = append_table(
            [("Midwest", "Winter", 99.0), ("Midwest", "Summer", 98.0)]
        )

        async def run():
            async with VoiceService(engine, concurrency=2) as service:
                before = await service.submit("delays for Midwest")
                service.request_append(new_rows)
                await service.scheduler.quiesce()
                after = await service.submit("delays for Midwest")
            return before, after

        before, after = asyncio.run(run())
        # Before the append, "Midwest" is not in the value lexicon: the
        # query parses without predicates and falls to the overall speech.
        assert before.query is not None
        assert before.query.length == 0
        # After the swap the engine re-derived its parser, so the value
        # extracts and the maintained snapshot answers its exact speech.
        assert after.query.predicate_map == {"region": "Midwest"}
        assert after.kind is ResponseKind.SPEECH
        assert after.exact_match
        assert "Midwest" in after.text

    def test_stop_is_idempotent_and_drains_queue(self, engine):
        async def run():
            service = VoiceService(engine, concurrency=1)
            await service.start()
            pending = [
                asyncio.ensure_future(service.submit("what is the delay in Winter"))
                for _ in range(5)
            ]
            await asyncio.sleep(0)  # let submissions enqueue
            await service.stop()
            await service.stop()  # idempotent
            return await asyncio.gather(*pending)

        responses = asyncio.run(run())
        assert len(responses) == 5
        assert all(r.kind is ResponseKind.SPEECH for r in responses)

    def test_double_start_rejected(self, engine):
        async def run():
            service = VoiceService(engine)
            await service.start()
            try:
                with pytest.raises(RuntimeError):
                    await service.start()
            finally:
                await service.stop()

        asyncio.run(run())


class TestMetrics:
    def test_summary_counts_and_percentiles(self, engine):
        async def run():
            async with VoiceService(engine, concurrency=4) as service:
                await asyncio.gather(*(service.submit(t) for t in QUESTIONS))
                return service.metrics.summary()

        summary = asyncio.run(run())
        assert summary["completed"] == len(QUESTIONS)
        assert summary["errors"] == 0
        assert summary["exact_hits"] >= 2
        assert summary["hit_rate"] == 1.0
        assert 0.0 < summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
        assert summary["qps"] > 0.0
        assert summary["responses_by_kind"]["speech"] >= 3

    def test_reset_zeroes_counters(self, engine):
        async def run():
            async with VoiceService(engine, concurrency=2) as service:
                await service.submit("help")
                service.metrics.reset()
                return service.metrics.summary()

        summary = asyncio.run(run())
        assert summary["completed"] == 0
        assert summary["p99_ms"] == 0.0


class TestServingConfigConstruction:
    def test_positional_non_config_second_argument_fails_loudly(self, engine):
        with pytest.raises(TypeError, match="ServingConfig"):
            VoiceService(engine, 8)
