"""Lifecycle tests for the background maintenance scheduler.

Timing-sensitive behavior (coalescing, shutdown mid-job) is made
deterministic with a gated maintainer: the first maintenance pass
blocks on an event the test releases once it has queued more work.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.serving.scheduler import MaintenanceScheduler
from repro.serving.snapshots import SnapshotRegistry
from repro.system.updates import IncrementalMaintainer

from tests.serving.conftest import make_config


class GatedMaintainer(IncrementalMaintainer):
    """A maintainer whose passes wait for the test to open a gate."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()
        self.started = threading.Event()
        self.calls = 0

    def maintain(self, new_rows, store, **kwargs):
        self.calls += 1
        self.started.set()
        assert self.gate.wait(timeout=30.0), "test never opened the gate"
        self.started.clear()
        return super().maintain(new_rows, store, **kwargs)


def make_scheduler(engine, gated: bool = False):
    maintainer_class = GatedMaintainer if gated else IncrementalMaintainer
    maintainer = maintainer_class(
        make_config(), engine.table, summarizer=engine.summarizer, realizer=engine.realizer
    )
    registry = SnapshotRegistry(engine.store)
    return MaintenanceScheduler(maintainer, registry), registry, maintainer


async def wait_for(predicate, timeout=10.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert asyncio.get_running_loop().time() < deadline, "condition never held"
        await asyncio.sleep(0.005)


class TestLifecycle:
    def test_start_stop_idle(self, engine):
        async def run():
            scheduler, registry, _ = make_scheduler(engine)
            scheduler.start()
            assert scheduler.running
            await scheduler.quiesce()
            await scheduler.stop()
            assert not scheduler.running
            assert registry.version == 0
            assert scheduler.jobs == ()

        asyncio.run(run())

    def test_append_before_start_rejected(self, engine, append_batches):
        async def run():
            scheduler, _, _ = make_scheduler(engine)
            with pytest.raises(RuntimeError):
                scheduler.request_append(append_batches[0])

        asyncio.run(run())

    def test_empty_append_is_ignored(self, engine, append_batches):
        async def run():
            scheduler, registry, _ = make_scheduler(engine)
            scheduler.start()
            empty = append_batches[0].mask([False, False])
            scheduler.request_append(empty)
            await scheduler.quiesce()
            await scheduler.stop()
            assert scheduler.jobs == ()
            assert registry.version == 0

        asyncio.run(run())

    def test_single_job_swaps_snapshot(self, engine, append_batches):
        async def run():
            scheduler, registry, _ = make_scheduler(engine)
            scheduler.start()
            before = registry.current
            scheduler.request_append(append_batches[0])
            await scheduler.quiesce()
            await scheduler.stop()
            (job,) = scheduler.jobs
            assert job.status == "completed"
            assert job.batches == 1
            assert job.report.new_rows == append_batches[0].num_rows
            assert job.snapshot_version == 1
            assert registry.version == 1
            assert registry.current.store is not before.store
            assert len(registry.current) >= len(before)

        asyncio.run(run())


class TestCoalescing:
    def test_batches_queued_during_job_coalesce(self, engine, append_batches):
        async def run():
            scheduler, registry, maintainer = make_scheduler(engine, gated=True)
            scheduler.start()
            scheduler.request_append(append_batches[0])
            await wait_for(maintainer.started.is_set)
            # Two more batches arrive while job 1 is mid-maintenance:
            # they must coalesce into exactly one follow-up job.
            extra = append_batches[1]
            one_row = extra.mask([True] + [False] * (extra.num_rows - 1))
            rest = extra.mask([False] + [True] * (extra.num_rows - 1))
            scheduler.request_append(one_row)
            scheduler.request_append(rest)
            assert scheduler.pending_batches == 2
            maintainer.gate.set()
            await scheduler.quiesce()
            await scheduler.stop()
            first, second = scheduler.jobs
            assert (first.status, second.status) == ("completed", "completed")
            assert first.batches == 1
            assert second.batches == 2
            assert second.report.new_rows == extra.num_rows
            assert [job.snapshot_version for job in scheduler.jobs] == [1, 2]
            assert registry.version == 2
            assert maintainer.calls == 2

        asyncio.run(run())


class TestFailedJob:
    def test_failed_job_rolls_back_table_and_retry_recovers(
        self, engine, append_batches
    ):
        async def run():
            scheduler, registry, maintainer = make_scheduler(engine)
            rows_before = maintainer.table.num_rows
            calls = {"count": 0}
            original = maintainer.maintain

            def flaky(new_rows, store, **kwargs):
                calls["count"] += 1
                if calls["count"] == 1:
                    raise RuntimeError("pool worker died")
                return original(new_rows, store, **kwargs)

            maintainer.maintain = flaky
            scheduler.start()
            scheduler.request_append(append_batches[0])
            await scheduler.quiesce()
            await scheduler.stop()
            failed, retried = scheduler.jobs
            assert failed.status == "failed"
            assert "pool worker died" in failed.error
            assert failed.snapshot_version is None  # nothing was published
            # maintain() concats before re-summarizing; the failure
            # rolled that back, then the scheduler retried the exact
            # payload on its own — no rows lost, no manual re-append.
            assert (failed.attempt, retried.attempt) == (1, 2)
            assert failed.dropped_rows == 0
            assert retried.status == "completed"
            assert (failed.index, retried.index) == (1, 2)
            assert scheduler.retry_count == 1
            assert scheduler.retry_successes == 1
            assert scheduler.dropped_rows_total == 0
            assert scheduler.breaker_state == "closed"
            assert registry.version == 1
            assert maintainer.table.num_rows == rows_before + append_batches[0].num_rows

        asyncio.run(run())


class TestShutdownMidJob:
    def test_stop_waits_for_inflight_job(self, engine, append_batches):
        async def run():
            scheduler, registry, maintainer = make_scheduler(engine, gated=True)
            scheduler.start()
            scheduler.request_append(append_batches[0])
            await wait_for(maintainer.started.is_set)
            stopper = asyncio.get_running_loop().create_task(scheduler.stop())
            await asyncio.sleep(0.02)
            assert not stopper.done()  # stop waits on the in-flight job
            maintainer.gate.set()
            await stopper
            (job,) = scheduler.jobs
            assert job.status == "completed"
            assert registry.version == 1  # the job's swap happened

        asyncio.run(run())

    def test_stop_without_drain_cancels_queued_batches(self, engine, append_batches):
        async def run():
            scheduler, registry, maintainer = make_scheduler(engine, gated=True)
            scheduler.start()
            scheduler.request_append(append_batches[0])
            await wait_for(maintainer.started.is_set)
            scheduler.request_append(append_batches[1])
            stopper = asyncio.get_running_loop().create_task(
                scheduler.stop(drain=False)
            )
            await asyncio.sleep(0.02)
            maintainer.gate.set()
            await stopper
            finished, cancelled = scheduler.jobs
            assert finished.status == "completed"
            assert cancelled.status == "cancelled"
            # The in-flight job keeps its earlier, unique index.
            assert (finished.index, cancelled.index) == (1, 2)
            assert registry.version == 1  # cancelled batch never swapped
            assert maintainer.calls == 1
            with pytest.raises(RuntimeError):
                scheduler.request_append(append_batches[1])

        asyncio.run(run())

    def test_stop_with_drain_runs_queued_batches(self, engine, append_batches):
        async def run():
            scheduler, registry, maintainer = make_scheduler(engine, gated=True)
            maintainer.gate.set()  # only gate ordering, not blocking
            scheduler.start()
            scheduler.request_append(append_batches[0])
            scheduler.request_append(append_batches[1])
            await scheduler.stop(drain=True)
            assert all(job.status == "completed" for job in scheduler.jobs)
            total_rows = sum(job.report.new_rows for job in scheduler.jobs)
            assert total_rows == sum(batch.num_rows for batch in append_batches)
            assert registry.version == len(scheduler.jobs)

        asyncio.run(run())
