"""Shared fixtures for the serving-layer tests."""

from __future__ import annotations

import pytest

from repro.relational.column import ColumnType
from repro.relational.table import Table
from repro.system.config import SummarizationConfig
from repro.system.engine import VoiceQueryEngine

COLUMNS = ["region", "season", "delay"]
COLUMN_TYPES = [ColumnType.CATEGORICAL, ColumnType.CATEGORICAL, ColumnType.NUMERIC]


def make_config(max_query_length: int = 2) -> SummarizationConfig:
    return SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=max_query_length,
        max_facts_per_speech=2,
        max_fact_dimensions=1,
        algorithm="G-B",
    )


def make_engine(table: Table, preprocess: bool = True) -> VoiceQueryEngine:
    engine = VoiceQueryEngine(
        make_config(), table, target_synonyms={"delay": ["delays"]}
    )
    if preprocess:
        engine.preprocess()
    return engine


def append_table(rows: list[tuple]) -> Table:
    """An append batch over the running-example schema."""
    return Table.from_rows("flight_delays", COLUMNS, COLUMN_TYPES, rows)


@pytest.fixture()
def engine(example_table) -> VoiceQueryEngine:
    """A pre-processed engine over the running-example table."""
    return make_engine(example_table)


@pytest.fixture()
def append_batches() -> list[Table]:
    """Two append batches touching distinct and overlapping subsets."""
    return [
        append_table([("East", "Winter", 55.0), ("North", "Summer", 44.0)]),
        append_table([("East", "Winter", 5.0), ("West", "Fall", 30.0)]),
    ]
