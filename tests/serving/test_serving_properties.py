"""Snapshot-consistency properties of concurrent serving + maintenance.

The contract of the serving layer: every response equals what a
*quiesced* engine would answer from one of the stores that existed
while the request was in flight — the pre-maintenance store or the
store after any completed maintenance job — never a torn mix; and the
post-swap store is byte-identical to running serial maintenance on the
exact batches the scheduler's jobs consumed, in order.
"""

from __future__ import annotations

import asyncio
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import VoiceService
from repro.system.persistence import store_to_dict
from repro.system.updates import IncrementalMaintainer

from tests.serving.conftest import append_table, make_config, make_engine
from tests.conftest import build_example_table

QUESTIONS = [
    "what is the delay in Winter",
    "delays for East",
    "delays for East in Winter",
    "delays for North in Summer",
    "what is the average delay",
    "delays for West in Fall",
]

APPEND_ROWS = [
    ("East", "Winter", 55.0),
    ("North", "Summer", 44.0),
    ("East", "Winter", 5.0),
    ("West", "Fall", 30.0),
    ("South", "Spring", 12.0),
]


def store_payload(store) -> str:
    return json.dumps(store_to_dict(store), sort_keys=True)


def replay_serially(jobs):
    """A quiesced engine maintained with each job's exact batch, in order.

    Returns the list of store payload/answer states: index 0 is the
    pre-maintenance state, index i the state after jobs[:i].
    """
    reference = make_engine(build_example_table())
    maintainer = IncrementalMaintainer(
        make_config(),
        reference.table,
        summarizer=reference.summarizer,
        realizer=reference.realizer,
    )
    states = [snapshot_state(reference)]
    for job in jobs:
        report = maintainer.maintain(job.new_rows, reference.store, workers=0)
        assert report.new_rows == job.new_rows.num_rows
        states.append(snapshot_state(reference))
    return states


def snapshot_state(reference):
    return {
        "payload": store_payload(reference.store),
        "answers": {text: reference.respond(text).text for text in QUESTIONS},
    }


def run_interleaved(batch_splits: list[list[tuple]], questions: list[str]):
    """Serve ``questions`` while appending the batches; return evidence."""
    engine = make_engine(build_example_table())

    async def drive():
        responses = []
        async with VoiceService(engine, concurrency=4, max_queue_depth=256) as service:
            append_points = {
                (index + 1) * max(1, len(questions) // (len(batch_splits) + 1)): batch
                for index, batch in enumerate(batch_splits)
            }
            tasks = []
            for index, text in enumerate(questions):
                tasks.append(asyncio.ensure_future(service.submit(text)))
                if index in append_points:
                    service.request_append(append_table(append_points[index]))
                if index % 3 == 0:
                    await asyncio.sleep(0)  # let workers and jobs interleave
            responses = await asyncio.gather(*tasks)
            await service.scheduler.quiesce()
            jobs = list(service.scheduler.jobs)
            final_store = service.registry.current.store
        assert all(job.status == "completed" for job in jobs)
        return responses, jobs, final_store, service.metrics.summary()

    return asyncio.run(drive()), engine


class TestSnapshotConsistency:
    def test_interleaved_responses_match_a_quiesced_state(self):
        batches = [APPEND_ROWS[:2], APPEND_ROWS[2:]]
        questions = QUESTIONS * 6
        (responses, jobs, final_store, summary), engine = run_interleaved(
            batches, questions
        )
        states = replay_serially(jobs)

        # Every response equals the quiesced answer of *some* store
        # state that existed during the run (snapshot consistency: no
        # torn reads, no phantom speeches).
        for text, response in zip(questions, responses):
            valid_answers = {state["answers"][text] for state in states}
            assert response.text in valid_answers, (
                f"{text!r} answered {response.text!r}, expected one of "
                f"{valid_answers!r}"
            )

        # The post-swap store is byte-identical to serial maintenance on
        # the same job batches in the same order.
        assert store_payload(final_store) == states[-1]["payload"]
        # The engine adopted the final snapshot at stop().
        assert store_payload(engine.store) == states[-1]["payload"]
        assert summary["errors"] == 0
        assert summary["completed"] == len(questions)

    def test_quiesced_service_equals_plain_engine(self):
        (responses, jobs, final_store, summary), _ = run_interleaved([], QUESTIONS)
        assert jobs == []
        states = replay_serially(jobs)
        for text, response in zip(QUESTIONS, responses):
            assert response.text == states[0]["answers"][text]
        assert store_payload(final_store) == states[0]["payload"]


class TestPropertyInterleavings:
    @settings(max_examples=12, deadline=None)
    @given(
        split_at=st.integers(min_value=1, max_value=len(APPEND_ROWS) - 1),
        question_order=st.permutations(QUESTIONS * 3),
    )
    def test_random_interleavings_stay_consistent(self, split_at, question_order):
        batches = [APPEND_ROWS[:split_at], APPEND_ROWS[split_at:]]
        (responses, jobs, final_store, summary), _ = run_interleaved(
            batches, list(question_order)
        )
        states = replay_serially(jobs)
        for text, response in zip(question_order, responses):
            valid_answers = {state["answers"][text] for state in states}
            assert response.text in valid_answers
        assert store_payload(final_store) == states[-1]["payload"]
        assert summary["errors"] == 0
