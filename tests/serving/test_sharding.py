"""Sharded serving tier: routing stability, crash recovery, swap barrier.

Three contracts of :class:`repro.serving.sharding.ShardManager`:

* **Routing stability** — the consistent-hash ring is a pure function
  of the key and shard count: the same session always lands on the
  same shard, independently constructed rings agree, and a downed
  shard only moves its own keys (every other key keeps its owner).
* **Crash recovery** — a SIGKILLed shard costs zero requests (the
  router fails over), the supervisor respawns it, health returns to
  ``ok``, and the session keeps answering.
* **Swap barrier** — ``request_append`` returns only after *every*
  shard serves the new snapshot version, and the post-swap stores are
  byte-identical to each other and to a single-process service that
  consumed the same batch (no shard ever serves a stale snapshot).
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ServingConfig, VoiceRequest
from repro.api.envelopes import ResponseKind
from repro.serving import ConsistentHashRing, ShardManager, VoiceService
from repro.serving.sharding import shard_indices_for

from tests.conftest import build_example_table
from tests.serving.conftest import append_table, make_engine

KEYS = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=24,
)


class TestConsistentHashRing:
    @given(key=KEYS, shards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=200, deadline=None)
    def test_owner_is_deterministic_across_ring_instances(self, key, shards):
        first = ConsistentHashRing(shards)
        second = ConsistentHashRing(shards)
        owner = first.owner(key)
        assert 0 <= owner < shards
        assert second.owner(key) == owner
        assert first.route(key) == owner

    @given(
        keys=st.lists(KEYS, min_size=1, max_size=30, unique=True),
        shards=st.integers(min_value=2, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_downed_shard_moves_only_its_own_keys(self, keys, shards, data):
        ring = ConsistentHashRing(shards)
        down = data.draw(st.integers(min_value=0, max_value=shards - 1))
        healthy = [index for index in range(shards) if index != down]
        owners = shard_indices_for(ring, keys)
        for key in keys:
            routed = ring.route(key, healthy)
            assert routed in healthy
            if owners[key] != down:
                # Stability: a failure elsewhere never moves this key.
                assert routed == owners[key]
            else:
                # Failover is deterministic, so a session's requests
                # stay together for the whole outage.
                assert ring.route(key, healthy) == routed

    @given(key=KEYS, shards=st.integers(min_value=2, max_value=6))
    @settings(max_examples=100, deadline=None)
    def test_vnode_count_does_not_change_determinism(self, key, shards):
        small = ConsistentHashRing(shards, vnodes=8)
        assert small.owner(key) == ConsistentHashRing(shards, vnodes=8).owner(key)

    def test_no_healthy_shards_raises(self):
        ring = ConsistentHashRing(2)
        with pytest.raises(RuntimeError):
            ring.route("session", [])


APPEND_ROWS = [("East", "Winter", 55.0), ("North", "Summer", 44.0)]


class TestShardedServing:
    """Spawns real shard processes — kept to two tests to bound runtime."""

    def test_crash_failover_respawn_and_session_survival(self):
        engine = make_engine(build_example_table())
        config = ServingConfig(
            concurrency=2, shards=2, failpoints=("shard.crash:times=1",)
        )

        async def scenario():
            async with ShardManager(engine, config) as manager:
                # The first ask trips the failpoint: the routed shard
                # is SIGKILLed before forwarding and the request must
                # fail over without surfacing an error.
                request = VoiceRequest(
                    text="what is the delay in Winter", session_id="s-crash"
                )
                first = await manager.submit(request)
                assert first.kind is ResponseKind.SPEECH
                assert manager.health()["status"] == "degraded"

                async def until_ok():
                    while manager.health()["status"] != "ok":
                        await asyncio.sleep(0.05)

                await asyncio.wait_for(until_ok(), timeout=60)
                assert manager.respawn_total == 1
                # The session keeps answering after the respawn.
                again = await manager.submit(request)
                assert again.kind is ResponseKind.SPEECH
                assert again.text == first.text
                summary = await manager.metrics_summary()
                assert summary["router"]["respawns"] == 1
                assert summary["router"]["healthy_shards"] == 2

        asyncio.run(asyncio.wait_for(scenario(), timeout=180))

    def test_append_barrier_leaves_no_stale_snapshot(self):
        engine = make_engine(build_example_table())
        config = ServingConfig(concurrency=2, shards=2)

        async def scenario():
            async with ShardManager(engine, config) as manager:
                before = await manager.submit("delays for East in Winter")
                batch = manager.build_append_table(
                    [dict(zip(("region", "season", "delay"), row)) for row in APPEND_ROWS]
                )
                await manager.request_append(batch)
                # The barrier has already returned, so *right now* every
                # shard must serve the new version with identical bytes.
                assert manager.version == 1
                digests = await manager.store_digests()
                assert digests["consistent"], digests
                after = await manager.submit("delays for East in Winter")
                assert after.text != before.text
                return set(digests["digests"].values())

        shard_digests = asyncio.run(asyncio.wait_for(scenario(), timeout=180))

        # Byte-parity oracle: a single-process service consuming the
        # same batch must reach the exact same store.
        async def reference():
            service = VoiceService(make_engine(build_example_table()))
            async with service:
                service.request_append(append_table(APPEND_ROWS))
                await service.scheduler.quiesce()
                return service.store_digest()["digest"]

        assert shard_digests == {asyncio.run(reference())}

    def test_sessionless_requests_round_robin(self):
        engine = make_engine(build_example_table())
        config = ServingConfig(concurrency=2, shards=2)

        async def scenario():
            async with ShardManager(engine, config) as manager:
                for _ in range(4):
                    response = await manager.submit("what is the delay in Winter")
                    assert response.kind is ResponseKind.SPEECH
                summary = await manager.metrics_summary()
                per_shard = summary["shards"]
                # Round-robin spreads session-less load over both shards.
                assert all(
                    per_shard[str(index)]["completed"] >= 1 for index in range(2)
                )
                assert summary["completed"] >= 4

        asyncio.run(asyncio.wait_for(scenario(), timeout=180))

    def test_mmap_attach_mode_digest_parity_and_suffix_catch_up(self, tmp_path):
        """The tentpole contract of attach-mode spawning, end to end.

        With ``snapshot_dir`` set the shards mmap the frozen base store
        instead of unpickling a private copy (the spawn template must
        not contain the store), post-swap digests match a
        single-process service byte-for-byte, and a SIGKILLed shard
        respawns from the newest frozen version, replaying only the
        append-log suffix past it.
        """
        import os
        import pickle
        import signal

        engine = make_engine(build_example_table())
        config = ServingConfig(
            concurrency=2, shards=2, snapshot_dir=str(tmp_path / "snapshots")
        )

        async def reference():
            service = VoiceService(make_engine(build_example_table()))
            async with service:
                service.request_append(append_table(APPEND_ROWS))
                await service.scheduler.quiesce()
                return service.store_digest()["digest"]

        async def scenario(ref_digest):
            async with ShardManager(engine, config) as manager:
                stats = manager.spawn_stats()
                assert stats["mode"] == "attach"
                assert stats["snapshot_version"] == 0
                # The spawn template must be store-free: a pickled full
                # engine would dwarf it.
                assert stats["template_bytes"] < len(pickle.dumps(engine)) / 2
                assert len(stats["spawn_seconds"]) == 2

                digests = await manager.store_digests()
                assert digests["consistent"], digests

                batch = manager.build_append_table(
                    [
                        dict(zip(("region", "season", "delay"), row))
                        for row in APPEND_ROWS
                    ]
                )
                await manager.request_append(batch)
                digests = await manager.store_digests()
                assert digests["consistent"], digests
                assert set(digests["digests"].values()) == {ref_digest}
                # Every shard refroze the swapped store as version 1.
                assert 1 in manager.publisher.versions()

                # Kill one shard: the respawn must attach the newest
                # frozen version and still reach digest parity.
                os.kill(manager.shard_pids()[0], signal.SIGKILL)

                async def until_respawned():
                    while (
                        manager.respawn_total < 1
                        or manager.health()["status"] != "ok"
                    ):
                        await asyncio.sleep(0.05)

                await asyncio.wait_for(until_respawned(), timeout=60)
                digests = await manager.store_digests()
                assert digests["consistent"], digests
                assert set(digests["digests"].values()) == {ref_digest}
                assert manager.spawn_stats()["snapshot_version"] == 1

        ref_digest = asyncio.run(reference())
        asyncio.run(asyncio.wait_for(scenario(ref_digest), timeout=180))
