"""Unit tests for store snapshots and the atomic registry swap."""

from __future__ import annotations

from repro.serving.snapshots import SnapshotRegistry, StoreSnapshot
from repro.system.queries import DataQuery

from tests.serving.conftest import append_table, make_config
from repro.system.updates import IncrementalMaintainer

WINTER = DataQuery.create("delay", {"season": "Winter"})
EAST_WINTER = DataQuery.create("delay", {"region": "East", "season": "Winter"})


class TestStoreClone:
    def test_clone_answers_identically(self, engine):
        clone = engine.store.clone()
        for stored in engine.store:
            original = engine.store.best_match(stored.query)
            cloned = clone.best_match(stored.query)
            assert cloned.stored is original.stored
            assert cloned.exact == original.exact
            assert cloned.overlap == original.overlap

    def test_mutating_clone_leaves_original_untouched(self, engine):
        clone = engine.store.clone()
        before = len(engine.store)
        maintainer = IncrementalMaintainer(make_config(), engine.table)
        report = maintainer.maintain(
            append_table([("East", "Winter", 55.0)]), clone
        )
        assert report.rebuilt_speeches > 0
        assert len(engine.store) == before
        assert len(clone) > before  # the (East, Winter) pair became summarizable
        # The original still answers from its own (unmaintained) speeches.
        original_match = engine.store.best_match(EAST_WINTER)
        clone_match = clone.best_match(EAST_WINTER)
        assert not original_match.exact
        assert clone_match.exact


class TestSnapshot:
    def test_snapshot_delegates_lookups(self, engine):
        snapshot = StoreSnapshot(store=engine.store, version=0)
        assert len(snapshot) == len(engine.store)
        assert snapshot.exact_match(WINTER) is engine.store.exact_match(WINTER)
        assert snapshot.best_match(WINTER).stored is engine.store.best_match(WINTER).stored

    def test_begin_build_is_independent(self, engine):
        snapshot = StoreSnapshot(store=engine.store, version=0)
        build = snapshot.begin_build()
        assert build is not snapshot.store
        maintainer = IncrementalMaintainer(make_config(), engine.table)
        maintainer.maintain(append_table([("East", "Winter", 55.0)]), build)
        assert len(snapshot) == len(engine.store)


class TestRegistry:
    def test_swap_is_versioned_and_atomic(self, engine):
        registry = SnapshotRegistry(engine.store)
        assert registry.version == 0
        first = registry.current
        build = first.begin_build()
        published = registry.swap(build)
        assert published.version == 1
        assert registry.current is published
        assert registry.current.store is build
        # The old snapshot stays fully usable for in-flight requests.
        assert first.best_match(WINTER).stored is engine.store.best_match(WINTER).stored

    def test_swaps_accumulate_versions(self, engine):
        registry = SnapshotRegistry(engine.store)
        for expected in (1, 2, 3):
            assert registry.swap(registry.current.begin_build()).version == expected
