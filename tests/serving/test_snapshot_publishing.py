"""Snapshot publishing and mmap-attach at the service level.

Three contracts wire :mod:`repro.store` into the serving tier:

* a service given ``snapshot_dir`` freezes the base store as version 0
  at construction and refreezes after every maintenance swap;
* a service given ``attach_snapshots`` starts from the newest frozen
  snapshot instead of its engine's store, with the registry version
  seeded to the snapshot's version (the barrier shards are polled on);
* both sides meet byte-for-byte: the attached store answers and
  digests identically to the store that was frozen.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import ServingConfig
from repro.serving import VoiceService
from repro.store import CompactSpeechStore, SnapshotError
from repro.system.persistence import canonical_store_payload

from tests.serving.conftest import append_table, make_engine

APPEND_ROWS = [("East", "Winter", 55.0), ("North", "Summer", 44.0)]


class TestPublishOnSwap:
    def test_base_and_swap_versions_published(self, engine, example_table, tmp_path):
        config = ServingConfig(concurrency=2, snapshot_dir=str(tmp_path))

        async def run():
            async with VoiceService(engine, config) as service:
                assert service.publisher is not None
                assert service.publisher.versions() == [0]
                service.request_append(append_table(APPEND_ROWS))
                await service.scheduler.quiesce()
                return service.store_digest()["digest"]

        digest = asyncio.run(run())
        publisher = VoiceService(
            make_engine(example_table), config
        ).publisher
        assert publisher.versions() == [0, 1]
        attached = publisher.attach_latest()
        assert attached.snapshot_version == 1
        import hashlib

        frozen_digest = hashlib.sha256(
            canonical_store_payload(attached)
        ).hexdigest()
        assert frozen_digest == digest


class TestAttachMode:
    def test_service_attaches_newest_snapshot(self, engine, example_table, tmp_path):
        publish_config = ServingConfig(concurrency=2, snapshot_dir=str(tmp_path))

        async def publish():
            async with VoiceService(engine, publish_config) as service:
                service.request_append(append_table(APPEND_ROWS))
                await service.scheduler.quiesce()
                return service.store_digest()["digest"]

        digest = asyncio.run(publish())

        attach_config = ServingConfig(
            concurrency=2, snapshot_dir=str(tmp_path), attach_snapshots=True
        )
        attached_service = VoiceService(make_engine(example_table), attach_config)
        # The engine's own (re-preprocessed) store was replaced by the
        # frozen one; the registry starts at the frozen version.
        assert isinstance(attached_service.engine.store, CompactSpeechStore)
        assert attached_service.registry.current.version == 1
        assert attached_service.store_digest()["digest"] == digest

    def test_attach_mode_without_snapshots_fails_loudly(self, engine, tmp_path):
        config = ServingConfig(
            concurrency=2, snapshot_dir=str(tmp_path), attach_snapshots=True
        )
        with pytest.raises(SnapshotError):
            VoiceService(engine, config)

    def test_attached_service_still_maintains(self, engine, example_table, tmp_path):
        base_config = ServingConfig(concurrency=2, snapshot_dir=str(tmp_path))

        async def run():
            # Publish v0 from the first service, then run an attached
            # service through an append: the maintained store must build
            # on the thawed snapshot and refreeze as v1.
            async with VoiceService(engine, base_config):
                pass
            attach_config = base_config.replace(attach_snapshots=True)
            service = VoiceService(make_engine(example_table), attach_config)
            async with service:
                service.request_append(append_table(APPEND_ROWS))
                await service.scheduler.quiesce()
                assert service.registry.current.version == 1
                return service.publisher.versions()

        assert asyncio.run(run()) == [0, 1]
