"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_command(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"

    def test_preprocess_defaults(self):
        args = build_parser().parse_args(["preprocess", "--dataset", "flights"])
        assert args.algorithm == "G-O"
        assert args.facts == 3
        assert args.max_query_length == 1

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["preprocess", "--dataset", "imdb"])


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("ACS NY", "Flights", "Primaries", "Stack Overflow"):
            assert name in output

    def test_preprocess_and_save(self, capsys, tmp_path):
        store_path = tmp_path / "speeches.json"
        code = main(
            [
                "preprocess",
                "--dataset", "flights",
                "--rows", "200",
                "--dimensions", "origin_region", "season",
                "--targets", "cancellation",
                "--algorithm", "G-B",
                "--max-problems", "5",
                "--output", str(store_path),
            ]
        )
        assert code == 0
        assert store_path.exists()
        output = capsys.readouterr().out
        assert "generated 5 speeches" in output
        assert str(store_path) in output

    def test_preprocess_with_workers_matches_serial(self, capsys, tmp_path):
        common = [
            "preprocess",
            "--dataset", "flights",
            "--rows", "200",
            "--dimensions", "origin_region", "season",
            "--targets", "cancellation",
            "--algorithm", "G-B",
        ]
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(common + ["--output", str(serial_path)]) == 0
        assert main(common + ["--workers", "2", "--output", str(parallel_path)]) == 0
        capsys.readouterr()
        assert serial_path.read_text() == parallel_path.read_text()

    def test_ask_answers_questions(self, capsys):
        code = main(
            [
                "ask",
                "--dataset", "flights",
                "--rows", "200",
                "--dimensions", "origin_region", "season",
                "--targets", "cancellation",
                "--algorithm", "G-B",
                "what is the cancellation for Winter",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "user : what is the cancellation for Winter" in output
        assert "voice:" in output

    def test_ask_from_saved_store(self, capsys, tmp_path):
        store_path = tmp_path / "speeches.json"
        main(
            [
                "preprocess",
                "--dataset", "flights",
                "--rows", "200",
                "--dimensions", "origin_region", "season",
                "--targets", "cancellation",
                "--algorithm", "G-B",
                "--output", str(store_path),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "ask",
                "--dataset", "flights",
                "--rows", "200",
                "--dimensions", "origin_region", "season",
                "--targets", "cancellation",
                "--store", str(store_path),
                "cancellation in Winter",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "loaded" in output
        assert "voice:" in output

    def test_experiment_command(self, capsys):
        assert main(["experiment", "table1"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output
        assert "ACS NY" in output

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out


class TestMaintainCommand:
    COMMON = [
        "maintain",
        "--dataset", "flights",
        "--rows", "160",
        "--dimensions", "origin_region", "season",
        "--targets", "cancellation",
        "--algorithm", "G-B",
        "--append-rows", "15",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["maintain", "--dataset", "flights"])
        assert args.command == "maintain"
        assert args.append_rows == 25
        assert args.pool == "fresh"
        assert not args.verify_serial

    def test_pool_choices_are_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["maintain", "--dataset", "flights", "--pool", "forever"]
            )

    def test_serial_maintenance_pass(self, capsys):
        assert main(self.COMMON) == 0
        output = capsys.readouterr().out
        assert "appended 15 rows" in output
        assert "speeches rebuilt" in output
        assert "workers=0" in output

    def test_parallel_pass_verifies_against_serial(self, capsys, tmp_path):
        store_path = tmp_path / "maintained.json"
        code = main(
            self.COMMON
            + [
                "--workers", "2",
                "--pool", "keep",
                "--verify-serial",
                "--output", str(store_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "workers=2, pool=keep" in output
        assert "serial parity verified" in output
        assert store_path.exists()


class TestServeCommand:
    COMMON = [
        "serve",
        "--dataset", "flights",
        "--rows", "160",
        "--dimensions", "origin_region", "season",
        "--targets", "cancellation",
        "--algorithm", "G-B",
        "--append-rows", "15",
        "--requests", "40",
        "--maintain-every", "15",
        "--concurrency", "4",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--dataset", "flights"])
        assert args.command == "serve"
        assert args.requests == 120
        assert args.concurrency == 8
        assert args.queue_depth == 64
        assert args.maintain_every == 40
        assert args.append_rows == 25

    def test_serve_with_background_maintenance(self, capsys):
        assert main(self.COMMON) == 0
        output = capsys.readouterr().out
        assert "served 40 requests" in output
        assert "maintenance job 1 (attempt 1): completed" in output
        assert "snapshot v" in output
        assert "0 errors" in output

    def test_serve_without_maintenance(self, capsys):
        assert main(self.COMMON[:-4] + ["--maintain-every", "0"]) == 0
        output = capsys.readouterr().out
        assert "0 maintenance passes" in output
        assert "maintenance job" not in output
