"""Shared strategies for the compact-store tests.

The generators deliberately draw predicate values across Python's
cross-type equality classes (``1 == 1.0 == True``) because the dict
store keys on raw values — the compact store's canonical value tokens
must collapse exactly the same classes or lookups diverge.

``None`` is excluded from *predicate* values (it stays legal in fact
scopes): ``SpeechStore.linear_best_match`` reads predicates through
``predicate_map.get``, whose missing-column default is also ``None``,
so a stored ``(col, None)`` predicate makes the linear oracle diverge
from the indexed paths.  That pre-existing quirk is orthogonal to the
compact layout, so the parity strategies avoid it.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.model import Fact, Scope, Speech
from repro.system.queries import DataQuery
from repro.system.speech_store import SpeechStore, StoredSpeech

COLUMNS = ("region", "season", "carrier", "month")
TARGETS = ("delay", "cancellation")

finite_floats = st.floats(allow_nan=False, allow_infinity=False)

#: Values usable in query predicates (no None — see module docstring).
predicate_values = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.booleans(),
    st.sampled_from([0.0, 1.0, 2.5, -0.0, 1e300]),
    st.sampled_from(["East", "West", "North", "", "Winter"]),
)

#: Values usable in fact scopes (None allowed there).
scope_values = st.one_of(predicate_values, st.none())


@st.composite
def stored_speeches(draw) -> StoredSpeech:
    target = draw(st.sampled_from(TARGETS))
    columns = draw(
        st.lists(st.sampled_from(COLUMNS), unique=True, min_size=0, max_size=4)
    )
    predicates = {column: draw(predicate_values) for column in columns}
    facts = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        scope_columns = draw(
            st.lists(st.sampled_from(COLUMNS), unique=True, max_size=2)
        )
        scope = Scope({column: draw(scope_values) for column in scope_columns})
        facts.append(
            Fact(
                scope=scope,
                value=draw(finite_floats),
                support=draw(st.integers(min_value=1, max_value=100)),
            )
        )
    return StoredSpeech(
        query=DataQuery.create(target, predicates),
        speech=Speech(facts),
        text=draw(st.text(max_size=12)),
        utility=draw(finite_floats),
        scaled_utility=draw(finite_floats),
        algorithm=draw(st.sampled_from(["", "G-B", "greedy"])),
    )


@st.composite
def stores(draw, min_size: int = 0, max_size: int = 12) -> SpeechStore:
    """A random dict store, including same-key replacements."""
    store = SpeechStore()
    for spec in draw(
        st.lists(stored_speeches(), min_size=min_size, max_size=max_size)
    ):
        store.add(spec)
    return store


@st.composite
def queries(draw, store: SpeechStore) -> DataQuery:
    """A query biased toward stored keys, supersets and near-misses."""
    stored = list(store)
    if stored and draw(st.booleans()):
        base = draw(st.sampled_from(stored)).query
        predicates = dict(base.predicates)
        if draw(st.booleans()):
            extra = draw(st.sampled_from(COLUMNS))
            predicates.setdefault(extra, draw(predicate_values))
        if predicates and draw(st.booleans()):
            predicates.pop(draw(st.sampled_from(sorted(predicates))))
        return DataQuery.create(base.target, predicates)
    target = draw(st.sampled_from(TARGETS))
    columns = draw(
        st.lists(st.sampled_from(COLUMNS), unique=True, min_size=0, max_size=4)
    )
    return DataQuery.create(
        target, {column: draw(predicate_values) for column in columns}
    )
