"""Byte-level parity between the compact store and the dict store.

The compact layout is only admissible because it is *indistinguishable*
from :class:`repro.system.speech_store.SpeechStore` at every observable
surface: canonical payload bytes, iteration order, exact/best match
results (including the insertion-order tie-breaks), and the thawed
clone a maintenance build starts from.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import Fact, Speech
from repro.store import CompactSpeechStore
from repro.system.persistence import canonical_store_payload
from repro.system.queries import DataQuery
from repro.system.speech_store import SpeechStore, StoredSpeech

from tests.store.conftest import queries, stored_speeches, stores


def simple_speech(target: str, predicates: dict, text: str) -> StoredSpeech:
    query = DataQuery.create(target, predicates)
    fact = Fact(scope=query.scope(), value=1.0, support=1)
    return StoredSpeech(query=query, speech=Speech([fact]), text=text)


def assert_same_match(reference, compact, query) -> None:
    """One query, three implementations, identical observable results."""
    ref_exact = reference.exact_match(query)
    got_exact = compact.exact_match(query)
    assert got_exact == ref_exact
    ref_best = reference.best_match(query)
    got_best = compact.best_match(query)
    linear = reference.linear_best_match(query)
    if ref_best is None:
        assert got_best is None
        assert linear is None
        return
    assert got_best is not None and linear is not None
    assert got_best.stored == ref_best.stored == linear.stored
    assert got_best.exact == ref_best.exact == linear.exact


class TestPayloadParity:
    @given(store=stores())
    @settings(max_examples=60, deadline=None)
    def test_canonical_payload_bytes_identical(self, store):
        compact = CompactSpeechStore.from_store(store)
        assert canonical_store_payload(compact) == canonical_store_payload(store)

    @given(store=stores())
    @settings(max_examples=40, deadline=None)
    def test_iteration_targets_and_len(self, store):
        compact = CompactSpeechStore.from_store(store)
        assert len(compact) == len(store)
        assert list(compact) == list(store)
        assert compact.targets() == store.targets()
        for target in store.targets():
            assert compact.speeches_for_target(target) == store.speeches_for_target(
                target
            )

    @given(store=stores())
    @settings(max_examples=40, deadline=None)
    def test_clone_thaws_to_equivalent_mutable_store(self, store):
        thawed = CompactSpeechStore.from_store(store).clone()
        assert isinstance(thawed, SpeechStore)
        assert canonical_store_payload(thawed) == canonical_store_payload(store)
        assert list(thawed) == list(store)


class TestMatchParity:
    @given(data=st.data(), store=stores(min_size=1))
    @settings(max_examples=150, deadline=None)
    def test_match_results_identical(self, data, store):
        compact = CompactSpeechStore.from_store(store)
        for _ in range(4):
            assert_same_match(store, compact, data.draw(queries(store)))

    @given(store=stores(min_size=1))
    @settings(max_examples=60, deadline=None)
    def test_every_stored_key_exact_matches(self, store):
        compact = CompactSpeechStore.from_store(store)
        for spec in store:
            assert compact.exact_match(spec.query) == spec
            best = compact.best_match(spec.query)
            assert best is not None and best.exact and best.stored == spec

    def test_cross_type_equality_classes(self):
        """1 == 1.0 == True must collapse, exactly like dict keys do."""
        store = SpeechStore()
        store.add(simple_speech("delay", {"region": 1}, "one"))
        compact = CompactSpeechStore.from_store(store)
        for alias in (1, 1.0, True):
            aliased = DataQuery.create("delay", {"region": alias})
            assert store.exact_match(aliased) is not None
            assert compact.exact_match(aliased) == store.exact_match(aliased)

    @given(spec=stored_speeches())
    @settings(max_examples=60, deadline=None)
    def test_single_speech_round_trip(self, spec):
        store = SpeechStore()
        store.add(spec)
        compact = CompactSpeechStore.from_store(store)
        assert compact.stored(0) == spec

    def test_replacement_keeps_id_order(self):
        store = SpeechStore()
        store.add(simple_speech("delay", {}, "a"))
        store.add(simple_speech("delay", {"region": "East"}, "b"))
        store.add(simple_speech("delay", {}, "a2"))
        compact = CompactSpeechStore.from_store(store)
        assert [s.text for s in compact] == ["a2", "b"]
        assert canonical_store_payload(compact) == canonical_store_payload(store)

    def test_from_store_accepts_compact_input(self):
        store = SpeechStore()
        store.add(simple_speech("delay", {}, "overall"))
        store.add(simple_speech("delay", {"region": "East"}, "east"))
        once = CompactSpeechStore.from_store(store)
        twice = CompactSpeechStore.from_store(once)
        assert canonical_store_payload(twice) == canonical_store_payload(store)
