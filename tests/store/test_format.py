"""The on-disk snapshot format: round-trips, and loud failure.

The contract under test is absolute: ``attach`` either yields a store
that answers byte-identically to the one ``freeze`` saw, or raises a
typed :class:`repro.store.SnapshotError` — a damaged file may cost an
error, never a wrong match.  Every byte of the file is covered by one
of the three CRCs, so the corruption property is quantified over *any*
single flipped byte and *any* truncation point.
"""

from __future__ import annotations

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotCorruptionError,
    SnapshotError,
    SnapshotFormatError,
    SnapshotPublisher,
    SnapshotVersionError,
    attach,
    freeze,
    snapshot_filename,
)
from repro.store.format import HEADER_SIZE, MAGIC
from repro.system.persistence import canonical_store_payload
from repro.system.speech_store import SpeechStore

from tests.store.conftest import queries, stores


def roundtrip(tmp_path, store, version=None):
    path = tmp_path / "store.snap"
    freeze(store, path, snapshot_version=version)
    return path, attach(path)


class TestRoundTrip:
    @given(data=st.data(), store=stores())
    @settings(max_examples=40, deadline=None)
    def test_freeze_attach_is_identity(self, data, store, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("snap")
        _, attached = roundtrip(tmp_path, store)
        assert len(attached) == len(store)
        assert canonical_store_payload(attached) == canonical_store_payload(store)
        if len(store):
            query = data.draw(queries(store))
            assert attached.best_match(query) == store.best_match(query)

    def test_snapshot_version_round_trips(self, tmp_path):
        _, attached = roundtrip(tmp_path, SpeechStore(), version=7)
        assert attached.snapshot_version == 7
        assert attached.meta["speeches"] == 0

    def test_freeze_is_deterministic(self, tmp_path):
        from tests.store.test_columnar import simple_speech

        store = SpeechStore()
        store.add(simple_speech("delay", {}, "overall"))
        store.add(simple_speech("delay", {"region": "East"}, "east"))
        freeze(store, tmp_path / "a.snap")
        freeze(store, tmp_path / "b.snap")
        assert (tmp_path / "a.snap").read_bytes() == (tmp_path / "b.snap").read_bytes()

    def test_attach_missing_file_raises(self, tmp_path):
        with pytest.raises(SnapshotError):
            attach(tmp_path / "absent.snap")


@pytest.fixture(scope="module")
def frozen_bytes(tmp_path_factory) -> bytes:
    """One deterministic frozen file's bytes, shared across examples."""
    from tests.store.test_columnar import simple_speech

    store = SpeechStore()
    store.add(simple_speech("delay", {}, "overall"))
    store.add(simple_speech("delay", {"region": "East"}, "east"))
    store.add(simple_speech("cancellation", {"season": 2}, "two"))
    path = tmp_path_factory.mktemp("frozen") / "store.snap"
    freeze(store, path, snapshot_version=3)
    return path.read_bytes()


class TestCorruptionMatrix:
    def write(self, tmp_path_factory, blob: bytes):
        path = tmp_path_factory.mktemp("corrupt") / "store.snap"
        path.write_bytes(blob)
        return path

    @given(offset=st.integers(min_value=0))
    @settings(max_examples=120, deadline=None)
    def test_any_flipped_byte_raises_typed_error(
        self, frozen_bytes, tmp_path_factory, offset
    ):
        blob = bytearray(frozen_bytes)
        blob[offset % len(blob)] ^= 0xFF
        with pytest.raises(SnapshotError):
            attach(self.write(tmp_path_factory, bytes(blob)))

    @given(cut=st.integers(min_value=0))
    @settings(max_examples=60, deadline=None)
    def test_any_truncation_raises_typed_error(
        self, frozen_bytes, tmp_path_factory, cut
    ):
        blob = frozen_bytes[: cut % len(frozen_bytes)]
        with pytest.raises(SnapshotError):
            attach(self.write(tmp_path_factory, blob))

    def test_trailing_junk_raises(self, frozen_bytes, tmp_path_factory):
        path = self.write(tmp_path_factory, frozen_bytes + b"junk")
        with pytest.raises(SnapshotCorruptionError):
            attach(path)

    def test_bad_magic_raises_format_error(self, frozen_bytes, tmp_path_factory):
        blob = bytearray(frozen_bytes)
        blob[: len(MAGIC)] = b"NOTASNAP"
        with pytest.raises(SnapshotFormatError):
            attach(self.write(tmp_path_factory, bytes(blob)))

    def test_version_skew_raises_version_error(self, frozen_bytes, tmp_path_factory):
        # Bump the format version *and* recompute the header CRC, so the
        # version check (not the checksum) is what fires.
        blob = bytearray(frozen_bytes)
        blob[8:12] = (SNAPSHOT_FORMAT_VERSION + 1).to_bytes(4, "little")
        blob[40:44] = zlib.crc32(bytes(blob[:40])).to_bytes(4, "little")
        with pytest.raises(SnapshotVersionError):
            attach(self.write(tmp_path_factory, bytes(blob)))

    def test_header_size_is_stable(self, frozen_bytes):
        # The corruption tests poke absolute offsets; pin the layout.
        assert HEADER_SIZE == 44
        assert frozen_bytes[: len(MAGIC)] == MAGIC


class TestPublisher:
    def make_store(self, *texts):
        from tests.store.test_columnar import simple_speech

        store = SpeechStore()
        for index, text in enumerate(texts):
            store.add(simple_speech("delay", {"region": text}, text))
        return store

    def test_publish_attach_latest(self, tmp_path):
        publisher = SnapshotPublisher(tmp_path)
        assert publisher.publish(self.make_store("a"), 0) is not None
        assert publisher.publish(self.make_store("a", "b"), 1) is not None
        assert publisher.versions() == [0, 1]
        attached = publisher.attach_latest()
        assert attached is not None and attached.snapshot_version == 1
        assert len(attached) == 2

    def test_publish_existing_version_is_noop(self, tmp_path):
        publisher = SnapshotPublisher(tmp_path)
        publisher.publish(self.make_store("a"), 0)
        before = publisher.path_for(0).read_bytes()
        publisher.publish(self.make_store("completely", "different"), 0)
        assert publisher.path_for(0).read_bytes() == before
        assert publisher.published == 1

    def test_attach_latest_falls_back_past_corrupt_newest(self, tmp_path):
        publisher = SnapshotPublisher(tmp_path)
        publisher.publish(self.make_store("a"), 0)
        publisher.publish(self.make_store("a", "b"), 1)
        newest = publisher.path_for(1)
        blob = bytearray(newest.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        newest.write_bytes(bytes(blob))
        attached = publisher.attach_latest()
        assert attached is not None and attached.snapshot_version == 0
        assert publisher.last_error is not None

    def test_prune_keeps_newest(self, tmp_path):
        publisher = SnapshotPublisher(tmp_path, keep=2)
        for version in range(5):
            publisher.publish(self.make_store(*"abcde"[: version + 1]), version)
        assert publisher.versions() == [3, 4]

    def test_filename_layout(self):
        assert snapshot_filename(7) == "store-v000000000007.snap"
