"""Property-based tests for the system layer.

Three invariants the deployment relies on are checked over randomly
generated inputs:

* the speech store's most-specific-match rule (S ⊆ Q with |S| maximal),
* lossless persistence of arbitrary stores,
* equivalence of incremental maintenance and a full rebuild.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.model import Fact, Scope, Speech
from repro.core.priors import ZeroPrior
from repro.relational.column import ColumnType
from repro.relational.table import Table
from repro.system.config import SummarizationConfig
from repro.system.persistence import store_from_dict, store_to_dict
from repro.system.preprocessor import Preprocessor
from repro.system.problem_generator import ProblemGenerator
from repro.system.queries import DataQuery
from repro.system.speech_store import SpeechStore, StoredSpeech
from repro.system.updates import IncrementalMaintainer

_DIMENSIONS = ["region", "season"]
_VALUES = {"region": ["East", "West", "North"], "season": ["Winter", "Summer"]}


def _predicate_strategy():
    """Random predicate mappings over the two toy dimensions."""
    return st.fixed_dictionaries(
        {},
        optional={
            "region": st.sampled_from(_VALUES["region"]),
            "season": st.sampled_from(_VALUES["season"]),
        },
    )


@st.composite
def stores_and_queries(draw):
    """A random store plus a random lookup query over the same vocabulary."""
    entries = draw(st.lists(_predicate_strategy(), min_size=1, max_size=8))
    store = SpeechStore()
    for predicates in entries:
        query = DataQuery.create("delay", predicates)
        fact = Fact(scope=Scope(predicates), value=1.0, support=1)
        store.add(StoredSpeech(query=query, speech=Speech([fact]), text=str(predicates)))
    lookup = DataQuery.create("delay", draw(_predicate_strategy()))
    return store, lookup


@settings(max_examples=80, deadline=None)
@given(data=stores_and_queries())
def test_best_match_is_most_specific_containing_subset(data):
    store, lookup = data
    match = store.best_match(lookup)
    stored_queries = [s.query for s in store]
    containing = [q for q in stored_queries if lookup.is_refinement_of(q)]
    if not containing:
        assert match is None
        return
    assert match is not None
    # The matched subset contains the query...
    assert lookup.is_refinement_of(match.stored.query)
    # ...and no containing stored subset is more specific.
    best_length = max(q.length for q in containing)
    assert match.stored.query.length == best_length


@settings(max_examples=60, deadline=None)
@given(data=stores_and_queries())
def test_persistence_round_trip_preserves_lookups(data):
    store, lookup = data
    restored, _ = store_from_dict(store_to_dict(store))
    assert len(restored) == len(store)
    original = store.best_match(lookup)
    reloaded = restored.best_match(lookup)
    if original is None:
        assert reloaded is None
    else:
        assert reloaded is not None
        assert reloaded.stored.query == original.stored.query
        assert reloaded.stored.speech == original.stored.speech


def _rows_strategy(min_size: int, max_size: int):
    return st.lists(
        st.tuples(
            st.sampled_from(_VALUES["region"]),
            st.sampled_from(_VALUES["season"]),
            st.floats(min_value=0, max_value=60, allow_nan=False),
        ),
        min_size=min_size,
        max_size=max_size,
    )


@settings(max_examples=20, deadline=None)
@given(initial=_rows_strategy(6, 14), appended=_rows_strategy(1, 5))
def test_incremental_maintenance_matches_full_rebuild(initial, appended):
    def build_table(rows) -> Table:
        return Table.from_rows(
            "delays",
            ["region", "season", "delay"],
            [ColumnType.CATEGORICAL, ColumnType.CATEGORICAL, ColumnType.NUMERIC],
            rows,
        )

    config = SummarizationConfig.create(
        "delays",
        dimensions=tuple(_DIMENSIONS),
        targets=("delay",),
        max_query_length=1,
        max_facts_per_speech=2,
        max_fact_dimensions=1,
        algorithm="G-B",
    )
    base_table = build_table(initial)
    generator = ProblemGenerator(config, base_table, prior=ZeroPrior())
    store, _ = Preprocessor(config).run(generator)

    maintainer = IncrementalMaintainer(config, base_table, prior=ZeroPrior())
    maintainer.apply_appended_rows(build_table(appended), store)

    full_generator = ProblemGenerator(config, build_table(initial + appended), prior=ZeroPrior())
    full_store, _ = Preprocessor(config).run(full_generator)

    assert len(store) >= len(full_store)
    for stored in full_store:
        incremental = store.exact_match(stored.query)
        assert incremental is not None
        assert abs(incremental.utility - stored.utility) < 1e-6
