"""Unit tests for the end-to-end voice query engine (repro.system.engine)."""

import pytest

from repro.system.classification import RequestType
from repro.system.config import SummarizationConfig
from repro.system.engine import ResponseKind, VoiceQueryEngine
from repro.system.queries import DataQuery


@pytest.fixture()
def engine(example_table) -> VoiceQueryEngine:
    config = SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=1,
        max_facts_per_speech=2,
        max_fact_dimensions=1,
        algorithm="G-B",
    )
    engine = VoiceQueryEngine(
        config,
        example_table,
        target_synonyms={"delay": ["delays"]},
    )
    engine.preprocess()
    return engine


class TestPreprocessing:
    def test_report_available(self, engine):
        assert engine.report is not None
        assert engine.report.speeches_generated == 9
        assert len(engine.store) == 9
        assert engine.table.num_rows == 16

    def test_engine_without_preprocessing_returns_no_data(self, example_table):
        config = SummarizationConfig.create(
            "flight_delays", ("region", "season"), ("delay",), algorithm="G-B"
        )
        cold_engine = VoiceQueryEngine(config, example_table)
        response = cold_engine.ask("what is the delay in Winter")
        assert response.kind is ResponseKind.NO_DATA


class TestAsk:
    def test_supported_query_returns_speech(self, engine):
        response = engine.ask("what is the delay in Winter")
        assert response.kind is ResponseKind.SPEECH
        assert response.request_type is RequestType.SUPPORTED_QUERY
        assert response.exact_match
        assert "Winter" in response.text
        assert response.latency_seconds > 0

    def test_help(self, engine):
        response = engine.ask("help")
        assert response.kind is ResponseKind.HELP
        assert "ask" in response.text.lower()

    def test_repeat_returns_last_answer(self, engine):
        first = engine.ask("what is the delay in Winter")
        repeat = engine.ask("repeat that please")
        assert repeat.kind is ResponseKind.REPEAT
        assert repeat.text == first.text

    def test_repeat_without_history_falls_back_to_help(self, example_table):
        config = SummarizationConfig.create(
            "flight_delays", ("region", "season"), ("delay",), algorithm="G-B"
        )
        engine = VoiceQueryEngine(config, example_table)
        engine.preprocess(max_problems=1)
        response = engine.ask("repeat that")
        assert response.kind is ResponseKind.REPEAT
        assert "ask" in response.text.lower()

    def test_unsupported_query(self, engine):
        response = engine.ask("which region has the highest delay")
        assert response.kind is ResponseKind.UNSUPPORTED
        assert response.request_type is RequestType.UNSUPPORTED_QUERY

    def test_other_request_gets_help_text(self, engine):
        response = engine.ask("play some music")
        assert response.kind is ResponseKind.UNSUPPORTED
        assert response.request_type is RequestType.OTHER

    def test_session_log_records_everything(self, engine):
        engine.ask("help")
        engine.ask("what is the delay in Winter")
        assert len(engine.session_log.requests) >= 2
        assert len(engine.session_log.responses) >= 2


class TestAnswerQuery:
    def test_exact_lookup(self, engine):
        response = engine.answer_query(DataQuery.create("delay", {"season": "Winter"}))
        assert response.kind is ResponseKind.SPEECH
        assert response.exact_match

    def test_fallback_to_containing_subset(self, engine):
        response = engine.answer_query(
            DataQuery.create("delay", {"season": "Winter", "region": "North"})
        )
        assert response.kind is ResponseKind.SPEECH
        assert not response.exact_match

    def test_unknown_target(self, engine):
        response = engine.answer_query(DataQuery.create("price", {}))
        assert response.kind is ResponseKind.NO_DATA
