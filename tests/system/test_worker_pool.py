"""Lifecycle and ordering tests for the persistent worker pool.

The pool is the service layer under parallel pre-processing and
incremental maintenance, so its contract — lazy spawn, reuse across
runs, per-run context broadcast, order-preserving streaming, graceful
(and idempotent) shutdown — is tested directly here, independent of the
summarization stack.
"""

from __future__ import annotations

import pytest

from repro.system.worker_pool import WorkerPool


def scale_chunk(context, chunk):
    """Module-level task (pool workers can only import top-level callables)."""
    return [context["factor"] * value for value in chunk]


def chunk_stream(chunks):
    """A lazy feed, to prove the pool never needs a materialised list."""
    yield from chunks


CHUNKS = [[1, 2], [3], [4, 5, 6], [7]]
DOUBLED = [[2, 4], [6], [8, 10, 12], [14]]


def run_scaled(pool, factor=2, chunks=CHUNKS):
    return list(pool.imap_chunks({"factor": factor}, scale_chunk, chunk_stream(chunks)))


class TestSerialFallback:
    @pytest.mark.parametrize("workers", [0, 1])
    def test_runs_in_process_without_spawning(self, workers):
        with WorkerPool(workers) as pool:
            assert not pool.parallel
            assert run_scaled(pool) == DOUBLED
            assert not pool.spawned
            assert pool.spawn_count == 0

    def test_results_match_parallel(self):
        with WorkerPool(0) as serial, WorkerPool(2) as parallel:
            assert run_scaled(serial) == run_scaled(parallel)


class TestParallelExecution:
    def test_preserves_submission_order(self):
        with WorkerPool(2) as pool:
            results = run_scaled(pool, factor=3)
        assert results == [[3, 6], [9], [12, 15, 18], [21]]

    def test_many_small_chunks_stay_ordered(self):
        chunks = [[i] for i in range(50)]
        with WorkerPool(2) as pool:
            assert run_scaled(pool, chunks=chunks) == [[2 * i] for i in range(50)]

    def test_spawn_is_lazy(self):
        with WorkerPool(2) as pool:
            assert not pool.spawned
            stream = pool.imap_chunks({"factor": 2}, scale_chunk, chunk_stream(CHUNKS))
            # Building the generator must not spawn either.
            assert not pool.spawned
            assert next(stream) == [2, 4]
            assert pool.spawned
            stream.close()

    def test_reuse_across_runs_spawns_once(self):
        with WorkerPool(2) as pool:
            context = {"factor": 2}
            first = list(pool.imap_chunks(context, scale_chunk, chunk_stream(CHUNKS)))
            second = list(pool.imap_chunks(context, scale_chunk, chunk_stream(CHUNKS)))
            assert first == second == DOUBLED
            assert pool.spawn_count == 1

    def test_context_change_rebroadcasts(self):
        with WorkerPool(2) as pool:
            assert run_scaled(pool, factor=2) == DOUBLED
            assert run_scaled(pool, factor=10) == [[10, 20], [30], [40, 50, 60], [70]]
            assert pool.spawn_count == 1

    def test_early_stop_leaves_pool_usable(self):
        with WorkerPool(2) as pool:
            stream = pool.imap_chunks({"factor": 2}, scale_chunk, chunk_stream(CHUNKS))
            assert next(stream) == [2, 4]
            stream.close()
            assert run_scaled(pool, factor=5) == [[5, 10], [15], [20, 25, 30], [35]]


class TestLifecycle:
    def test_context_manager_closes(self):
        with WorkerPool(2) as pool:
            run_scaled(pool)
            assert pool.spawned
        assert not pool.spawned

    def test_double_close_is_idempotent(self):
        pool = WorkerPool(2)
        run_scaled(pool)
        pool.close()
        pool.close()
        assert not pool.spawned

    def test_close_before_spawn_is_a_noop(self):
        pool = WorkerPool(2)
        pool.close()
        assert not pool.spawned
        assert pool.spawn_count == 0

    def test_reuse_after_close_respawns_lazily(self):
        pool = WorkerPool(2)
        assert run_scaled(pool) == DOUBLED
        pool.close()
        assert run_scaled(pool) == DOUBLED
        assert pool.spawn_count == 2
        pool.close()

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(-1)
        with pytest.raises(ValueError, match="lookahead"):
            WorkerPool(2, lookahead=0)
        with pytest.raises(ValueError, match="chunk_timeout"):
            WorkerPool(2, chunk_timeout=0)

    def test_terminate_is_idempotent_and_allows_respawn(self):
        pool = WorkerPool(2)
        run_scaled(pool)
        pool.terminate()
        pool.terminate()
        assert not pool.spawned
        assert run_scaled(pool) == DOUBLED
        assert pool.spawn_count == 2
        pool.close()

    def test_workers_property_reports_configuration(self):
        assert WorkerPool(4).workers == 4
        assert WorkerPool(0).workers == 0
