"""Lifecycle and ordering tests for the persistent worker pool.

The pool is the service layer under parallel pre-processing and
incremental maintenance, so its contract — lazy spawn, reuse across
runs, per-run context broadcast, order-preserving streaming, graceful
(and idempotent) shutdown — is tested directly here, independent of the
summarization stack.
"""

from __future__ import annotations

import time

import pytest

from repro.system.worker_pool import WorkerPool


def scale_chunk(context, chunk):
    """Module-level task (pool workers can only import top-level callables)."""
    return [context["factor"] * value for value in chunk]


def sleepy_chunk(context, chunk):
    """Hold a worker busy for ``chunk`` seconds (broadcast-drain tests)."""
    time.sleep(chunk)
    return chunk


def chunk_stream(chunks):
    """A lazy feed, to prove the pool never needs a materialised list."""
    yield from chunks


CHUNKS = [[1, 2], [3], [4, 5, 6], [7]]
DOUBLED = [[2, 4], [6], [8, 10, 12], [14]]


def run_scaled(pool, factor=2, chunks=CHUNKS):
    return list(pool.imap_chunks({"factor": factor}, scale_chunk, chunk_stream(chunks)))


class TestSerialFallback:
    @pytest.mark.parametrize("workers", [0, 1])
    def test_runs_in_process_without_spawning(self, workers):
        with WorkerPool(workers) as pool:
            assert not pool.parallel
            assert run_scaled(pool) == DOUBLED
            assert not pool.spawned
            assert pool.spawn_count == 0

    def test_results_match_parallel(self):
        with WorkerPool(0) as serial, WorkerPool(2) as parallel:
            assert run_scaled(serial) == run_scaled(parallel)


class TestParallelExecution:
    def test_preserves_submission_order(self):
        with WorkerPool(2) as pool:
            results = run_scaled(pool, factor=3)
        assert results == [[3, 6], [9], [12, 15, 18], [21]]

    def test_many_small_chunks_stay_ordered(self):
        chunks = [[i] for i in range(50)]
        with WorkerPool(2) as pool:
            assert run_scaled(pool, chunks=chunks) == [[2 * i] for i in range(50)]

    def test_spawn_is_lazy(self):
        with WorkerPool(2) as pool:
            assert not pool.spawned
            stream = pool.imap_chunks({"factor": 2}, scale_chunk, chunk_stream(CHUNKS))
            # Building the generator must not spawn either.
            assert not pool.spawned
            assert next(stream) == [2, 4]
            assert pool.spawned
            stream.close()

    def test_reuse_across_runs_spawns_once(self):
        with WorkerPool(2) as pool:
            context = {"factor": 2}
            first = list(pool.imap_chunks(context, scale_chunk, chunk_stream(CHUNKS)))
            second = list(pool.imap_chunks(context, scale_chunk, chunk_stream(CHUNKS)))
            assert first == second == DOUBLED
            assert pool.spawn_count == 1

    def test_context_change_rebroadcasts(self):
        with WorkerPool(2) as pool:
            assert run_scaled(pool, factor=2) == DOUBLED
            assert run_scaled(pool, factor=10) == [[10, 20], [30], [40, 50, 60], [70]]
            assert pool.spawn_count == 1

    def test_early_stop_leaves_pool_usable(self):
        with WorkerPool(2) as pool:
            stream = pool.imap_chunks({"factor": 2}, scale_chunk, chunk_stream(CHUNKS))
            assert next(stream) == [2, 4]
            stream.close()
            assert run_scaled(pool, factor=5) == [[5, 10], [15], [20, 25, 30], [35]]

    def test_abandoned_slow_chunks_do_not_break_next_broadcast(self):
        """The ROADMAP broadcast-timeout edge, as a regression test.

        A chunk abandoned by an early-stopped run may keep a worker
        busy far past the broadcast timeout; the next run's context
        broadcast must drain it instead of breaking the rendezvous
        barrier (which would terminate and respawn the pool).  The
        abandoned sleeps are *uneven* (1.0 s vs 2.5 s) so one worker
        reaches the barrier while the other is still busy well past
        the 0.5 s broadcast timeout — without the drain, the barrier
        breaks and the pool respawns (spawn_count == 2).
        """
        with WorkerPool(2, broadcast_timeout=0.5) as pool:
            stream = pool.imap_chunks(
                {"run": 1}, sleepy_chunk, chunk_stream([0.0, 1.0, 2.5, 0.0])
            )
            # Consume one result, so the workers are mid-sleep on the
            # uneven chunks when the run is abandoned.
            assert next(stream) == 0.0
            stream.close()
            # New context => real re-broadcast, which must survive the
            # still-busy workers without breaking the barrier.
            assert run_scaled(pool, factor=5) == [[5, 10], [15], [20, 25, 30], [35]]
            assert pool.spawn_count == 1

    def test_drain_grants_each_abandoned_chunk_its_own_timeout(self):
        """A healthy pool must survive draining several near-timeout
        chunks whose *sum* exceeds one chunk timeout (each chunk's
        individual runtime is within contract)."""
        with WorkerPool(2, chunk_timeout=2.0, broadcast_timeout=0.5) as pool:
            stream = pool.imap_chunks(
                {"run": 1}, sleepy_chunk, chunk_stream([0.0, 1.2, 1.2, 1.2, 1.2])
            )
            assert next(stream) == 0.0
            stream.close()  # ~4.8 s of abandoned work vs a 2 s chunk timeout
            assert run_scaled(pool, factor=2) == DOUBLED
            assert pool.spawn_count == 1

    def test_abandoned_failing_chunks_are_drained_quietly(self):
        with WorkerPool(2, broadcast_timeout=1.0) as pool:
            stream = pool.imap_chunks(
                {"factor": 2}, scale_chunk, chunk_stream([[1], [None], [None], [2]])
            )
            assert next(stream) == [2]
            stream.close()  # abandons chunks whose tasks raise TypeError
            assert run_scaled(pool, factor=3) == [[3, 6], [9], [12, 15, 18], [21]]
            assert pool.spawn_count == 1


class TestLifecycle:
    def test_context_manager_closes(self):
        with WorkerPool(2) as pool:
            run_scaled(pool)
            assert pool.spawned
        assert not pool.spawned

    def test_double_close_is_idempotent(self):
        pool = WorkerPool(2)
        run_scaled(pool)
        pool.close()
        pool.close()
        assert not pool.spawned

    def test_close_before_spawn_is_a_noop(self):
        pool = WorkerPool(2)
        pool.close()
        assert not pool.spawned
        assert pool.spawn_count == 0

    def test_reuse_after_close_respawns_lazily(self):
        pool = WorkerPool(2)
        assert run_scaled(pool) == DOUBLED
        pool.close()
        assert run_scaled(pool) == DOUBLED
        assert pool.spawn_count == 2
        pool.close()

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(-1)
        with pytest.raises(ValueError, match="lookahead"):
            WorkerPool(2, lookahead=0)
        with pytest.raises(ValueError, match="chunk_timeout"):
            WorkerPool(2, chunk_timeout=0)

    def test_terminate_is_idempotent_and_allows_respawn(self):
        pool = WorkerPool(2)
        run_scaled(pool)
        pool.terminate()
        pool.terminate()
        assert not pool.spawned
        assert run_scaled(pool) == DOUBLED
        assert pool.spawn_count == 2
        pool.close()

    def test_workers_property_reports_configuration(self):
        assert WorkerPool(4).workers == 4
        assert WorkerPool(0).workers == 0
