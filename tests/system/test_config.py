"""Unit tests for repro.system.config."""

import pytest

from repro.system.config import SummarizationConfig


def make_config(**overrides) -> SummarizationConfig:
    kwargs = {
        "table": "flights",
        "dimensions": ("region", "season"),
        "targets": ("delay",),
    }
    kwargs.update(overrides)
    return SummarizationConfig(**kwargs)


class TestValidation:
    def test_defaults_follow_the_paper(self):
        config = make_config()
        assert config.max_query_length == 2
        assert config.max_facts_per_speech == 3
        assert config.max_fact_dimensions == 2
        assert config.algorithm == "G-O"

    def test_requires_dimensions_and_targets(self):
        with pytest.raises(ValueError):
            make_config(dimensions=())
        with pytest.raises(ValueError):
            make_config(targets=())

    def test_rejects_overlapping_columns(self):
        with pytest.raises(ValueError):
            make_config(targets=("region",))

    def test_rejects_invalid_bounds(self):
        with pytest.raises(ValueError):
            make_config(max_query_length=-1)
        with pytest.raises(ValueError):
            make_config(max_facts_per_speech=0)
        with pytest.raises(ValueError):
            make_config(max_fact_dimensions=-2)

    def test_create_helper(self):
        config = SummarizationConfig.create("t", ["a"], ["v"], max_query_length=1)
        assert config.dimensions == ("a",)
        assert config.targets == ("v",)
        assert config.max_query_length == 1


class TestPersistence:
    def test_json_round_trip(self):
        config = make_config(max_query_length=1, algorithm="G-B")
        restored = SummarizationConfig.from_json(config.to_json())
        assert restored == config

    def test_file_round_trip(self, tmp_path):
        config = make_config()
        path = tmp_path / "config.json"
        config.save(path)
        assert SummarizationConfig.load(path) == config

    def test_json_is_readable(self):
        text = make_config().to_json()
        assert '"table": "flights"' in text
        assert '"dimensions"' in text
