"""Unit tests for speech-store persistence (repro.system.persistence)."""

import json

import pytest

from repro.system.config import SummarizationConfig
from repro.system.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    load_store,
    save_store,
    store_from_dict,
    store_to_dict,
)
from repro.system.preprocessor import Preprocessor
from repro.system.problem_generator import ProblemGenerator
from repro.system.queries import DataQuery


@pytest.fixture()
def prepared(example_table):
    config = SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=1,
        max_facts_per_speech=2,
        max_fact_dimensions=1,
        algorithm="G-B",
    )
    generator = ProblemGenerator(config, example_table)
    store, _ = Preprocessor(config).run(generator)
    return config, store


class TestRoundTrip:
    def test_dict_round_trip(self, prepared):
        config, store = prepared
        payload = store_to_dict(store, config)
        restored, restored_config = store_from_dict(payload)
        assert len(restored) == len(store)
        assert restored_config == config
        original = store.exact_match(DataQuery.create("delay", {"season": "Winter"}))
        loaded = restored.exact_match(DataQuery.create("delay", {"season": "Winter"}))
        assert loaded.text == original.text
        assert loaded.speech == original.speech
        assert loaded.utility == pytest.approx(original.utility)

    def test_file_round_trip(self, prepared, tmp_path):
        config, store = prepared
        path = tmp_path / "artifacts" / "speeches.json"
        save_store(store, path, config)
        assert path.exists()
        restored, restored_config = load_store(path)
        assert len(restored) == len(store)
        assert restored_config == config

    def test_round_trip_without_config(self, prepared, tmp_path):
        _, store = prepared
        path = tmp_path / "speeches.json"
        save_store(store, path)
        restored, config = load_store(path)
        assert config is None
        assert len(restored) == len(store)

    def test_lookup_works_after_reload(self, prepared, tmp_path):
        config, store = prepared
        path = tmp_path / "speeches.json"
        save_store(store, path, config)
        restored, _ = load_store(path)
        match = restored.best_match(
            DataQuery.create("delay", {"season": "Winter", "region": "North"})
        )
        assert match is not None
        assert match.stored.query.length == 1


class TestErrorHandling:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_store(tmp_path / "does_not_exist.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError):
            load_store(path)

    def test_wrong_version(self):
        with pytest.raises(PersistenceError):
            store_from_dict({"format_version": FORMAT_VERSION + 1, "speeches": []})

    def test_malformed_entry(self):
        payload = {
            "format_version": FORMAT_VERSION,
            "speeches": [{"predicates": {}, "facts": []}],  # missing target
        }
        with pytest.raises(PersistenceError):
            store_from_dict(payload)

    def test_malformed_fact(self):
        payload = {
            "format_version": FORMAT_VERSION,
            "speeches": [
                {
                    "target": "delay",
                    "predicates": {},
                    "facts": [{"scope": {}, "value": "not-a-number"}],
                }
            ],
        }
        with pytest.raises(PersistenceError):
            store_from_dict(payload)

    def test_artifact_is_plain_json(self, prepared, tmp_path):
        config, store = prepared
        path = tmp_path / "speeches.json"
        save_store(store, path, config)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == FORMAT_VERSION
        assert isinstance(payload["speeches"], list)
        assert payload["config"]["table"] == "flight_delays"
