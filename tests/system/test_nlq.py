"""Unit tests for the natural-language parser (repro.system.nlq)."""

import pytest

from repro.system.config import SummarizationConfig
from repro.system.nlq import NaturalLanguageParser, RequestKind


@pytest.fixture()
def parser(example_table) -> NaturalLanguageParser:
    config = SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=2,
    )
    return NaturalLanguageParser(
        config,
        example_table,
        target_synonyms={"delay": ["delays", "late arrivals"]},
    )


class TestSpecialRequests:
    @pytest.mark.parametrize("text", ["help", "What can I ask you?", "how do I use this"])
    def test_help(self, parser, text):
        assert parser.parse(text).kind is RequestKind.HELP

    @pytest.mark.parametrize("text", ["repeat that", "can you say that again"])
    def test_repeat(self, parser, text):
        assert parser.parse(text).kind is RequestKind.REPEAT

    @pytest.mark.parametrize("text", ["thanks", "play some music", "good morning"])
    def test_other(self, parser, text):
        assert parser.parse(text).kind is RequestKind.OTHER


class TestQueryExtraction:
    def test_target_and_single_predicate(self, parser):
        parsed = parser.parse("what is the delay in Winter?")
        assert parsed.kind is RequestKind.QUERY
        assert parsed.query.target == "delay"
        assert parsed.query.predicate_map == {"season": "Winter"}

    def test_two_predicates(self, parser):
        parsed = parser.parse("delays for North in Winter")
        assert parsed.query.predicate_map == {"region": "North", "season": "Winter"}

    def test_target_synonym(self, parser):
        parsed = parser.parse("how bad are late arrivals in Summer")
        assert parsed.kind is RequestKind.QUERY
        assert parsed.query.target == "delay"

    def test_no_predicates_means_overall(self, parser):
        parsed = parser.parse("what is the average delay")
        assert parsed.kind is RequestKind.QUERY
        assert parsed.query.length == 0

    def test_case_insensitive_value_matching(self, parser):
        parsed = parser.parse("DELAYS IN WINTER")
        assert parsed.query.predicate_map == {"season": "Winter"}

    def test_values_require_word_boundaries(self, parser):
        # "Northern" must not match the region value "North".
        parsed = parser.parse("delays for Northern airlines")
        assert "region" not in parsed.query.predicate_map

    def test_no_target_is_other(self, parser):
        parsed = parser.parse("what about the East")
        assert parsed.kind is RequestKind.OTHER
        # The predicate is still extracted for diagnostics.
        assert parsed.matched_values == {"region": "East"}


class TestUnsupportedShapes:
    def test_comparison(self, parser):
        parsed = parser.parse("compare the delay between East and West")
        assert parsed.kind is RequestKind.COMPARISON
        assert parsed.query is not None
        assert parsed.query.target == "delay"

    def test_extremum(self, parser):
        parsed = parser.parse("which region has the highest delay")
        assert parsed.kind is RequestKind.EXTREMUM

    def test_dimension_synonyms(self, example_table):
        config = SummarizationConfig.create(
            "flight_delays",
            dimensions=("region", "season"),
            targets=("delay",),
        )
        parser = NaturalLanguageParser(
            config,
            example_table,
            dimension_synonyms={"wintertime": ("season", "Winter")},
        )
        parsed = parser.parse("delay in wintertime")
        assert parsed.query.predicate_map == {"season": "Winter"}
