"""Unit tests for the deployment simulator (repro.system.deployment)."""

import pytest

from repro.system.classification import RequestType, analyse_requests
from repro.system.config import SummarizationConfig
from repro.system.deployment import PAPER_REQUEST_MIX, DeploymentSimulator
from repro.system.engine import VoiceQueryEngine
from repro.system.nlq import NaturalLanguageParser


@pytest.fixture()
def config() -> SummarizationConfig:
    return SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=2,
        max_fact_dimensions=1,
        algorithm="G-B",
    )


@pytest.fixture()
def simulator(config, example_table) -> DeploymentSimulator:
    return DeploymentSimulator(config, example_table, seed=3)


class TestLogGeneration:
    def test_log_follows_request_mix(self, simulator):
        log = simulator.generate_log(deployment="flights")
        assert len(log) == sum(PAPER_REQUEST_MIX["flights"].values())
        counts = {}
        for entry in log:
            counts[entry.intended_type] = counts.get(entry.intended_type, 0) + 1
        expected = {
            rtype: count for rtype, count in PAPER_REQUEST_MIX["flights"].items() if count > 0
        }
        assert counts == expected

    def test_custom_mix(self, simulator):
        mix = {RequestType.HELP: 2, RequestType.SUPPORTED_QUERY: 3}
        log = simulator.generate_log(request_mix=mix)
        assert len(log) == 5

    def test_deterministic_given_seed(self, config, example_table):
        a = DeploymentSimulator(config, example_table, seed=9).generate_log()
        b = DeploymentSimulator(config, example_table, seed=9).generate_log()
        assert [entry.text for entry in a] == [entry.text for entry in b]

    def test_supported_queries_respect_config_limits(self, simulator, config):
        log = simulator.generate_log(
            request_mix={RequestType.SUPPORTED_QUERY: 30}
        )
        assert all(entry.predicates <= config.max_query_length for entry in log)

    def test_parser_classification_matches_intent(self, simulator, config, example_table):
        """The classifier recovers the intended mix from the generated texts."""
        parser = NaturalLanguageParser(config, example_table)
        log = simulator.generate_log(deployment="primaries")
        analysis = analyse_requests([parser.parse(e.text) for e in log], config)
        intended = PAPER_REQUEST_MIX["primaries"]
        table_row = analysis.as_table_row()
        assert table_row["Help"] == intended[RequestType.HELP]
        assert table_row["Repeat"] == intended[RequestType.REPEAT]
        # Data-access queries may shift slightly between the supported and
        # unsupported buckets depending on extraction, but their total holds.
        data_access = table_row["S-Query"] + table_row["U-Query"]
        assert data_access == (
            intended[RequestType.SUPPORTED_QUERY] + intended[RequestType.UNSUPPORTED_QUERY]
        )


class TestReplay:
    def test_replay_attaches_responses(self, simulator, config, example_table):
        engine = VoiceQueryEngine(config, example_table)
        engine.preprocess(max_problems=30)
        log = simulator.generate_log(
            request_mix={RequestType.SUPPORTED_QUERY: 5, RequestType.HELP: 1}
        )
        replayed = simulator.replay(engine, log)
        assert len(replayed) == 6
        assert all(entry.response is not None for entry in replayed)
