"""Unit tests for request classification (repro.system.classification)."""

import pytest

from repro.system.classification import (
    QueryShape,
    RequestType,
    analyse_requests,
    classify_request,
    query_shape,
)
from repro.system.config import SummarizationConfig
from repro.system.nlq import NaturalLanguageParser, ParsedRequest, RequestKind
from repro.system.queries import DataQuery


@pytest.fixture()
def config() -> SummarizationConfig:
    return SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=1,
    )


def parsed_query(target, predicates, kind=RequestKind.QUERY) -> ParsedRequest:
    return ParsedRequest(
        text="q", kind=kind, query=DataQuery.create(target, predicates)
    )


class TestClassification:
    def test_help_and_repeat(self, config):
        assert classify_request(ParsedRequest("h", RequestKind.HELP), config) is RequestType.HELP
        assert (
            classify_request(ParsedRequest("r", RequestKind.REPEAT), config)
            is RequestType.REPEAT
        )

    def test_supported_query(self, config):
        parsed = parsed_query("delay", {"region": "East"})
        assert classify_request(parsed, config) is RequestType.SUPPORTED_QUERY

    def test_long_queries_stay_supported(self, config):
        # Queries longer than the pre-processed length are still answered
        # (via the most specific containing subset), hence supported.
        parsed = parsed_query("delay", {"region": "East", "season": "Winter"})
        assert classify_request(parsed, config) is RequestType.SUPPORTED_QUERY

    def test_unknown_target_is_unsupported(self, config):
        parsed = parsed_query("price", {"region": "East"})
        assert classify_request(parsed, config) is RequestType.UNSUPPORTED_QUERY

    def test_unknown_dimension_is_unsupported(self, config):
        parsed = parsed_query("delay", {"airline": "AA"})
        assert classify_request(parsed, config) is RequestType.UNSUPPORTED_QUERY

    def test_comparison_and_extremum_are_unsupported(self, config):
        for kind in (RequestKind.COMPARISON, RequestKind.EXTREMUM):
            parsed = parsed_query("delay", {}, kind=kind)
            assert classify_request(parsed, config) is RequestType.UNSUPPORTED_QUERY

    def test_other(self, config):
        assert (
            classify_request(ParsedRequest("x", RequestKind.OTHER), config)
            is RequestType.OTHER
        )


class TestQueryShape:
    def test_shapes(self):
        assert query_shape(parsed_query("delay", {})) is QueryShape.RETRIEVAL
        assert (
            query_shape(parsed_query("delay", {}, RequestKind.COMPARISON))
            is QueryShape.COMPARISON
        )
        assert (
            query_shape(parsed_query("delay", {}, RequestKind.EXTREMUM))
            is QueryShape.EXTREMUM
        )
        assert query_shape(ParsedRequest("h", RequestKind.HELP)) is None


class TestAnalysis:
    def test_analyse_requests(self, config, example_table):
        parser = NaturalLanguageParser(config, example_table)
        texts = [
            "help",
            "what is the delay in Winter",
            "what is the delay for the North",
            "compare the delay between East and West",
            "thank you",
        ]
        analysis = analyse_requests([parser.parse(t) for t in texts], config)
        assert analysis.total == 5
        table_row = analysis.as_table_row()
        assert table_row["Help"] == 1
        assert table_row["S-Query"] == 2
        assert table_row["U-Query"] == 1
        assert table_row["Other"] == 1
        assert analysis.by_predicate_count[1] == 2
        assert analysis.by_shape[QueryShape.COMPARISON] == 1
