"""Unit tests for repro.system.queries."""

from repro.core.model import Scope
from repro.system.queries import DataQuery


class TestDataQuery:
    def test_create_sorts_predicates(self):
        query = DataQuery.create("delay", {"season": "Winter", "region": "East"})
        assert query.predicates == (("region", "East"), ("season", "Winter"))
        assert query.predicate_map == {"region": "East", "season": "Winter"}
        assert query.length == 2

    def test_empty_query(self):
        query = DataQuery.create("delay")
        assert query.length == 0
        assert query.scope() == Scope()
        assert query.describe() == "delay overall"

    def test_scope(self):
        query = DataQuery.create("delay", {"region": "East"})
        assert query.scope() == Scope({"region": "East"})

    def test_key_is_canonical(self):
        a = DataQuery.create("delay", {"a": 1, "b": 2})
        b = DataQuery.create("delay", {"b": 2, "a": 1})
        assert a.key() == b.key()
        assert a == b
        assert hash(a) == hash(b)

    def test_is_refinement_of(self):
        broad = DataQuery.create("delay", {"region": "East"})
        narrow = DataQuery.create("delay", {"region": "East", "season": "Winter"})
        assert narrow.is_refinement_of(broad)
        assert narrow.is_refinement_of(narrow)
        assert not broad.is_refinement_of(narrow)

    def test_refinement_requires_same_target(self):
        a = DataQuery.create("delay", {"region": "East"})
        b = DataQuery.create("cancellation", {"region": "East"})
        assert not a.is_refinement_of(b)

    def test_refinement_requires_matching_values(self):
        narrow = DataQuery.create("delay", {"region": "East", "season": "Winter"})
        other = DataQuery.create("delay", {"region": "West"})
        assert not narrow.is_refinement_of(other)

    def test_describe_mentions_predicates(self):
        query = DataQuery.create("delay", {"region": "East"})
        assert "region=East" in query.describe()
        assert query.describe().startswith("delay")

    def test_direct_construction_canonicalizes_predicate_order(self):
        direct = DataQuery("delay", (("season", "Winter"), ("region", "East")))
        created = DataQuery.create("delay", {"region": "East", "season": "Winter"})
        assert direct.predicates == (("region", "East"), ("season", "Winter"))
        assert direct == created
        assert direct.key() == created.key()

    def test_predicate_map_is_cached(self):
        query = DataQuery.create("delay", {"region": "East", "season": "Winter"})
        first = query.predicate_map
        assert query.predicate_map is first
        assert first == {"region": "East", "season": "Winter"}

    def test_cached_predicate_map_does_not_affect_equality_or_pickling(self):
        import pickle

        a = DataQuery.create("delay", {"region": "East"})
        b = DataQuery.create("delay", {"region": "East"})
        _ = a.predicate_map  # populate only a's cache
        assert a == b
        assert hash(a) == hash(b)
        restored = pickle.loads(pickle.dumps(a))
        assert restored == a
        assert restored.predicate_map == a.predicate_map
