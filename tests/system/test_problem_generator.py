"""Unit tests for repro.system.problem_generator."""

import pytest

from repro.core.errors import InvalidProblemError
from repro.core.priors import ConstantPrior, ZeroPrior
from repro.system.config import SummarizationConfig
from repro.system.problem_generator import ProblemGenerator
from repro.system.queries import DataQuery


@pytest.fixture()
def config() -> SummarizationConfig:
    return SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=1,
        max_facts_per_speech=2,
        max_fact_dimensions=1,
    )


@pytest.fixture()
def generator(config, example_table) -> ProblemGenerator:
    return ProblemGenerator(config, example_table)


class TestQueryEnumeration:
    def test_counts_queries(self, generator):
        # 1 overall + 4 regions + 4 seasons = 9 queries for the single target.
        assert generator.count_queries() == 9

    def test_query_length_two(self, example_table):
        config = SummarizationConfig.create(
            "flight_delays",
            dimensions=("region", "season"),
            targets=("delay",),
            max_query_length=2,
        )
        generator = ProblemGenerator(config, example_table)
        # 9 plus the 16 (region, season) combinations.
        assert generator.count_queries() == 25

    def test_multiple_targets_multiply_queries(self, example_table):
        table = example_table.with_column(
            example_table.column("delay").renamed("delay_copy")
        )
        config = SummarizationConfig.create(
            "flight_delays",
            dimensions=("region", "season"),
            targets=("delay", "delay_copy"),
            max_query_length=1,
        )
        generator = ProblemGenerator(config, table)
        assert generator.count_queries() == 18

    def test_queries_reference_existing_values(self, generator, example_table):
        regions = set(example_table.column("region").distinct_values())
        for query in generator.enumerate_queries():
            for column, value in query.predicates:
                if column == "region":
                    assert value in regions

    def test_missing_column_rejected(self, config):
        from repro.relational.column import Column
        from repro.relational.table import Table

        table = Table("t", [Column.numeric("delay", [1.0])])
        with pytest.raises(InvalidProblemError):
            ProblemGenerator(config, table)

    @pytest.mark.parametrize("max_query_length", [1, 2, 3])
    @pytest.mark.parametrize("dimensions", [("region",), ("region", "season")])
    def test_arithmetic_count_matches_enumeration(
        self, example_table, dimensions, max_query_length
    ):
        """count_queries is computed from domain sizes, not by exhausting
        the enumeration — the two must always agree."""
        config = SummarizationConfig.create(
            "flight_delays",
            dimensions=dimensions,
            targets=("delay",),
            max_query_length=max_query_length,
        )
        generator = ProblemGenerator(config, example_table)
        enumerated = sum(1 for _ in generator.enumerate_queries())
        assert generator.count_queries() == enumerated

    def test_arithmetic_count_matches_enumeration_multi_target(self, example_table):
        table = example_table.with_column(
            example_table.column("delay").renamed("delay_copy")
        )
        config = SummarizationConfig.create(
            "flight_delays",
            dimensions=("region", "season"),
            targets=("delay", "delay_copy"),
            max_query_length=2,
        )
        generator = ProblemGenerator(config, table)
        assert generator.count_queries() == sum(1 for _ in generator.enumerate_queries())


class TestQueryChunkStreaming:
    def test_chunks_concatenate_to_enumeration_order(self, generator):
        queries = list(generator.enumerate_queries())
        for size in (1, 2, 4, 100):
            chunks = list(generator.enumerate_query_chunks(size))
            flattened = [query for chunk in chunks for query in chunk]
            assert flattened == queries, f"size={size}"
            assert all(len(chunk) <= size for chunk in chunks)
            # Every chunk except the last is full.
            assert all(len(chunk) == size for chunk in chunks[:-1])

    def test_chunk_stream_is_lazy(self, generator):
        stream = generator.enumerate_query_chunks(2)
        first = next(stream)
        assert len(first) == 2
        assert first == list(generator.enumerate_queries())[:2]

    def test_invalid_chunk_size_rejected(self, generator):
        for size in (0, -3):
            with pytest.raises(ValueError, match="chunk size"):
                next(generator.enumerate_query_chunks(size))


class TestProblemConstruction:
    def test_build_problem_for_overall_query(self, generator):
        problem = generator.build_problem(DataQuery.create("delay", {}))
        assert problem is not None
        assert problem.num_rows == 16
        assert problem.max_facts == 2
        # max_fact_dimensions=1: overall + 4 regions + 4 seasons.
        assert problem.num_candidates == 9

    def test_build_problem_restricts_relation(self, generator):
        problem = generator.build_problem(DataQuery.create("delay", {"season": "Winter"}))
        assert problem is not None
        assert problem.num_rows == 4
        assert all(f.scope.restricts("season") for f in problem.candidate_facts)

    def test_default_prior_is_full_table_average(self, generator, example_relation):
        problem = generator.build_problem(DataQuery.create("delay", {"season": "Winter"}))
        prior = problem.prior
        assert isinstance(prior, ConstantPrior)
        assert prior.value == pytest.approx(float(example_relation.target_values.mean()))

    def test_prior_override(self, config, example_table):
        generator = ProblemGenerator(config, example_table, prior=ZeroPrior())
        problem = generator.build_problem(DataQuery.create("delay", {}))
        assert isinstance(problem.prior, ZeroPrior)

    def test_small_subsets_are_skipped(self, example_table):
        config = SummarizationConfig.create(
            "flight_delays",
            dimensions=("region", "season"),
            targets=("delay",),
            max_query_length=2,
        )
        generator = ProblemGenerator(config, example_table, min_subset_rows=2)
        # A (region, season) pair selects exactly one row -> skipped.
        problem = generator.build_problem(
            DataQuery.create("delay", {"region": "East", "season": "Winter"})
        )
        assert problem is None

    def test_unknown_value_yields_none(self, generator):
        assert generator.build_problem(DataQuery.create("delay", {"region": "Atlantis"})) is None

    def test_generate_yields_viable_problems(self, generator):
        generated = list(generator.generate())
        assert len(generated) == 9
        assert all(g.problem.num_candidates >= 1 for g in generated)
        assert all(g.query.target == "delay" for g in generated)

    def test_problem_label_describes_query(self, generator):
        problem = generator.build_problem(DataQuery.create("delay", {"region": "North"}))
        assert "region=North" in problem.label
