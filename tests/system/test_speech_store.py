"""Unit tests for repro.system.speech_store."""

from repro.core.model import Fact, Speech
from repro.system.queries import DataQuery
from repro.system.speech_store import SpeechStore, StoredSpeech


def stored(target: str, predicates: dict, text: str = "speech") -> StoredSpeech:
    query = DataQuery.create(target, predicates)
    fact = Fact(scope=query.scope(), value=1.0, support=1)
    return StoredSpeech(query=query, speech=Speech([fact]), text=text, utility=1.0)


class TestPopulation:
    def test_add_and_len(self):
        store = SpeechStore()
        store.add(stored("delay", {}))
        store.add(stored("delay", {"region": "East"}))
        assert len(store) == 2
        assert store.targets() == ["delay"]
        assert len(store.speeches_for_target("delay")) == 2

    def test_add_replaces_same_query(self):
        store = SpeechStore()
        store.add(stored("delay", {}, text="old"))
        store.add(stored("delay", {}, text="new"))
        assert len(store) == 1
        assert store.exact_match(DataQuery.create("delay", {})).text == "new"
        assert len(store.speeches_for_target("delay")) == 1

    def test_iteration(self):
        store = SpeechStore()
        store.add(stored("delay", {}))
        assert [s.text for s in store] == ["speech"]


class TestLookup:
    def build_store(self) -> SpeechStore:
        store = SpeechStore()
        store.add(stored("delay", {}, text="overall"))
        store.add(stored("delay", {"region": "East"}, text="east"))
        store.add(stored("delay", {"region": "East", "season": "Winter"}, text="east winter"))
        store.add(stored("cancellation", {}, text="cancel overall"))
        return store

    def test_exact_match_preferred(self):
        store = self.build_store()
        match = store.best_match(DataQuery.create("delay", {"region": "East"}))
        assert match is not None
        assert match.exact
        assert match.stored.text == "east"

    def test_most_specific_containing_subset(self):
        store = self.build_store()
        # No speech for (East, Summer); the East speech is the most specific
        # stored subset containing that query.
        match = store.best_match(
            DataQuery.create("delay", {"region": "East", "season": "Summer"})
        )
        assert match is not None
        assert not match.exact
        assert match.stored.text == "east"
        assert match.overlap == 1

    def test_falls_back_to_overall_speech(self):
        store = self.build_store()
        match = store.best_match(DataQuery.create("delay", {"region": "West"}))
        assert match is not None
        assert match.stored.text == "overall"
        assert match.overlap == 0

    def test_unknown_target_returns_none(self):
        store = self.build_store()
        assert store.best_match(DataQuery.create("support", {})) is None

    def test_targets_are_isolated(self):
        store = self.build_store()
        match = store.best_match(DataQuery.create("cancellation", {"region": "East"}))
        assert match is not None
        assert match.stored.text == "cancel overall"

    def test_empty_store(self):
        assert SpeechStore().best_match(DataQuery.create("delay", {})) is None
