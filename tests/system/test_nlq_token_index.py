"""Parity tests: token-indexed parser vs. the full-vocabulary scan.

The token index is a pure candidate filter, so the parsed output of
``NaturalLanguageParser(token_index=True)`` must be identical — field by
field — to the original scan path on every input the engine/nlq suites
exercise, and on arbitrary texts assembled from (and around) the
vocabulary.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.config import SummarizationConfig
from repro.system.nlq import NaturalLanguageParser

#: Every transcript the engine/nlq test suites feed the parser, plus
#: edge cases: punctuation, casing, numbers, unknown words, phrases
#: without word characters and multi-value mentions.
CORPUS = [
    "help",
    "What can I ask you?",
    "how do I use this",
    "instructions please",
    "repeat that",
    "can you say that again",
    "once more",
    "thanks",
    "play some music",
    "good morning",
    "what is the delay in Winter?",
    "delays for North in Winter",
    "how bad are late arrivals in Summer",
    "what is the average delay",
    "DELAYS IN WINTER",
    "delays for Northern airlines",
    "what about the East",
    "compare the delay between East and West",
    "which region has the highest delay",
    "delay in wintertime",
    "what is the delay in Winter",
    "repeat that please",
    "which season has the lowest delay",
    "difference between North and South delays",
    "delay for the South in Summer",
    "is winter worse than summer for delays",
    "delay!!! winter,,, east...",
    "  what   is the   delay  ",
    "",
    "delay delay delay winter winter",
    "what is the delay for 2020",
    "übermäßige delays in winter",
]


def make_parsers(token_index_table):
    config = SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=2,
    )
    kwargs = dict(
        target_synonyms={"delay": ["delays", "late arrivals"]},
        dimension_synonyms={"nyc": ("region", "East")},
    )
    indexed = NaturalLanguageParser(config, token_index_table, token_index=True, **kwargs)
    scan = NaturalLanguageParser(config, token_index_table, token_index=False, **kwargs)
    return indexed, scan


def assert_same_parse(indexed, scan, text):
    left = indexed.parse(text)
    right = scan.parse(text)
    assert left.kind is right.kind, text
    assert left.query == right.query, text
    assert left.matched_values == right.matched_values, text
    assert left.value_mentions == right.value_mentions, text
    assert left.mentioned_dimension == right.mentioned_dimension, text
    assert left.wants_minimum == right.wants_minimum, text


@pytest.fixture()
def parsers(example_table):
    return make_parsers(example_table)


class TestCorpusParity:
    @pytest.mark.parametrize("text", CORPUS)
    def test_parse_identical(self, parsers, text):
        indexed, scan = parsers
        assert_same_parse(indexed, scan, text)

    @pytest.mark.parametrize("text", ["delays for nyc", "compare nyc and West delays"])
    def test_dimension_synonyms_identical(self, parsers, text):
        indexed, scan = parsers
        assert_same_parse(indexed, scan, text)

    def test_helper_outputs_identical(self, parsers):
        indexed, scan = parsers
        for text in CORPUS:
            assert indexed.extract_value_mentions(text) == scan.extract_value_mentions(text)
            assert indexed.extract_dimension_mention(text) == scan.extract_dimension_mention(
                text
            )


WORDS = st.sampled_from(
    [
        "delay",
        "delays",
        "late",
        "arrivals",
        "winter",
        "summer",
        "east",
        "west",
        "north",
        "south",
        "region",
        "season",
        "nyc",
        "the",
        "in",
        "for",
        "compare",
        "versus",
        "highest",
        "lowest",
        "help",
        "repeat",
        "zzz",
        "42",
        "?",
        "north-east",
        "wintertime",
    ]
)


class TestPropertyParity:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(WORDS, min_size=0, max_size=8))
    def test_random_texts_parse_identically(self, words):
        indexed, scan = make_parsers(_table())
        assert_same_parse(indexed, scan, " ".join(words))


def _table():
    from tests.conftest import build_example_table

    return build_example_table()
