"""Unit tests for incremental speech-store maintenance (repro.system.updates)."""

import pytest

from repro.core.priors import ZeroPrior
from repro.relational.column import ColumnType
from repro.relational.table import Table
from repro.system.config import SummarizationConfig
from repro.system.preprocessor import Preprocessor
from repro.system.problem_generator import ProblemGenerator
from repro.system.queries import DataQuery
from repro.system.updates import IncrementalMaintainer


@pytest.fixture()
def config() -> SummarizationConfig:
    return SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=1,
        max_facts_per_speech=2,
        max_fact_dimensions=1,
        algorithm="G-B",
    )


@pytest.fixture()
def prepared(config, example_table):
    generator = ProblemGenerator(config, example_table, prior=ZeroPrior())
    store, _ = Preprocessor(config).run(generator)
    maintainer = IncrementalMaintainer(config, example_table, prior=ZeroPrior())
    return store, maintainer


def new_rows_table(rows) -> Table:
    return Table.from_rows(
        "flight_delays",
        ["region", "season", "delay"],
        [ColumnType.CATEGORICAL, ColumnType.CATEGORICAL, ColumnType.NUMERIC],
        rows,
    )


class TestAffectedQueries:
    def test_only_matching_subsets_are_affected(self, prepared):
        _, maintainer = prepared
        affected = maintainer.affected_queries(
            new_rows_table([("North", "Winter", 90.0)])
        )
        described = {query.describe() for query in affected}
        assert "delay overall" in described
        assert "delay for region=North" in described
        assert "delay for season=Winter" in described
        # Subsets that gained no rows are not affected.
        assert "delay for region=East" not in described
        assert len(affected) == 3

    def test_new_dimension_value_creates_new_query(self, prepared):
        _, maintainer = prepared
        affected = maintainer.affected_queries(
            new_rows_table([("Midwest", "Winter", 12.0)])
        )
        described = {query.describe() for query in affected}
        assert "delay for region=Midwest" in described


class TestApplyAppendedRows:
    def test_affected_speeches_are_rebuilt(self, prepared):
        store, maintainer = prepared
        winter_before = store.exact_match(DataQuery.create("delay", {"season": "Winter"}))
        east_before = store.exact_match(DataQuery.create("delay", {"region": "East"}))

        # A massive new delay in the North in Winter changes those subsets.
        report = maintainer.apply_appended_rows(
            new_rows_table([("North", "Winter", 200.0)]), store
        )
        assert report.new_rows == 1
        assert report.affected_queries == 3
        assert report.rebuilt_speeches == 3
        assert report.total_seconds > 0

        winter_after = store.exact_match(DataQuery.create("delay", {"season": "Winter"}))
        east_after = store.exact_match(DataQuery.create("delay", {"region": "East"}))
        # Affected speech changed (the new outlier dominates the subset).
        assert winter_after.text != winter_before.text
        # Unaffected speech is untouched (same object content).
        assert east_after.text == east_before.text
        assert east_after.utility == pytest.approx(east_before.utility)

    def test_store_stays_consistent_with_full_rebuild(self, prepared, config):
        store, maintainer = prepared
        rows = [("South", "Summer", 55.0), ("West", "Fall", 5.0)]
        maintainer.apply_appended_rows(new_rows_table(rows), store)

        # A full rebuild over the updated table gives the same utilities.
        generator = ProblemGenerator(config, maintainer.table, prior=ZeroPrior())
        full_store, _ = Preprocessor(config).run(generator)
        for stored in full_store:
            incremental = store.exact_match(stored.query)
            assert incremental is not None
            assert incremental.utility == pytest.approx(stored.utility)

    def test_new_value_speech_added(self, prepared):
        store, maintainer = prepared
        before = len(store)
        maintainer.apply_appended_rows(
            new_rows_table([("Midwest", "Winter", 10.0), ("Midwest", "Summer", 12.0)]),
            store,
        )
        assert len(store) == before + 1
        assert store.exact_match(DataQuery.create("delay", {"region": "Midwest"})) is not None

    def test_report_counts_unchanged_speeches(self, prepared):
        store, maintainer = prepared
        report = maintainer.apply_appended_rows(
            new_rows_table([("North", "Winter", 14.0)]), store
        )
        assert report.unchanged_speeches == len(store) - report.rebuilt_speeches
        assert set(report.rebuilt_labels) == {
            "delay overall",
            "delay for region=North",
            "delay for season=Winter",
        }
