"""Unit tests for incremental speech-store maintenance (repro.system.updates)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.priors import ZeroPrior
from repro.relational.column import ColumnType
from repro.relational.table import Table
from repro.system.config import SummarizationConfig
from repro.system.persistence import store_to_dict
from repro.system.preprocessor import Preprocessor
from repro.system.problem_generator import ProblemGenerator
from repro.system.queries import DataQuery
from repro.system.updates import IncrementalMaintainer
from repro.system.worker_pool import WorkerPool


@pytest.fixture()
def config() -> SummarizationConfig:
    return SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=1,
        max_facts_per_speech=2,
        max_fact_dimensions=1,
        algorithm="G-B",
    )


@pytest.fixture()
def prepared(config, example_table):
    generator = ProblemGenerator(config, example_table, prior=ZeroPrior())
    store, _ = Preprocessor(config).run(generator)
    maintainer = IncrementalMaintainer(config, example_table, prior=ZeroPrior())
    return store, maintainer


def new_rows_table(rows) -> Table:
    return Table.from_rows(
        "flight_delays",
        ["region", "season", "delay"],
        [ColumnType.CATEGORICAL, ColumnType.CATEGORICAL, ColumnType.NUMERIC],
        rows,
    )


class TestAffectedQueries:
    def test_only_matching_subsets_are_affected(self, prepared):
        _, maintainer = prepared
        affected = maintainer.affected_queries(
            new_rows_table([("North", "Winter", 90.0)])
        )
        described = {query.describe() for query in affected}
        assert "delay overall" in described
        assert "delay for region=North" in described
        assert "delay for season=Winter" in described
        # Subsets that gained no rows are not affected.
        assert "delay for region=East" not in described
        assert len(affected) == 3

    def test_new_dimension_value_creates_new_query(self, prepared):
        _, maintainer = prepared
        affected = maintainer.affected_queries(
            new_rows_table([("Midwest", "Winter", 12.0)])
        )
        described = {query.describe() for query in affected}
        assert "delay for region=Midwest" in described


class TestApplyAppendedRows:
    def test_affected_speeches_are_rebuilt(self, prepared):
        store, maintainer = prepared
        winter_before = store.exact_match(DataQuery.create("delay", {"season": "Winter"}))
        east_before = store.exact_match(DataQuery.create("delay", {"region": "East"}))

        # A massive new delay in the North in Winter changes those subsets.
        report = maintainer.apply_appended_rows(
            new_rows_table([("North", "Winter", 200.0)]), store
        )
        assert report.new_rows == 1
        assert report.affected_queries == 3
        assert report.rebuilt_speeches == 3
        assert report.total_seconds > 0

        winter_after = store.exact_match(DataQuery.create("delay", {"season": "Winter"}))
        east_after = store.exact_match(DataQuery.create("delay", {"region": "East"}))
        # Affected speech changed (the new outlier dominates the subset).
        assert winter_after.text != winter_before.text
        # Unaffected speech is untouched (same object content).
        assert east_after.text == east_before.text
        assert east_after.utility == pytest.approx(east_before.utility)

    def test_store_stays_consistent_with_full_rebuild(self, prepared, config):
        store, maintainer = prepared
        rows = [("South", "Summer", 55.0), ("West", "Fall", 5.0)]
        maintainer.apply_appended_rows(new_rows_table(rows), store)

        # A full rebuild over the updated table gives the same utilities.
        generator = ProblemGenerator(config, maintainer.table, prior=ZeroPrior())
        full_store, _ = Preprocessor(config).run(generator)
        for stored in full_store:
            incremental = store.exact_match(stored.query)
            assert incremental is not None
            assert incremental.utility == pytest.approx(stored.utility)

    def test_new_value_speech_added(self, prepared):
        store, maintainer = prepared
        before = len(store)
        maintainer.apply_appended_rows(
            new_rows_table([("Midwest", "Winter", 10.0), ("Midwest", "Summer", 12.0)]),
            store,
        )
        assert len(store) == before + 1
        assert store.exact_match(DataQuery.create("delay", {"region": "Midwest"})) is not None

    def test_report_counts_unchanged_speeches(self, prepared):
        store, maintainer = prepared
        report = maintainer.apply_appended_rows(
            new_rows_table([("North", "Winter", 14.0)]), store
        )
        assert report.unchanged_speeches == len(store) - report.rebuilt_speeches
        assert set(report.rebuilt_labels) == {
            "delay overall",
            "delay for region=North",
            "delay for season=Winter",
        }

    def test_new_query_speeches_do_not_count_as_touched(self, prepared):
        """A brand-new query's speech is an *addition*: it must not be
        subtracted from the untouched pre-existing speeches."""
        store, maintainer = prepared
        before = len(store)
        report = maintainer.maintain(
            new_rows_table([("Midwest", "Winter", 10.0), ("Midwest", "Summer", 12.0)]),
            store,
        )
        # Rebuilt: overall, region=Midwest (new), season=Winter, season=Summer.
        assert report.rebuilt_speeches == 4
        assert "delay for region=Midwest" in report.rebuilt_labels
        # Only 3 of the rebuilds replaced existing speeches.
        assert report.unchanged_speeches == before - 3

    def test_maintain_is_the_primary_name(self, prepared):
        store, maintainer = prepared
        report = maintainer.maintain(new_rows_table([("North", "Winter", 14.0)]), store)
        assert report.rebuilt_speeches == 3
        assert report.workers == 0


def store_bytes(store) -> str:
    return json.dumps(store_to_dict(store), sort_keys=True)


def report_counts(report) -> tuple:
    return (
        report.new_rows,
        report.affected_queries,
        report.rebuilt_speeches,
        report.unchanged_speeches,
        report.rebuilt_labels,
    )


NEW_ROWS = [
    ("North", "Winter", 200.0),
    ("Midwest", "Summer", 3.0),
    ("Midwest", "Summer", 9.0),
    ("East", "Fall", 42.0),
]


class TestParallelMaintenance:
    """The pool path must be indistinguishable from the serial pass."""

    @pytest.fixture()
    def length_two_config(self) -> SummarizationConfig:
        return SummarizationConfig.create(
            "flight_delays",
            dimensions=("region", "season"),
            targets=("delay",),
            max_query_length=2,
            max_facts_per_speech=2,
            max_fact_dimensions=1,
            algorithm="G-B",
        )

    def run_maintenance(self, config, table, **kwargs):
        generator = ProblemGenerator(config, table, prior=ZeroPrior())
        store, _ = Preprocessor(config).run(generator)
        maintainer = IncrementalMaintainer(config, table, prior=ZeroPrior())
        report = maintainer.maintain(new_rows_table(NEW_ROWS), store, **kwargs)
        return store, report

    def test_worker_counts_match_serial(self, length_two_config, example_table):
        serial_store, serial_report = self.run_maintenance(
            length_two_config, example_table
        )
        for workers in (2, 3):
            store, report = self.run_maintenance(
                length_two_config, example_table, workers=workers
            )
            assert store_bytes(store) == store_bytes(serial_store), f"workers={workers}"
            assert report_counts(report) == report_counts(serial_report)
            assert report.workers == workers

    def test_chunk_sizes_match_serial(self, length_two_config, example_table):
        serial_store, _ = self.run_maintenance(length_two_config, example_table)
        for chunk_size in (1, 3, 100):
            store, _ = self.run_maintenance(
                length_two_config, example_table, workers=2, chunk_size=chunk_size
            )
            assert store_bytes(store) == store_bytes(serial_store)

    def test_shared_pool_across_passes_spawns_once(
        self, length_two_config, example_table
    ):
        serial_store, serial_report = self.run_maintenance(
            length_two_config, example_table
        )
        with WorkerPool(2) as pool:
            first_store, first_report = self.run_maintenance(
                length_two_config, example_table, pool=pool
            )
            second_store, second_report = self.run_maintenance(
                length_two_config, example_table, pool=pool
            )
            assert pool.spawn_count == 1
        for store, report in ((first_store, first_report), (second_store, second_report)):
            assert store_bytes(store) == store_bytes(serial_store)
            assert report_counts(report) == report_counts(serial_report)
            assert report.workers == 2

    def test_invalid_chunk_size_rejected(self, length_two_config, example_table):
        with pytest.raises(ValueError, match="chunk_size"):
            self.run_maintenance(
                length_two_config, example_table, workers=2, chunk_size=0
            )

    def test_stateful_summarizer_falls_back_to_serial(self, config, example_table):
        from repro.algorithms.random_baseline import RandomSummarizer

        def run(workers):
            generator = ProblemGenerator(config, example_table, prior=ZeroPrior())
            store, _ = Preprocessor(
                config, summarizer=RandomSummarizer(seed=7)
            ).run(generator)
            maintainer = IncrementalMaintainer(
                config, example_table, summarizer=RandomSummarizer(seed=7), prior=ZeroPrior()
            )
            report = maintainer.maintain(new_rows_table(NEW_ROWS), store, workers=workers)
            return store, report

        serial_store, _ = run(workers=0)
        with pytest.warns(UserWarning, match="carries state"):
            store, report = run(workers=2)
        assert report.workers == 0
        assert store_bytes(store) == store_bytes(serial_store)


class TestAffectedQueryProperties:
    """Membership-set discovery must equal the per-row reference scan."""

    CONFIG = SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=2,
        max_facts_per_speech=2,
        max_fact_dimensions=1,
        algorithm="G-B",
    )

    @staticmethod
    def reference_affected(config, table, new_rows):
        """The seed implementation: probe every query against every row."""
        generator = ProblemGenerator(config, table.concat(new_rows))
        new_row_dicts = list(new_rows.iter_rows())
        affected = []
        for query in generator.enumerate_queries():
            scope = query.scope()
            if any(scope.contains_row(row) for row in new_row_dicts):
                affected.append(query)
        return affected

    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.sampled_from(["East", "South", "West", "North", "Midwest"]),
                st.sampled_from(["Spring", "Summer", "Fall", "Winter", "Monsoon"]),
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            ),
            min_size=0,
            max_size=6,
        )
    )
    def test_matches_reference_under_random_appends(self, rows):
        from tests.conftest import build_example_table

        table = build_example_table()
        new_rows = new_rows_table(rows)
        maintainer = IncrementalMaintainer(self.CONFIG, table)
        fast = maintainer.affected_queries(new_rows)
        assert fast == self.reference_affected(self.CONFIG, table, new_rows)

    def test_no_new_rows_affect_nothing(self, example_table):
        maintainer = IncrementalMaintainer(self.CONFIG, example_table)
        assert maintainer.affected_queries(new_rows_table([])) == []

    def test_unsorted_configured_dimensions(self, example_table):
        """Query predicates are column-sorted; configuration order is not.

        Regression test: with dimensions configured as ("season",
        "region") the pair combination key must still match the
        query's canonical ("region", "season") predicate order.
        """
        config = SummarizationConfig.create(
            "flight_delays",
            dimensions=("season", "region"),
            targets=("delay",),
            max_query_length=2,
            max_facts_per_speech=2,
            max_fact_dimensions=1,
            algorithm="G-B",
        )
        new_rows = new_rows_table([("North", "Winter", 99.0)])
        maintainer = IncrementalMaintainer(config, example_table)
        fast = maintainer.affected_queries(new_rows)
        assert fast == self.reference_affected(config, example_table, new_rows)
        described = {query.describe() for query in fast}
        assert "delay for region=North, season=Winter" in described
