"""Parity tests: parallel pre-processing must equal the serial batch.

The pool path chunks queries across worker processes and merges results
back in enumeration order, so the store — and its persisted JSON — must
be byte-identical to a serial run for any worker count, chunk size, or
``max_problems`` cap.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.system.config import SummarizationConfig
from repro.system.persistence import store_to_dict
from repro.system.preprocessor import Preprocessor
from repro.system.problem_generator import ProblemGenerator


@pytest.fixture()
def config() -> SummarizationConfig:
    return SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=2,
        max_facts_per_speech=2,
        max_fact_dimensions=1,
        algorithm="G-B",
    )


def run_with_workers(config, table, workers, **kwargs):
    generator = ProblemGenerator(config, table)
    return Preprocessor(config).run(generator, workers=workers, **kwargs)


def store_bytes(store, config) -> str:
    """The persistence serialisation, as `save_store` would write it."""
    return json.dumps(store_to_dict(store, config), indent=2, sort_keys=True)


def report_fields(report) -> dict:
    """Report as a dict without the timing- and pool-dependent fields."""
    fields = dataclasses.asdict(report)
    fields.pop("total_seconds")
    fields.pop("workers")
    return fields


class TestParallelParity:
    def test_worker_counts_produce_identical_stores_and_reports(self, config, example_table):
        serial_store, serial_report = run_with_workers(config, example_table, workers=0)
        expected = store_bytes(serial_store, config)
        assert serial_report.workers == 0
        for workers in (1, 2, 4):
            store, report = run_with_workers(config, example_table, workers=workers)
            assert store_bytes(store, config) == expected, f"workers={workers}"
            assert report_fields(report) == report_fields(serial_report)
            # workers=1 executes serially, and the report records that.
            assert report.workers == (workers if workers > 1 else 0)

    def test_chunk_size_does_not_affect_the_store(self, config, example_table):
        serial_store, _ = run_with_workers(config, example_table, workers=0)
        expected = store_bytes(serial_store, config)
        for chunk_size in (1, 3, 100):
            store, _ = run_with_workers(
                config, example_table, workers=2, chunk_size=chunk_size
            )
            assert store_bytes(store, config) == expected, f"chunk_size={chunk_size}"

    def test_invalid_chunk_size_rejected(self, config, example_table):
        for chunk_size in (0, -1):
            with pytest.raises(ValueError, match="chunk_size"):
                run_with_workers(
                    config, example_table, workers=2, chunk_size=chunk_size
                )

    def test_max_problems_cap_matches_serial(self, config, example_table):
        serial_store, serial_report = run_with_workers(
            config, example_table, workers=0, max_problems=4
        )
        store, report = run_with_workers(
            config, example_table, workers=2, max_problems=4
        )
        assert store_bytes(store, config) == store_bytes(serial_store, config)
        assert report_fields(report) == report_fields(serial_report)
        assert report.speeches_generated == 4

    def test_parallel_run_time_fields_populated(self, config, example_table):
        _, report = run_with_workers(config, example_table, workers=2)
        assert report.total_seconds > 0
        assert report.per_query_seconds > 0
        assert 0 < report.average_scaled_utility <= 1.0

    def test_streamed_chunks_never_materialise_the_query_list(
        self, config, example_table, monkeypatch
    ):
        """The pool path must consume the chunk stream, not list(queries)."""
        generator = ProblemGenerator(config, example_table)
        chunk_sizes = []
        original = ProblemGenerator.enumerate_query_chunks

        def spying(self, size):
            chunk_sizes.append(size)
            return original(self, size)

        monkeypatch.setattr(ProblemGenerator, "enumerate_query_chunks", spying)
        Preprocessor(config).run(generator, workers=2, chunk_size=3)
        assert chunk_sizes == [3]

    def test_stateful_summarizer_falls_back_to_serial(self, config, example_table):
        from repro.algorithms.random_baseline import RandomSummarizer

        def run_random(workers):
            generator = ProblemGenerator(config, example_table)
            preprocessor = Preprocessor(config, summarizer=RandomSummarizer(seed=42))
            return preprocessor.run(generator, workers=workers)

        serial_store, _ = run_random(workers=0)
        with pytest.warns(UserWarning, match="carries state"):
            store, report = run_random(workers=2)
        # The pool would shard the RNG stream; serial fallback keeps the
        # byte-identity guarantee for every algorithm.
        assert report.workers == 0
        assert store_bytes(store, config) == store_bytes(serial_store, config)


class TestPersistentPoolParity:
    """One caller-owned pool reused across runs: same bytes, one spawn."""

    def test_pool_reuse_matches_serial_for_all_combinations(
        self, config, example_table
    ):
        serial_store, serial_report = run_with_workers(config, example_table, workers=0)
        expected = store_bytes(serial_store, config)
        from repro.system.worker_pool import WorkerPool

        with WorkerPool(2) as pool:
            for chunk_size in (None, 1, 4):
                for max_problems in (None, 4):
                    store, report = run_with_workers(
                        config,
                        example_table,
                        workers=0,  # the pool's worker count must win
                        pool=pool,
                        chunk_size=chunk_size,
                        max_problems=max_problems,
                    )
                    label = f"chunk_size={chunk_size} max_problems={max_problems}"
                    if max_problems is None:
                        assert store_bytes(store, config) == expected, label
                        assert report_fields(report) == report_fields(serial_report)
                    else:
                        capped_store, capped_report = run_with_workers(
                            config, example_table, workers=0, max_problems=max_problems
                        )
                        assert store_bytes(store, config) == store_bytes(
                            capped_store, config
                        ), label
                        assert report_fields(report) == report_fields(capped_report)
                    assert report.workers == 2
            assert pool.spawn_count == 1

    def test_engine_preprocess_accepts_a_shared_pool(self, config, example_table):
        from repro.system.engine import VoiceQueryEngine
        from repro.system.worker_pool import WorkerPool

        serial_engine = VoiceQueryEngine(config, example_table)
        serial_engine.preprocess()
        with WorkerPool(2) as pool:
            engine = VoiceQueryEngine(config, example_table)
            first = engine.preprocess(pool=pool)
            second = engine.preprocess(pool=pool)
            assert pool.spawn_count == 1
        assert first.workers == second.workers == 2
        assert store_bytes(engine.store, config) == store_bytes(
            serial_engine.store, config
        )
