"""Unit tests for repro.system.templates."""

from repro.core.model import Fact, Scope, Speech
from repro.system.queries import DataQuery
from repro.system.templates import SpeechRealizer, TargetPhrasing


def _fact(assignments, value):
    return Fact(scope=Scope(assignments), value=value, support=1)


class TestFactSentences:
    def test_leading_fact_with_scope(self):
        realizer = SpeechRealizer()
        text = realizer.realize_fact("delay_minutes", _fact({"season": "Winter"}, 15.0))
        assert text == "The average delay minutes for season Winter is 15."

    def test_leading_fact_without_scope(self):
        realizer = SpeechRealizer()
        text = realizer.realize_fact("delay", _fact({}, 12.5))
        assert text == "The average delay is 12.5 overall."

    def test_follow_up_facts_use_it_is(self):
        realizer = SpeechRealizer()
        speech = Speech([_fact({}, 12.5), _fact({"region": "North"}, 15.0)])
        text = realizer.realize_facts("delay", speech)
        assert "It is 15 for region North." in text

    def test_empty_speech(self):
        assert SpeechRealizer().realize_facts("delay", Speech()) == "No summary is available."


class TestPhrasing:
    def test_custom_subject_unit_and_scale(self):
        realizer = SpeechRealizer(
            target_phrasings={
                "cancellation": TargetPhrasing(
                    subject="the cancellation probability", unit="%", scale=100.0, decimals=1
                )
            }
        )
        text = realizer.realize_fact("cancellation", _fact({}, 0.062))
        assert text == "The cancellation probability is 6.2% overall."

    def test_small_values_keep_precision(self):
        realizer = SpeechRealizer()
        text = realizer.realize_fact("cancellation", _fact({}, 0.04))
        assert "0.04" in text

    def test_trailing_zeros_trimmed(self):
        text = SpeechRealizer().realize_fact("delay", _fact({}, 20.0))
        assert " 20 " in text or text.endswith("20 overall.")

    def test_dimension_labels(self):
        realizer = SpeechRealizer(dimension_labels={"origin_region": "the region"})
        text = realizer.realize_fact("delay", _fact({"origin_region": "West"}, 9.0))
        assert "the region West" in text


class TestFullSpeeches:
    def test_subset_prefix(self):
        realizer = SpeechRealizer()
        query = DataQuery.create("delay", {"season": "Winter", "region": "East"})
        prefix = realizer.subset_prefix(query)
        assert prefix.startswith("For ")
        assert "season Winter" in prefix
        assert "region East" in prefix
        assert prefix.endswith(":")

    def test_no_prefix_for_overall_query(self):
        assert SpeechRealizer().subset_prefix(DataQuery.create("delay", {})) == ""

    def test_realize_suppresses_query_predicates_in_facts(self):
        """Scope values already fixed by the query are not repeated per fact."""
        realizer = SpeechRealizer()
        query = DataQuery.create("delay", {"season": "Winter"})
        speech = Speech(
            [
                _fact({"season": "Winter"}, 15.0),
                _fact({"season": "Winter", "region": "North"}, 15.0),
            ]
        )
        text = realizer.realize(query, speech)
        assert text.startswith("For season Winter:")
        # The per-fact sentences mention only the additional restriction.
        assert text.count("season Winter") == 1
        assert "region North" in text

    def test_realize_overall_query(self):
        realizer = SpeechRealizer()
        query = DataQuery.create("delay", {})
        speech = Speech([_fact({}, 12.5)])
        assert realizer.realize(query, speech) == "The average delay is 12.5 overall."
