"""Tests for the speech store's indexed lookup paths.

``best_match`` dispatches between subset-key enumeration (short
queries) and posting-list intersection (long queries); both must agree
with the index-free linear scan (``linear_best_match``) on every
store/query combination, including tie-breaking and replacements.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.model import Fact, Scope, Speech
from repro.system.queries import DataQuery
from repro.system.speech_store import SpeechStore, StoredSpeech

_VALUES = {
    "region": ["East", "West", "North"],
    "season": ["Winter", "Summer"],
    "carrier": ["AA", "BB"],
}


def stored(target: str, predicates: dict, text: str = "speech") -> StoredSpeech:
    query = DataQuery.create(target, predicates)
    fact = Fact(scope=Scope(predicates), value=1.0, support=1)
    return StoredSpeech(query=query, speech=Speech([fact]), text=text)


def _predicate_strategy():
    return st.fixed_dictionaries(
        {},
        optional={
            dim: st.sampled_from(values) for dim, values in _VALUES.items()
        },
    )


@st.composite
def stores_and_queries(draw):
    """A random store (with possible duplicate adds) plus a lookup query."""
    entries = draw(st.lists(_predicate_strategy(), min_size=1, max_size=12))
    store = SpeechStore()
    for i, predicates in enumerate(entries):
        store.add(stored("delay", predicates, text=f"speech {i}"))
    lookup = DataQuery.create("delay", draw(_predicate_strategy()))
    return store, lookup


def assert_same_match(store: SpeechStore, lookup: DataQuery) -> None:
    indexed = store.best_match(lookup)
    linear = store.linear_best_match(lookup)
    if linear is None:
        assert indexed is None
        return
    assert indexed is not None
    assert indexed.stored is linear.stored
    assert indexed.exact == linear.exact
    assert indexed.overlap == linear.overlap


@settings(max_examples=150, deadline=None)
@given(data=stores_and_queries())
def test_indexed_match_agrees_with_linear_scan(data):
    store, lookup = data
    assert_same_match(store, lookup)


@settings(max_examples=60, deadline=None)
@given(data=stores_and_queries())
def test_postings_path_agrees_with_linear_scan(data):
    """Force the long-query path regardless of the fast-path threshold."""
    store, lookup = data
    postings = store._postings_match(lookup)
    linear = store.linear_best_match(lookup)
    if linear is None or linear.exact:
        # The postings path is only reached after the exact probe misses.
        return
    assert postings is not None
    assert postings.stored is linear.stored
    assert postings.overlap == linear.overlap


class TestDirectConstruction:
    def test_unsorted_direct_query_matches_stored_subsets(self):
        store = SpeechStore()
        store.add(stored("delay", {"region": "East", "season": "Winter"}, text="ew"))
        lookup = DataQuery(
            "delay",
            (("season", "Winter"), ("region", "East"), ("carrier", "AA")),
        )
        assert_same_match(store, lookup)
        match = store.best_match(lookup)
        assert match is not None
        assert match.stored.text == "ew"


class TestTieBreaking:
    def test_equal_length_matches_break_by_insertion_order(self):
        store = SpeechStore()
        store.add(stored("delay", {"season": "Winter"}, text="winter"))
        store.add(stored("delay", {"region": "East"}, text="east"))
        match = store.best_match(
            DataQuery.create("delay", {"region": "East", "season": "Winter"})
        )
        assert match is not None
        assert match.stored.text == "winter"  # first added wins

    def test_replacement_keeps_tie_break_position(self):
        store = SpeechStore()
        store.add(stored("delay", {"season": "Winter"}, text="winter v1"))
        store.add(stored("delay", {"region": "East"}, text="east"))
        store.add(stored("delay", {"season": "Winter"}, text="winter v2"))
        match = store.best_match(
            DataQuery.create("delay", {"region": "East", "season": "Winter"})
        )
        assert match is not None
        # The replacement carries the original insertion position, so the
        # winter speech still wins the tie — with the new content.
        assert match.stored.text == "winter v2"
        assert len(store) == 2

    def test_longer_match_beats_insertion_order(self):
        store = SpeechStore()
        store.add(stored("delay", {"season": "Winter"}, text="winter"))
        store.add(
            stored("delay", {"region": "East", "season": "Winter"}, text="east winter")
        )
        match = store.best_match(
            DataQuery.create(
                "delay", {"region": "East", "season": "Winter", "carrier": "AA"}
            )
        )
        assert match is not None
        assert match.stored.text == "east winter"
        assert match.overlap == 2


class TestReplacement:
    def test_replacement_is_in_place(self):
        store = SpeechStore()
        store.add(stored("delay", {}, text="overall"))
        store.add(stored("delay", {"region": "East"}, text="east"))
        store.add(stored("delay", {}, text="overall v2"))
        texts = [s.text for s in store.speeches_for_target("delay")]
        assert texts == ["overall v2", "east"]
        assert [s.text for s in store] == ["overall v2", "east"]

    def test_replacement_does_not_grow_the_index(self):
        store = SpeechStore()
        for i in range(5):
            store.add(stored("delay", {"region": "East"}, text=f"v{i}"))
        assert len(store) == 1
        assert store._postings[("delay", "region", "East")] == [0]
        assert store._by_target_length[("delay", 1)] == [0]


class TestLongQueries:
    def test_query_beyond_subset_threshold_uses_postings(self):
        dims = [f"d{i}" for i in range(9)]
        store = SpeechStore()
        store.add(stored("delay", {}, text="overall"))
        store.add(stored("delay", {dims[0]: "v", dims[1]: "v"}, text="pair"))
        lookup = DataQuery.create("delay", {d: "v" for d in dims})
        assert lookup.length > SpeechStore._SUBSET_ENUMERATION_MAX_LENGTH
        match = store.best_match(lookup)
        assert match is not None
        assert match.stored.text == "pair"
        assert_same_match(store, lookup)

    def test_long_query_falls_back_to_overall(self):
        dims = [f"d{i}" for i in range(9)]
        store = SpeechStore()
        store.add(stored("delay", {}, text="overall"))
        match = store.best_match(DataQuery.create("delay", {d: "v" for d in dims}))
        assert match is not None
        assert match.stored.text == "overall"
        assert match.overlap == 0
