"""Parity tests: fragment-cached realizer vs. the uncached render path.

The fragment cache must be invisible: every rendered string —
full speeches, prefixes, standalone facts, formatted values — is
byte-identical to ``SpeechRealizer(fragment_cache=False)``, including
on inputs engineered to collide under naive cache keys (0.0 vs -0.0,
True vs 1).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import Fact, Scope, Speech
from repro.system.queries import DataQuery
from repro.system.templates import SpeechRealizer, TargetPhrasing


def make_realizers():
    kwargs = dict(
        target_phrasings={
            "delay": TargetPhrasing(subject="the average delay", unit=" minutes"),
            "rate": TargetPhrasing(subject="the rate", unit="%", scale=100.0, decimals=0),
        },
        dimension_labels={"region": "region", "season": "the season"},
    )
    return (
        SpeechRealizer(fragment_cache=True, **kwargs),
        SpeechRealizer(fragment_cache=False, **kwargs),
    )


VALUES = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.sampled_from([0.0, -0.0, 1.0, 15.0, 0.004, -0.004, 123456.789]),
)
DIM_VALUES = st.sampled_from(["Winter", "Summer", "East", "West", True, 1, 0, "1", 2.5])
TARGETS = st.sampled_from(["delay", "rate", "on_time_percentage"])


def scopes(min_size=0):
    return st.dictionaries(
        st.sampled_from(["region", "season", "carrier_name"]),
        DIM_VALUES,
        min_size=min_size,
        max_size=3,
    )


class TestByteIdenticalRendering:
    @settings(max_examples=200, deadline=None)
    @given(
        target=TARGETS,
        query_predicates=scopes(),
        fact_values=st.lists(VALUES, min_size=0, max_size=4),
        fact_scopes=st.lists(scopes(), min_size=0, max_size=4),
    )
    def test_realize_identical(self, target, query_predicates, fact_values, fact_scopes):
        cached, uncached = make_realizers()
        query = DataQuery.create(target, query_predicates)
        facts = [
            Fact(scope=Scope(scope), value=value, support=1)
            for value, scope in zip(fact_values, fact_scopes)
        ]
        speech = Speech(facts)
        # Render twice with the cached realizer: first populates the
        # caches, second must serve from them — both byte-identical to
        # the uncached render.
        expected = uncached.realize(query, speech)
        assert cached.realize(query, speech) == expected
        assert cached.realize(query, speech) == expected
        assert cached.subset_prefix(query) == uncached.subset_prefix(query)

    @settings(max_examples=100, deadline=None)
    @given(target=TARGETS, value=VALUES)
    def test_format_value_identical(self, target, value):
        cached, uncached = make_realizers()
        expected = uncached.format_value(target, value)
        assert cached.format_value(target, value) == expected
        assert cached.format_value(target, value) == expected


class TestCacheKeyCollisions:
    def test_negative_zero_distinct_from_zero(self):
        cached, uncached = make_realizers()
        for value in (0.0, -0.0, 0.0):
            assert cached.format_value("delay", value) == uncached.format_value(
                "delay", value
            )

    def test_bool_scope_value_distinct_from_int(self):
        cached, uncached = make_realizers()
        for value in (True, 1, True):
            query = DataQuery.create("delay", {"cancelled": value})
            assert cached.subset_prefix(query) == uncached.subset_prefix(query)

    def test_negative_zero_scope_value_distinct_from_zero(self):
        cached, uncached = make_realizers()
        for value in (0.0, -0.0, 0.0):
            query = DataQuery.create("delay", {"threshold": value})
            assert cached.subset_prefix(query) == uncached.subset_prefix(query)
            fact = Fact(scope=Scope({"threshold": value}), value=5.0, support=1)
            assert cached.realize_fact("delay", fact) == uncached.realize_fact(
                "delay", fact
            )

    def test_int_scope_value_distinct_from_float(self):
        cached, uncached = make_realizers()
        for value in (1, 1.0):
            fact = Fact(scope=Scope({"month": value}), value=5.0, support=1)
            assert cached.realize_fact("delay", fact) == uncached.realize_fact(
                "delay", fact
            )


class TestCacheBehaviour:
    def test_repeated_speech_hits_sentence_cache(self):
        cached, _ = make_realizers()
        query = DataQuery.create("delay", {"season": "Winter"})
        fact = Fact(scope=Scope({"season": "Winter"}), value=15.0, support=4)
        first = cached.realize(query, Speech([fact]))
        assert cached._sentence_fragments  # populated
        assert cached.realize(query, Speech([fact])) == first

    def test_pickling_drops_caches(self):
        import pickle

        cached, uncached = make_realizers()
        query = DataQuery.create("delay", {"season": "Winter"})
        fact = Fact(scope=Scope({"season": "Winter"}), value=15.0, support=4)
        expected = uncached.realize(query, Speech([fact]))
        cached.realize(query, Speech([fact]))
        clone = pickle.loads(pickle.dumps(cached))
        assert not clone._sentence_fragments
        assert clone.realize(query, Speech([fact])) == expected
