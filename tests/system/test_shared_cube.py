"""Shared-cube pre-processing parity.

With ``use_shared_cube=True`` the problem generator serves candidate
facts from one data cube per target instead of re-aggregating each
query's subset.  Both paths must yield speeches of identical utility for
every pre-processed query.
"""

from __future__ import annotations

import pytest

from repro.system.config import SummarizationConfig
from repro.system.engine import VoiceQueryEngine

from tests.conftest import build_example_table


def _build_engine(use_shared_cube: bool) -> VoiceQueryEngine:
    config = SummarizationConfig.create(
        table="flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=1,
        max_facts_per_speech=2,
        max_fact_dimensions=1,
        algorithm="G-B",
    )
    return VoiceQueryEngine(
        config, build_example_table(), use_shared_cube=use_shared_cube
    )


class TestSharedCubePreprocessing:
    def test_same_speech_utilities_as_per_query_generation(self):
        baseline = _build_engine(use_shared_cube=False)
        cubed = _build_engine(use_shared_cube=True)
        report_baseline = baseline.preprocess()
        report_cubed = cubed.preprocess()
        assert report_cubed.speeches_generated == report_baseline.speeches_generated
        assert report_cubed.queries_skipped == report_baseline.queries_skipped
        assert report_cubed.total_utility == pytest.approx(
            report_baseline.total_utility, rel=1e-9
        )
        assert report_cubed.total_scaled_utility == pytest.approx(
            report_baseline.total_scaled_utility, rel=1e-9
        )

    def test_answers_match(self):
        baseline = _build_engine(use_shared_cube=False)
        cubed = _build_engine(use_shared_cube=True)
        baseline.preprocess()
        cubed.preprocess()
        for question in ("what is the delay for Winter?", "what is the delay?"):
            assert cubed.ask(question).text == baseline.ask(question).text
