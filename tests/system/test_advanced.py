"""Unit tests for the comparison / extremum extension (repro.system.advanced)."""

import pytest

from repro.system.advanced import ComparisonAnswerer, ExtremumAnswerer
from repro.system.templates import SpeechRealizer, TargetPhrasing


@pytest.fixture()
def comparer(example_table) -> ComparisonAnswerer:
    return ComparisonAnswerer(example_table, ("region", "season"))


@pytest.fixture()
def extremer(example_table) -> ExtremumAnswerer:
    return ExtremumAnswerer(example_table, ("region", "season"))


class TestComparison:
    def test_compare_two_subsets(self, comparer):
        answer = comparer.compare("delay", {"season": "Winter"}, {"season": "Summer"})
        assert answer is not None
        assert answer.first.average == pytest.approx(15.0)
        # Summer: South 20, North 15, East/West 10 -> 13.75.
        assert answer.second.average == pytest.approx(13.75)
        assert answer.difference == pytest.approx(1.25)
        assert answer.ratio == pytest.approx(15.0 / 13.75)
        assert "higher than" in answer.text
        assert "season Winter" in answer.text

    def test_compare_against_overall(self, comparer):
        answer = comparer.compare("delay", {"region": "North"}, {})
        assert answer is not None
        assert answer.second.describe() == "overall"
        assert answer.second.support == 16

    def test_equal_subsets(self, comparer):
        answer = comparer.compare("delay", {"region": "East"}, {"region": "West"})
        assert answer is not None
        assert "the same as" in answer.text

    def test_empty_subset_returns_none(self, comparer):
        assert comparer.compare("delay", {"region": "Atlantis"}, {}) is None

    def test_custom_phrasing(self, example_table):
        realizer = SpeechRealizer(
            target_phrasings={"delay": TargetPhrasing(subject="the delay", unit=" minutes")}
        )
        comparer = ComparisonAnswerer(example_table, ("region", "season"), realizer=realizer)
        answer = comparer.compare("delay", {"season": "Winter"}, {"season": "Fall"})
        assert "minutes" in answer.text


class TestExtremum:
    def test_highest_by_region(self, extremer):
        answer = extremer.extremum("delay", "region", maximize=True)
        assert answer is not None
        assert answer.best_value == "North"
        assert answer.best_average == pytest.approx(15.0)
        assert answer.runner_up_value is not None
        assert "highest" in answer.text
        assert "North" in answer.text

    def test_lowest_by_region(self, extremer):
        answer = extremer.extremum("delay", "region", maximize=False)
        assert answer is not None
        # East and West tie at 11.25; either may be reported.
        assert answer.best_value in ("East", "West")
        assert answer.best_average == pytest.approx(11.25)
        assert "lowest" in answer.text

    def test_base_predicates_restrict_search(self, extremer):
        answer = extremer.extremum(
            "delay", "region", maximize=True, base_predicates={"season": "Summer"}
        )
        assert answer is not None
        assert answer.best_value == "South"
        assert answer.best_average == pytest.approx(20.0)

    def test_unknown_dimension_returns_none(self, extremer):
        assert extremer.extremum("delay", "airline") is None

    def test_min_support_filters_values(self, example_table):
        extremer = ExtremumAnswerer(example_table, ("region", "season"), min_support=5)
        # Every region has exactly 4 rows, below the support threshold.
        assert extremer.extremum("delay", "region") is None

    def test_single_value_has_no_runner_up(self):
        from repro.relational.column import Column
        from repro.relational.table import Table

        table = Table(
            "tiny",
            [
                Column.categorical("carrier", ["AA", "AA", "AA"]),
                Column.numeric("delay", [5.0, 7.0, 9.0]),
            ],
        )
        answer = ExtremumAnswerer(table, ("carrier",)).extremum("delay", "carrier")
        assert answer is not None
        assert answer.best_value == "AA"
        assert answer.runner_up_value is None
        assert answer.runner_up_average is None
