"""Tests for the engine's comparison / extremum extension and persistence."""

import pytest

from repro.system.config import SummarizationConfig
from repro.system.engine import ResponseKind, VoiceQueryEngine


def build_engine(example_table, enable_advanced: bool) -> VoiceQueryEngine:
    config = SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=1,
        max_facts_per_speech=2,
        max_fact_dimensions=1,
        algorithm="G-B",
    )
    engine = VoiceQueryEngine(
        config,
        example_table,
        target_synonyms={"delay": ["delays"]},
        enable_advanced_queries=enable_advanced,
    )
    engine.preprocess()
    return engine


@pytest.fixture()
def advanced_engine(example_table) -> VoiceQueryEngine:
    return build_engine(example_table, enable_advanced=True)


@pytest.fixture()
def plain_engine(example_table) -> VoiceQueryEngine:
    return build_engine(example_table, enable_advanced=False)


class TestComparisonRequests:
    def test_comparison_answered_when_enabled(self, advanced_engine):
        response = advanced_engine.ask("compare the delay between Winter and Summer")
        assert response.kind is ResponseKind.COMPARISON
        assert "Winter" in response.text
        assert "Summer" in response.text

    def test_comparison_unsupported_when_disabled(self, plain_engine):
        response = plain_engine.ask("compare the delay between Winter and Summer")
        assert response.kind is ResponseKind.UNSUPPORTED

    def test_comparison_with_single_value_falls_back(self, advanced_engine):
        response = advanced_engine.ask("compare the delay for Winter")
        assert response.kind is ResponseKind.UNSUPPORTED

    def test_comparison_without_target_falls_back(self, advanced_engine):
        response = advanced_engine.ask("compare Winter and Summer")
        # No target column mentioned -> parsed without a query -> apology/help.
        assert response.kind is ResponseKind.UNSUPPORTED


class TestExtremumRequests:
    def test_extremum_answered_when_enabled(self, advanced_engine):
        response = advanced_engine.ask("which region has the highest delay")
        assert response.kind is ResponseKind.EXTREMUM
        assert "North" in response.text
        assert "highest" in response.text

    def test_minimum_request(self, advanced_engine):
        response = advanced_engine.ask("which region has the lowest delay")
        assert response.kind is ResponseKind.EXTREMUM
        assert "lowest" in response.text

    def test_extremum_with_base_predicate(self, advanced_engine):
        response = advanced_engine.ask("which region has the highest delay in Summer")
        assert response.kind is ResponseKind.EXTREMUM
        assert "South" in response.text

    def test_extremum_unsupported_when_disabled(self, plain_engine):
        response = plain_engine.ask("which region has the highest delay")
        assert response.kind is ResponseKind.UNSUPPORTED


class TestSpeechPersistenceOnEngine:
    def test_save_and_load_round_trip(self, plain_engine, example_table, tmp_path):
        path = tmp_path / "speeches.json"
        plain_engine.save_speeches(str(path))

        config = plain_engine.config
        fresh = VoiceQueryEngine(config, example_table, target_synonyms={"delay": ["delays"]})
        loaded = fresh.load_speeches(str(path))
        assert loaded == len(plain_engine.store)
        response = fresh.ask("what is the delay in Winter")
        assert response.kind is ResponseKind.SPEECH
