"""Unit tests for the pre-processing batch (repro.system.preprocessor)."""

import pytest

from repro.algorithms.greedy import GreedySummarizer
from repro.system.config import SummarizationConfig
from repro.system.preprocessor import Preprocessor
from repro.system.problem_generator import ProblemGenerator
from repro.system.queries import DataQuery


@pytest.fixture()
def config() -> SummarizationConfig:
    return SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=1,
        max_facts_per_speech=2,
        max_fact_dimensions=1,
        algorithm="G-B",
    )


@pytest.fixture()
def generator(config, example_table) -> ProblemGenerator:
    return ProblemGenerator(config, example_table)


class TestPreprocessing:
    def test_generates_one_speech_per_viable_query(self, config, generator):
        store, report = Preprocessor(config).run(generator)
        assert report.queries_considered == 9
        assert report.speeches_generated == 9
        assert report.queries_skipped == 0
        assert len(store) == 9
        assert report.algorithm == "G-B"
        assert report.total_seconds > 0
        assert report.per_query_seconds > 0
        assert 0 < report.average_scaled_utility <= 1.0

    def test_stored_speech_metadata(self, config, generator):
        store, _ = Preprocessor(config).run(generator)
        stored = store.exact_match(DataQuery.create("delay", {"season": "Winter"}))
        assert stored is not None
        assert stored.algorithm == "G-B"
        assert stored.speech.length >= 1
        assert stored.text
        assert stored.utility >= 0.0

    def test_explicit_summarizer_overrides_config(self, config, generator):
        preprocessor = Preprocessor(config, summarizer=GreedySummarizer())
        assert isinstance(preprocessor.summarizer, GreedySummarizer)
        _, report = preprocessor.run(generator)
        assert report.algorithm == "G-B"

    def test_max_problems_caps_work(self, config, generator):
        store, report = Preprocessor(config).run(generator, max_problems=3)
        assert report.speeches_generated == 3
        assert len(store) == 3
        # All queries are still enumerated (for accounting).
        assert report.queries_considered == 9

    def test_lookup_helper(self, config, generator):
        store, _ = Preprocessor(config).run(generator)
        match = Preprocessor.lookup_query(
            store, DataQuery.create("delay", {"region": "North", "season": "Winter"})
        )
        assert match is not None
        # The 1-predicate store answers the 2-predicate query with the most
        # specific containing subset.
        assert not match.exact
        assert match.stored.query.length == 1

    def test_report_handles_empty_run(self, config, generator):
        _, report = Preprocessor(config).run(generator, max_problems=0)
        assert report.speeches_generated == 0
        assert report.per_query_seconds == 0.0
        assert report.average_scaled_utility == 0.0
