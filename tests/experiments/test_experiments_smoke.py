"""Smoke tests: every experiment runs end-to-end at a tiny scale.

The benchmarks exercise the experiments at the reporting scale; these
tests only verify that each experiment module executes, returns rows,
and preserves the headline relationships the paper reports.
"""


from repro.experiments.ablations import (
    run_exact_pruning_ablation,
    run_greedy_ratio_ablation,
    run_pruning_plan_ablation,
)
from repro.experiments.fig3_algorithms import run_figure3, summarize_figure3
from repro.experiments.fig4_scaling import run_figure4, scaling_series
from repro.experiments.fig5_ratings import quality_rating_correlation, run_figure5
from repro.experiments.fig6_estimation import mean_errors, run_figure6
from repro.experiments.fig7_conflict import best_models, run_figure7
from repro.experiments.fig9_query_mix import dominant_complexity, run_figure9
from repro.experiments.fig10_latency import latency_advantage, run_figure10
from repro.experiments.fig11_baseline_study import overall_winner, run_figure11
from repro.experiments.ml_baseline_study import run_ml_baseline
from repro.experiments.scenarios import TINY_SCALE
from repro.experiments.table1_datasets import run_table1
from repro.experiments.table2_speeches import run_table2
from repro.experiments.table3_requests import run_table3


def test_table1_smoke():
    result = run_table1()
    assert len(result.rows) == 4


def test_figure3_smoke():
    result = run_figure3(scenarios=["A-V", "F-C"], scale=TINY_SCALE)
    assert {row["algorithm"] for row in result.rows} == {"E", "G-B", "G-P", "G-O"}
    summary = summarize_figure3(result)
    assert summary["min_greedy_utility_ratio"] >= 1 - 1 / 2.718281828 - 1e-9


def test_figure4_smoke():
    result = run_figure4(
        scenarios=("A-H",),
        speech_lengths=(2, 3),
        fact_dimensions=(1, 2),
        queries_per_scenario=1,
    )
    assert result.rows
    series = scaling_series(result, "fact_dimensions", "G-P")
    assert "A-H" in series


def test_figure5_smoke():
    result = run_figure5(workers=10, pool_size=30)
    assert len(result.rows) == 6
    assert quality_rating_correlation(result) >= 0.5


def test_figure6_smoke():
    result = run_figure6(workers_per_point=5, pool_size=30, rows=300)
    assert len(result.rows) == 15
    errors = mean_errors(result)
    assert errors["best"] <= errors["worst"] * 1.5


def test_figure7_smoke():
    result = run_figure7(workers_per_combination=10)
    assert len(result.rows) == 8
    assert set(best_models(result)) == {"ACS", "Flights"}


def test_table2_smoke():
    result = run_table2(rows=300, pool_size=30)
    rows = {row["speech"]: row for row in result.rows}
    assert rows["Best"]["scaled_utility"] >= rows["Worst"]["scaled_utility"]


def test_table3_smoke():
    result = run_table3(rows_per_dataset=150)
    assert len(result.rows) == 3
    assert all(sum([r["help"], r["repeat"], r["s_query"], r["u_query"], r["other"]]) == 50
               for r in result.rows)


def test_figure9_smoke():
    result = run_figure9(rows_per_dataset=150)
    assert dominant_complexity(result) == "1 predicates"


def test_figure10_smoke():
    result = run_figure10(queries_per_dataset=3, max_problems=30)
    assert {row["dataset"] for row in result.rows} == {"S", "F", "P"}
    assert all(factor > 1 for factor in latency_advantage(result).values())


def test_figure11_smoke():
    result = run_figure11(workers=15, rows=400)
    assert overall_winner(result) == "This"


def test_ml_baseline_smoke():
    result = run_ml_baseline(rows=400, workers=10)
    assert result.rows
    assert all(row["our_rating"] > row["ml_rating"] for row in result.rows)


def test_figure8_smoke():
    from repro.experiments.fig8_interfaces import run_figure8

    result = run_figure8(participants=3, questions_per_interface=2, rows=300, max_problems=50)
    assert len(result.rows) == 3


def test_ablations_smoke():
    exact = run_exact_pruning_ablation(scenarios=("A-V",))
    assert exact.rows
    plans = run_pruning_plan_ablation(scenarios=("A-V",))
    assert plans.rows
    ratios = run_greedy_ratio_ablation(scenarios=("A-V",))
    assert all(row["ratio"] >= 1 - 1 / 2.718281828 - 1e-9 for row in ratios.rows)
