"""Unit tests for the experiment result container and formatting."""

from repro.experiments.runner import ExperimentResult, format_rows


class TestExperimentResult:
    def test_add_row_and_column(self):
        result = ExperimentResult(name="x", description="demo")
        result.add_row(a=1, b="y")
        result.add_row(a=2, b="z")
        assert result.column("a") == [1, 2]
        assert result.column("missing") == [None, None]

    def test_to_text_contains_header_rows_and_notes(self):
        result = ExperimentResult(name="figureX", description="demo experiment")
        result.add_row(metric="time", value=1.5)
        result.notes.append("scaled down")
        text = result.to_text()
        assert "figureX" in text
        assert "demo experiment" in text
        assert "time" in text
        assert "note: scaled down" in text


class TestFormatRows:
    def test_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_alignment_and_column_union(self):
        text = format_rows([{"a": 1, "b": 2.5}, {"a": 10, "c": "x"}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b", "c"]
        assert len(lines) == 4  # header, separator, two rows

    def test_float_formatting(self):
        text = format_rows([{"v": 0.000123}, {"v": 1234.5}, {"v": 0.0}])
        assert "0.000123" in text
        assert "1,234" in text or "1234" in text
