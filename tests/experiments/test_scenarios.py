"""Unit tests for the scenario builder shared by Figures 3 and 4."""

import pytest

from repro.experiments.scenarios import (
    SCENARIOS,
    ScenarioScale,
    build_scenario_config,
    build_scenario_problems,
    scenario_labels,
)


class TestScenarioDefinitions:
    def test_eight_scenarios_in_figure3_order(self):
        labels = scenario_labels()
        assert labels == ["F-C", "F-D", "A-H", "A-V", "A-C", "S-C", "S-O", "S-S"]

    def test_scenarios_cover_three_datasets(self):
        datasets = {dataset for dataset, _ in SCENARIOS.values()}
        assert datasets == {"flights", "acs", "stackoverflow"}

    def test_config_reflects_scale(self):
        scale = ScenarioScale(max_query_length=2, max_facts_per_speech=4, max_fact_dimensions=1)
        config = build_scenario_config("A-V", scale)
        assert config.max_query_length == 2
        assert config.max_facts_per_speech == 4
        assert config.max_fact_dimensions == 1
        assert config.targets == ("visual_impairment",)


class TestProblemBuilding:
    def test_builds_requested_number_of_problems(self):
        scale = ScenarioScale(queries_per_scenario=3, row_fraction=0.3)
        problems = build_scenario_problems("A-V", scale=scale, seed=1)
        assert 1 <= len(problems) <= 3
        # The overall (no-predicate) query is always included.
        assert any(problem.label.endswith("overall") for problem in problems)

    def test_problems_are_solvable(self):
        from repro.algorithms.greedy import GreedySummarizer

        scale = ScenarioScale(queries_per_scenario=2, row_fraction=0.3, max_fact_dimensions=1)
        problems = build_scenario_problems("F-C", scale=scale, seed=2)
        for problem in problems:
            result = GreedySummarizer().summarize(problem)
            assert 0.0 <= result.scaled_utility <= 1.0 + 1e-9

    def test_seed_controls_query_sample(self):
        scale = ScenarioScale(queries_per_scenario=3, row_fraction=0.3)
        a = [p.label for p in build_scenario_problems("S-O", scale=scale, seed=1)]
        b = [p.label for p in build_scenario_problems("S-O", scale=scale, seed=1)]
        assert a == b

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            build_scenario_problems("X-Y")
