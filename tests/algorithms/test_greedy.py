"""Unit tests for the greedy summarizer (Algorithm 2)."""

import pytest

from repro.algorithms.greedy import GreedySummarizer
from repro.core.model import Speech
from repro.core.priors import ZeroPrior
from repro.core.problem import SummarizationProblem


class TestGreedySelection:
    def test_respects_speech_length(self, example_problem):
        result = GreedySummarizer().summarize(example_problem)
        assert result.speech.length <= example_problem.max_facts
        assert result.algorithm == "G-B"

    def test_first_fact_has_maximal_single_fact_utility(self, small_problem):
        evaluator = small_problem.evaluator()
        best_single = max(
            evaluator.single_fact_utility(f) for f in small_problem.candidate_facts
        )
        result = GreedySummarizer().summarize(small_problem)
        chosen_first_utilities = [
            evaluator.single_fact_utility(f) for f in result.speech.facts
        ]
        assert max(chosen_first_utilities) == pytest.approx(best_single)

    def test_two_fact_speech_on_example(self, small_problem):
        """On the fixture data the best 2-fact speech combines the overall
        average (utility 160) with one of the 15-minute facts (+8.75)."""
        result = GreedySummarizer().summarize(small_problem)
        assert result.utility == pytest.approx(168.75)

    def test_utility_matches_evaluator(self, example_problem):
        result = GreedySummarizer().summarize(example_problem)
        evaluator = example_problem.evaluator()
        assert result.utility == pytest.approx(evaluator.utility(result.speech))
        assert result.scaled_utility == pytest.approx(evaluator.scaled_utility(result.speech))

    def test_does_not_select_duplicate_facts(self, example_problem):
        result = GreedySummarizer().summarize(example_problem)
        assert len(set(result.speech.facts)) == result.speech.length

    def test_early_stop_when_no_gain(self, example_relation):
        # A single useful fact plus the request for three facts: the greedy
        # loop stops once no remaining fact improves utility.
        facts = [
            example_relation.make_fact({"season": "Winter"}),
            example_relation.make_fact({"season": "Winter"}),  # duplicate
        ]
        problem = SummarizationProblem(
            relation=example_relation,
            candidate_facts=facts,
            max_facts=3,
            prior=ZeroPrior(),
        )
        result = GreedySummarizer().summarize(problem)
        assert result.speech.length == 1

    def test_early_stop_can_be_disabled(self, example_relation):
        facts = [
            example_relation.make_fact({"season": "Winter"}),
            example_relation.make_fact({"region": "East"}),
        ]
        problem = SummarizationProblem(
            relation=example_relation,
            candidate_facts=facts,
            max_facts=2,
            prior=ZeroPrior(),
        )
        result = GreedySummarizer(allow_early_stop=False).summarize(problem)
        assert result.speech.length == 2

    def test_statistics_recorded(self, example_problem):
        result = GreedySummarizer().summarize(example_problem)
        stats = result.statistics
        assert stats.elapsed_seconds > 0
        # One gain evaluation per candidate per iteration (minus chosen facts).
        assert stats.fact_evaluations >= example_problem.num_candidates
        assert stats.speeches_considered == result.speech.length

    def test_more_facts_never_hurt(self, example_relation, example_facts):
        utilities = []
        for m in (1, 2, 3, 4):
            problem = SummarizationProblem(
                relation=example_relation,
                candidate_facts=example_facts.facts,
                max_facts=m,
                prior=ZeroPrior(),
            )
            utilities.append(GreedySummarizer().summarize(problem).utility)
        assert utilities == sorted(utilities)

    def test_problem_label_propagated(self, example_problem):
        assert GreedySummarizer().summarize(example_problem).problem_label == "running example"

    def test_single_candidate(self, example_relation):
        fact = example_relation.make_fact({"region": "North"})
        problem = SummarizationProblem(
            relation=example_relation,
            candidate_facts=[fact],
            max_facts=3,
            prior=ZeroPrior(),
        )
        result = GreedySummarizer().summarize(problem)
        assert result.speech == Speech([fact])
