"""Tests for the lazy-greedy summarizer ("G-L") and greedy-path parity.

Lazy greedy is an execution strategy for Algorithm 2, not a different
algorithm: by submodularity (Theorem 1) stale gains upper-bound current
gains, so the fresh top of the bound heap is the true argmax.  The tests
assert selection parity with both greedy execution paths on the running
example and on randomized problems.
"""

from __future__ import annotations

import pytest

from repro.algorithms.greedy import GreedySummarizer
from repro.algorithms.lazy_greedy import LazyGreedySummarizer
from repro.algorithms.registry import make_summarizer
from repro.core.priors import ZeroPrior
from repro.core.problem import SummarizationProblem

from tests.core.test_kernel import random_problem


class TestLazyGreedyParity:
    def test_matches_greedy_on_example(self, example_problem):
        eager = GreedySummarizer().summarize(example_problem)
        lazy = LazyGreedySummarizer().summarize(example_problem)
        assert lazy.speech == eager.speech
        assert lazy.utility == pytest.approx(eager.utility)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_matches_greedy_on_random_problems(self, seed):
        problem = random_problem(seed, max_facts=4)
        eager = GreedySummarizer().summarize(problem)
        lazy = LazyGreedySummarizer().summarize(problem)
        assert lazy.speech == eager.speech

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_kernel_greedy_matches_reference_greedy(self, seed):
        """The vectorized greedy path must select the same speech as the
        per-fact reference path (same tie-breaking by candidate index)."""
        problem = random_problem(seed, max_facts=4)
        kernel = GreedySummarizer(use_kernel=True).summarize(problem)
        reference = GreedySummarizer(use_kernel=False).summarize(problem)
        assert kernel.speech == reference.speech
        assert kernel.utility == pytest.approx(reference.utility)
        assert (
            kernel.statistics.speeches_considered
            == reference.statistics.speeches_considered
        )

    def test_lazy_saves_fact_evaluations(self):
        problem = random_problem(11, max_facts=4)
        eager = GreedySummarizer().summarize(problem)
        lazy = LazyGreedySummarizer().summarize(problem)
        assert lazy.speech == eager.speech
        assert (
            lazy.statistics.fact_evaluations < eager.statistics.fact_evaluations
        )


class TestLazyGreedyBehaviour:
    def test_registered_in_registry(self):
        summarizer = make_summarizer("G-L")
        assert isinstance(summarizer, LazyGreedySummarizer)
        assert summarizer.name == "G-L"

    def test_respects_speech_length(self, example_problem):
        result = LazyGreedySummarizer().summarize(example_problem)
        assert result.speech.length <= example_problem.max_facts

    def test_early_stop_when_no_gain(self, example_relation):
        facts = [
            example_relation.make_fact({"season": "Winter"}),
            example_relation.make_fact({"season": "Winter"}),
        ]
        problem = SummarizationProblem(
            relation=example_relation,
            candidate_facts=facts,
            max_facts=3,
            prior=ZeroPrior(),
        )
        result = LazyGreedySummarizer().summarize(problem)
        assert result.speech.length == 1

    def test_early_stop_can_be_disabled(self, example_relation):
        facts = [
            example_relation.make_fact({"season": "Winter"}),
            example_relation.make_fact({"region": "East"}),
        ]
        problem = SummarizationProblem(
            relation=example_relation,
            candidate_facts=facts,
            max_facts=2,
            prior=ZeroPrior(),
        )
        result = LazyGreedySummarizer(allow_early_stop=False).summarize(problem)
        assert result.speech.length == 2

    def test_utility_matches_evaluator(self, example_problem):
        result = LazyGreedySummarizer().summarize(example_problem)
        evaluator = example_problem.evaluator()
        assert result.utility == pytest.approx(evaluator.utility(result.speech))
