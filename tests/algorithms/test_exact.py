"""Unit tests for the exact summarizer (Algorithm 1)."""

from itertools import combinations

import pytest

from repro.algorithms.exact import ExactSummarizer
from repro.algorithms.greedy import GreedySummarizer
from repro.core.priors import ZeroPrior
from repro.core.problem import SummarizationProblem


def brute_force_optimum(problem) -> float:
    """Reference optimum by enumerating every fact combination."""
    evaluator = problem.evaluator()
    best = 0.0
    facts = list(problem.candidate_facts)
    size = min(problem.max_facts, len(facts))
    for combo in combinations(facts, size):
        best = max(best, evaluator.utility(combo))
    return best


class TestExactOptimality:
    def test_matches_brute_force_two_facts(self, small_problem):
        result = ExactSummarizer().summarize(small_problem)
        assert result.utility == pytest.approx(brute_force_optimum(small_problem))
        assert result.utility == pytest.approx(168.75)

    def test_matches_brute_force_three_facts(self, example_problem):
        result = ExactSummarizer().summarize(example_problem)
        assert result.utility == pytest.approx(brute_force_optimum(example_problem))
        assert result.utility == pytest.approx(175.9375)

    def test_at_least_as_good_as_greedy(self, example_problem):
        exact = ExactSummarizer().summarize(example_problem)
        greedy = GreedySummarizer().summarize(example_problem)
        assert exact.utility >= greedy.utility - 1e-9

    def test_without_bound_pruning_same_result(self, small_problem):
        pruned = ExactSummarizer(use_bound_pruning=True).summarize(small_problem)
        unpruned = ExactSummarizer(use_bound_pruning=False).summarize(small_problem)
        assert pruned.utility == pytest.approx(unpruned.utility)

    def test_pruning_reduces_partial_speeches(self, example_problem):
        pruned = ExactSummarizer(use_bound_pruning=True).summarize(example_problem)
        unpruned = ExactSummarizer(use_bound_pruning=False).summarize(example_problem)
        assert (
            pruned.statistics.speeches_considered
            <= unpruned.statistics.speeches_considered
        )
        assert pruned.statistics.speeches_pruned >= 0
        assert unpruned.statistics.speeches_pruned == 0

    def test_speech_length_bounded_by_candidates(self, example_relation):
        facts = [example_relation.make_fact({"region": "North"})]
        problem = SummarizationProblem(
            relation=example_relation,
            candidate_facts=facts,
            max_facts=3,
            prior=ZeroPrior(),
        )
        result = ExactSummarizer().summarize(problem)
        assert result.speech.length == 1
        assert result.utility == pytest.approx(60.0)

    def test_partial_speech_budget_enforced(self, example_problem):
        tight = ExactSummarizer(use_bound_pruning=False, max_partial_speeches=5)
        with pytest.raises(RuntimeError):
            tight.summarize(example_problem)

    def test_custom_lower_bound_summarizer(self, small_problem):
        # Using greedy explicitly as the bound provider must not change the optimum.
        result = ExactSummarizer(lower_bound_summarizer=GreedySummarizer()).summarize(
            small_problem
        )
        assert result.utility == pytest.approx(168.75)

    def test_algorithm_name(self, small_problem):
        assert ExactSummarizer().summarize(small_problem).algorithm == "E"
