"""Unit tests for fact-group pruning (Algorithm 3)."""

import pytest

from repro.algorithms.base import SummarizerStatistics
from repro.algorithms.cost_model import PruningPlan
from repro.algorithms.pruning import FactGroupPruner, group_facts, group_of_fact
from repro.core.model import Fact, Scope
from repro.facts.groups import FactGroup


class TestGrouping:
    def test_group_of_fact(self):
        fact = Fact(scope=Scope({"region": "East", "season": "Winter"}), value=1.0, support=1)
        assert group_of_fact(fact) == FactGroup(["region", "season"])

    def test_group_facts_partitions(self, example_facts):
        by_group = group_facts(example_facts.facts)
        assert sum(len(v) for v in by_group.values()) == example_facts.count
        assert set(by_group) == {
            FactGroup([]),
            FactGroup(["region"]),
            FactGroup(["season"]),
            FactGroup(["region", "season"]),
        }


class TestComputeGains:
    def _pruner(self, example_facts, example_evaluator) -> FactGroupPruner:
        return FactGroupPruner(group_facts(example_facts.facts), example_evaluator)

    def test_trivial_plan_computes_all_gains(self, example_facts, example_evaluator):
        pruner = self._pruner(example_facts, example_evaluator)
        stats = SummarizerStatistics()
        outcome = pruner.compute_gains(
            example_evaluator.initial_state(), PruningPlan((), ()), stats
        )
        assert len(outcome.gains) == example_facts.count
        assert not outcome.pruned_groups
        assert stats.fact_evaluations == example_facts.count

    def test_best_fact_is_global_maximum(self, example_facts, example_evaluator):
        pruner = self._pruner(example_facts, example_evaluator)
        stats = SummarizerStatistics()
        state = example_evaluator.initial_state()
        outcome = pruner.compute_gains(state, PruningPlan((), ()), stats)
        best_fact, best_gain = outcome.best_fact()
        expected = max(
            example_evaluator.incremental_gain(f, state) for f in example_facts.facts
        )
        assert best_gain == pytest.approx(expected)
        assert best_fact is not None

    def test_pruning_never_hides_the_best_fact(self, example_facts, example_evaluator):
        by_group = group_facts(example_facts.facts)
        pruner = FactGroupPruner(by_group, example_evaluator)
        state = example_evaluator.initial_state()
        # Source: the overall fact (empty group); targets: everything else.
        plan = PruningPlan(
            sources=(FactGroup([]),),
            targets=(FactGroup(["region", "season"]), FactGroup(["region"]), FactGroup(["season"])),
        )
        stats = SummarizerStatistics()
        outcome = pruner.compute_gains(state, plan, stats)
        _, best_gain = outcome.best_fact()
        expected = max(
            example_evaluator.incremental_gain(f, state) for f in example_facts.facts
        )
        assert best_gain == pytest.approx(expected)

    def test_pruned_groups_are_dominated(self, example_facts, example_evaluator):
        by_group = group_facts(example_facts.facts)
        pruner = FactGroupPruner(by_group, example_evaluator)
        state = example_evaluator.initial_state()
        plan = PruningPlan(
            sources=(FactGroup([]),),
            targets=(FactGroup(["region", "season"]), FactGroup(["region"]), FactGroup(["season"])),
        )
        stats = SummarizerStatistics()
        outcome = pruner.compute_gains(state, plan, stats)
        max_source_gain = max(
            example_evaluator.incremental_gain(f, state) for f in by_group[FactGroup([])]
        )
        for group in outcome.pruned_groups:
            bound = example_evaluator.max_group_bound(list(group.dimensions), state)
            # A pruned group's bound must be dominated by the source
            # (directly or through a generalisation it specializes).
            assert bound <= max_source_gain + 1e-9 or any(
                group.is_specialization_of(t)
                and example_evaluator.max_group_bound(list(t.dimensions), state)
                < max_source_gain
                for t in plan.targets
            )

    def test_excluded_facts_are_skipped(self, example_facts, example_evaluator):
        pruner = self._pruner(example_facts, example_evaluator)
        stats = SummarizerStatistics()
        excluded = {example_facts.facts[0]}
        outcome = pruner.compute_gains(
            example_evaluator.initial_state(), PruningPlan((), ()), stats, excluded=excluded
        )
        assert example_facts.facts[0] not in outcome.gains
        assert len(outcome.gains) == example_facts.count - 1

    def test_bound_evaluations_counted(self, example_facts, example_evaluator):
        by_group = group_facts(example_facts.facts)
        pruner = FactGroupPruner(by_group, example_evaluator)
        plan = PruningPlan(
            sources=(FactGroup([]),),
            targets=(FactGroup(["region"]),),
        )
        stats = SummarizerStatistics()
        pruner.compute_gains(example_evaluator.initial_state(), plan, stats)
        assert stats.bound_evaluations == 1
