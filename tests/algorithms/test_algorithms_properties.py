"""Property-based tests across the summarization algorithms.

Random problem instances are generated (small relations, random fact
candidates derived from the data) and the paper's formal guarantees are
verified on each:

* the exact algorithm matches a brute-force optimum (Corollary 1),
* the greedy algorithm achieves at least (1 − 1/e) of the optimum
  (Theorem 3) — in practice far more,
* the pruned greedy variants return exactly the greedy quality,
* bound pruning in the exact algorithm never changes the optimum
  (Theorem 2).
"""

from __future__ import annotations

import math
from itertools import combinations

from hypothesis import given, settings, strategies as st

from repro.algorithms.exact import ExactSummarizer
from repro.algorithms.greedy import GreedySummarizer
from repro.algorithms.pruned_greedy import OptimizedGreedySummarizer, PrunedGreedySummarizer
from repro.core.model import SummarizationRelation
from repro.core.priors import ConstantPrior
from repro.core.problem import SummarizationProblem
from repro.facts.generation import FactGenerator
from repro.relational.column import Column
from repro.relational.table import Table

_DIM1 = ["a", "b", "c"]
_DIM2 = ["x", "y"]


@st.composite
def random_problems(draw):
    """Random small summarization problems with data-derived candidate facts."""
    num_rows = draw(st.integers(min_value=4, max_value=12))
    dim1 = draw(st.lists(st.sampled_from(_DIM1), min_size=num_rows, max_size=num_rows))
    dim2 = draw(st.lists(st.sampled_from(_DIM2), min_size=num_rows, max_size=num_rows))
    values = draw(
        st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=num_rows,
            max_size=num_rows,
        )
    )
    table = Table(
        "random",
        [
            Column.categorical("d1", dim1),
            Column.categorical("d2", dim2),
            Column.numeric("v", values),
        ],
    )
    relation = SummarizationRelation(table, ["d1", "d2"], "v")
    max_extra = draw(st.integers(min_value=1, max_value=2))
    facts = FactGenerator(relation, max_extra_dimensions=max_extra).generate().facts
    max_facts = draw(st.integers(min_value=1, max_value=3))
    prior_value = draw(st.floats(min_value=0, max_value=100, allow_nan=False))
    return SummarizationProblem(
        relation=relation,
        candidate_facts=facts,
        max_facts=max_facts,
        prior=ConstantPrior(prior_value),
    )


def brute_force_optimum(problem) -> float:
    evaluator = problem.evaluator()
    facts = list(problem.candidate_facts)
    size = min(problem.max_facts, len(facts))
    best = 0.0
    for combo in combinations(facts, size):
        best = max(best, evaluator.utility(combo))
    return best


@settings(max_examples=25, deadline=None)
@given(problem=random_problems())
def test_exact_matches_brute_force(problem):
    result = ExactSummarizer().summarize(problem)
    assert math.isclose(result.utility, brute_force_optimum(problem), rel_tol=1e-9, abs_tol=1e-6)


@settings(max_examples=25, deadline=None)
@given(problem=random_problems())
def test_greedy_guarantee_holds(problem):
    optimum = brute_force_optimum(problem)
    greedy = GreedySummarizer().summarize(problem)
    assert greedy.utility >= (1 - 1 / math.e) * optimum - 1e-6
    assert greedy.utility <= optimum + 1e-6


@settings(max_examples=25, deadline=None)
@given(problem=random_problems())
def test_pruned_variants_match_greedy(problem):
    base = GreedySummarizer().summarize(problem).utility
    assert math.isclose(
        PrunedGreedySummarizer().summarize(problem).utility, base, rel_tol=1e-9, abs_tol=1e-6
    )
    assert math.isclose(
        OptimizedGreedySummarizer().summarize(problem).utility, base, rel_tol=1e-9, abs_tol=1e-6
    )


@settings(max_examples=25, deadline=None)
@given(problem=random_problems())
def test_exact_bound_pruning_preserves_optimum(problem):
    with_pruning = ExactSummarizer(use_bound_pruning=True).summarize(problem)
    without_pruning = ExactSummarizer(use_bound_pruning=False).summarize(problem)
    assert math.isclose(
        with_pruning.utility, without_pruning.utility, rel_tol=1e-9, abs_tol=1e-6
    )
