"""Unit tests for the sampling-based baseline (Section VIII-E)."""

import pytest

from repro.algorithms.sampling_baseline import RangeFact, SamplingBaselineSummarizer
from repro.core.model import Scope


class TestRangeFact:
    def test_to_fact(self):
        range_fact = RangeFact(
            scope=Scope({"season": "Winter"}), low=10.0, high=20.0, point=15.0, support=4
        )
        fact = range_fact.to_fact()
        assert fact.value == 15.0
        assert fact.scope == Scope({"season": "Winter"})
        assert fact.support == 4


class TestSamplingBaseline:
    def test_produces_ranges_and_timings(self, example_problem):
        baseline = SamplingBaselineSummarizer(sample_fraction=0.5, rounds=2, seed=3)
        summary = baseline.vocalize(example_problem)
        assert 1 <= len(summary.range_facts) <= example_problem.max_facts
        assert summary.total_time > 0
        assert 0 < summary.first_sentence_latency <= summary.total_time + 1e-9
        assert summary.sample_rows > 0
        for range_fact in summary.range_facts:
            assert range_fact.low <= range_fact.point <= range_fact.high

    def test_selected_facts_are_candidates(self, example_problem):
        baseline = SamplingBaselineSummarizer(sample_fraction=0.5, rounds=2, seed=3)
        summary = baseline.vocalize(example_problem)
        candidates = set(example_problem.candidate_facts)
        assert all(fact in candidates for fact in summary.selected_facts)
        assert summary.candidate_speech().length == len(summary.selected_facts)

    def test_summarizer_interface(self, example_problem):
        baseline = SamplingBaselineSummarizer(sample_fraction=0.5, seed=3)
        result = baseline.summarize(example_problem)
        assert result.algorithm == "SAMPLING"
        assert result.speech.length >= 1
        # Sampling cannot beat the exhaustive optimum.
        assert result.utility <= 175.9375 + 1e-6

    def test_deterministic_given_seed(self, example_problem):
        a = SamplingBaselineSummarizer(seed=11).vocalize(example_problem)
        b = SamplingBaselineSummarizer(seed=11).vocalize(example_problem)
        assert [rf.scope for rf in a.range_facts] == [rf.scope for rf in b.range_facts]

    def test_full_sample_matches_greedy_choice_quality(self, example_problem):
        """With a 100% sample the baseline follows exact greedy gains."""
        from repro.algorithms.greedy import GreedySummarizer

        baseline = SamplingBaselineSummarizer(sample_fraction=1.0, rounds=1, seed=5)
        greedy = GreedySummarizer().summarize(example_problem)
        evaluator = example_problem.evaluator()
        summary = baseline.vocalize(example_problem)
        assert evaluator.utility(summary.candidate_speech()) == pytest.approx(
            greedy.utility
        )

    def test_mean_relative_range_width(self, example_problem):
        summary = SamplingBaselineSummarizer(sample_fraction=0.3, seed=3).vocalize(
            example_problem
        )
        assert summary.mean_relative_range_width >= 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SamplingBaselineSummarizer(sample_fraction=0.0)
        with pytest.raises(ValueError):
            SamplingBaselineSummarizer(rounds=0)
