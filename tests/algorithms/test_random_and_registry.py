"""Unit tests for the random baseline and the algorithm registry."""

import pytest

from repro.algorithms.exact import ExactSummarizer
from repro.algorithms.greedy import GreedySummarizer
from repro.algorithms.pruned_greedy import OptimizedGreedySummarizer, PrunedGreedySummarizer
from repro.algorithms.random_baseline import RandomSummarizer
from repro.algorithms.registry import available_summarizers, make_summarizer
from repro.algorithms.sampling_baseline import SamplingBaselineSummarizer


class TestRandomSummarizer:
    def test_selects_requested_number_of_facts(self, example_problem):
        result = RandomSummarizer(seed=1).summarize(example_problem)
        assert result.speech.length == example_problem.max_facts
        assert result.algorithm == "RANDOM"

    def test_deterministic_with_seed(self, example_problem):
        a = RandomSummarizer(seed=42).summarize(example_problem)
        b = RandomSummarizer(seed=42).summarize(example_problem)
        assert a.speech == b.speech

    def test_sample_speeches(self, example_problem):
        speeches = RandomSummarizer(seed=3).sample_speeches(example_problem, 10)
        assert len(speeches) == 10
        assert all(s.length == example_problem.max_facts for s in speeches)
        # Random pools should contain diverse speeches.
        assert len(set(speeches)) > 1

    def test_never_beats_exact(self, example_problem):
        exact = ExactSummarizer().summarize(example_problem)
        evaluator = example_problem.evaluator()
        for speech in RandomSummarizer(seed=7).sample_speeches(example_problem, 20):
            assert evaluator.utility(speech) <= exact.utility + 1e-9


class TestRegistry:
    def test_available_names(self):
        assert set(available_summarizers()) == {
            "E", "G-B", "G-L", "G-P", "G-O", "SAMPLING", "RANDOM",
        }

    @pytest.mark.parametrize(
        "name, expected_type",
        [
            ("E", ExactSummarizer),
            ("G-B", GreedySummarizer),
            ("G-P", PrunedGreedySummarizer),
            ("G-O", OptimizedGreedySummarizer),
            ("SAMPLING", SamplingBaselineSummarizer),
            ("RANDOM", RandomSummarizer),
        ],
    )
    def test_make_summarizer(self, name, expected_type):
        assert isinstance(make_summarizer(name), expected_type)

    def test_make_summarizer_forwards_kwargs(self):
        summarizer = make_summarizer("RANDOM", seed=5)
        assert isinstance(summarizer, RandomSummarizer)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_summarizer("DOES-NOT-EXIST")
