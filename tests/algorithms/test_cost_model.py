"""Unit tests for the pruning cost model (Section VI-C)."""

import pytest

from repro.algorithms.cost_model import PruningCostModel, PruningPlan, _standard_normal_cdf
from repro.facts.groups import FactGroup
from repro.relational.catalog import TableStatistics
from repro.relational.planner import CostEstimator


@pytest.fixture()
def cost_model(example_relation):
    statistics = TableStatistics.from_table(example_relation.table)
    fact_counts = {
        FactGroup([]): 1,
        FactGroup(["region"]): 4,
        FactGroup(["season"]): 4,
        FactGroup(["region", "season"]): 16,
    }
    return PruningCostModel(fact_counts, CostEstimator(statistics), sigma=0.25)


ALL_GROUPS = [
    FactGroup([]),
    FactGroup(["region"]),
    FactGroup(["season"]),
    FactGroup(["region", "season"]),
]


class TestNormalCdf:
    def test_symmetry(self):
        assert _standard_normal_cdf(0.0) == pytest.approx(0.5)
        assert _standard_normal_cdf(2.0) + _standard_normal_cdf(-2.0) == pytest.approx(1.0)

    def test_monotone(self):
        assert _standard_normal_cdf(-1.0) < _standard_normal_cdf(0.0) < _standard_normal_cdf(1.0)


class TestProbabilities:
    def test_small_source_dominates_large_target(self, cost_model):
        small = FactGroup([])
        large = FactGroup(["region", "season"])
        assert cost_model.prune_probability(small, large) > 0.5
        assert cost_model.prune_probability(large, small) < 0.5

    def test_equal_groups_are_a_coin_flip(self, cost_model):
        region = FactGroup(["region"])
        season = FactGroup(["season"])
        assert cost_model.prune_probability(region, season) == pytest.approx(0.5)

    def test_target_prune_probability_combines_sources(self, cost_model):
        target = FactGroup(["region", "season"])
        one = cost_model.target_prune_probability(target, [FactGroup([])])
        both = cost_model.target_prune_probability(
            target, [FactGroup([]), FactGroup(["region"])]
        )
        assert both >= one
        assert cost_model.target_prune_probability(target, []) == 0.0

    def test_group_survival_probability(self, cost_model):
        sources = [FactGroup([])]
        targets = [FactGroup(["region"])]
        survival_specialized = cost_model.group_survival_probability(
            FactGroup(["region", "season"]), sources, targets
        )
        survival_unrelated = cost_model.group_survival_probability(
            FactGroup(["season"]), sources, targets
        )
        # The specialization of a target can be pruned; an unrelated group cannot.
        assert survival_specialized < 1.0
        assert survival_unrelated == pytest.approx(1.0)


class TestPlanCost:
    def test_trivial_plan_cost_is_total_utility_cost(self, cost_model):
        plan = PruningPlan((), ())
        expected = sum(cost_model.utility_cost(g) for g in ALL_GROUPS)
        assert cost_model.plan_cost(plan, ALL_GROUPS) == pytest.approx(expected)

    def test_effective_pruning_reduces_expected_cost(self, cost_model):
        trivial = PruningPlan((), ())
        pruning = PruningPlan(
            sources=(FactGroup([]),),
            targets=(FactGroup(["region", "season"]),),
        )
        assert cost_model.plan_cost(pruning, ALL_GROUPS) < cost_model.plan_cost(
            trivial, ALL_GROUPS
        )

    def test_fact_count_falls_back_to_estimator(self, example_relation):
        statistics = TableStatistics.from_table(example_relation.table)
        model = PruningCostModel({}, CostEstimator(statistics))
        assert model.fact_count(FactGroup(["region"])) == 4

    def test_invalid_sigma_rejected(self, example_relation):
        statistics = TableStatistics.from_table(example_relation.table)
        with pytest.raises(ValueError):
            PruningCostModel({}, CostEstimator(statistics), sigma=0.0)

    def test_plan_repr_and_trivial_flag(self):
        assert PruningPlan((), ()).is_trivial
        plan = PruningPlan((FactGroup(["a"]),), (FactGroup(["b"]),))
        assert not plan.is_trivial
        assert "a" in repr(plan)
