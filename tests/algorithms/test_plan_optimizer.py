"""Unit tests for the pruning plan optimizer (Algorithm 4 + OPT_PRUNE)."""

import pytest

from repro.algorithms.cost_model import PruningCostModel, PruningPlan
from repro.algorithms.plan_optimizer import PruningPlanOptimizer, generate_candidate_plans
from repro.facts.groups import FactGroup
from repro.relational.catalog import TableStatistics
from repro.relational.planner import CostEstimator

GROUPS = [
    FactGroup([]),
    FactGroup(["region"]),
    FactGroup(["season"]),
    FactGroup(["region", "season"]),
]
FACT_COUNTS = {
    FactGroup([]): 1,
    FactGroup(["region"]): 4,
    FactGroup(["season"]): 4,
    FactGroup(["region", "season"]): 16,
}


@pytest.fixture()
def cost_model(example_relation):
    statistics = TableStatistics.from_table(example_relation.table)
    return PruningCostModel(FACT_COUNTS, CostEstimator(statistics))


class TestCandidateGeneration:
    def test_always_includes_trivial_plan(self, cost_model):
        plans = generate_candidate_plans(GROUPS, FACT_COUNTS, cost_model)
        assert PruningPlan((), ()) in plans

    def test_sources_are_prefixes_by_fact_count(self, cost_model):
        plans = generate_candidate_plans(GROUPS, FACT_COUNTS, cost_model)
        for plan in plans:
            if not plan.sources:
                continue
            source_counts = [FACT_COUNTS[s] for s in plan.sources]
            outside = [FACT_COUNTS[g] for g in GROUPS if g not in plan.sources]
            # No group outside the sources has fewer facts than a source.
            assert not outside or max(source_counts) <= min(outside)

    def test_targets_never_overlap_sources(self, cost_model):
        plans = generate_candidate_plans(GROUPS, FACT_COUNTS, cost_model)
        for plan in plans:
            assert not set(plan.sources) & set(plan.targets)

    def test_single_group_yields_only_trivial_plan(self, cost_model):
        plans = generate_candidate_plans([FactGroup([])], {FactGroup([]): 1}, cost_model)
        assert plans == [PruningPlan((), ())]

    def test_max_source_prefix_limits_plans(self, cost_model):
        few = generate_candidate_plans(GROUPS, FACT_COUNTS, cost_model, max_source_prefix=1)
        many = generate_candidate_plans(GROUPS, FACT_COUNTS, cost_model, max_source_prefix=3)
        assert len(few) <= len(many)


class TestOptimizer:
    def test_chooses_minimum_cost_candidate(self, cost_model):
        optimizer = PruningPlanOptimizer(cost_model)
        chosen = optimizer.choose_plan(GROUPS, FACT_COUNTS)
        candidates = generate_candidate_plans(GROUPS, FACT_COUNTS, cost_model, 4)
        best_cost = min(cost_model.plan_cost(p, GROUPS) for p in candidates)
        assert cost_model.plan_cost(chosen, GROUPS) == pytest.approx(best_cost)

    def test_naive_plan_uses_smallest_group_as_source(self, cost_model):
        optimizer = PruningPlanOptimizer(cost_model)
        plan = optimizer.naive_plan(GROUPS, FACT_COUNTS)
        assert plan.sources == (FactGroup([]),)
        assert set(plan.targets) == set(GROUPS) - {FactGroup([])}

    def test_naive_plan_with_single_group_is_trivial(self, cost_model):
        optimizer = PruningPlanOptimizer(cost_model)
        assert optimizer.naive_plan([FactGroup([])], {FactGroup([]): 1}).is_trivial

    def test_chosen_plan_never_worse_than_trivial(self, cost_model):
        optimizer = PruningPlanOptimizer(cost_model)
        chosen = optimizer.choose_plan(GROUPS, FACT_COUNTS)
        trivial_cost = cost_model.plan_cost(PruningPlan((), ()), GROUPS)
        assert cost_model.plan_cost(chosen, GROUPS) <= trivial_cost + 1e-9
