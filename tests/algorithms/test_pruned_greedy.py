"""Unit tests for the pruned greedy summarizers (G-P and G-O)."""

import pytest

from repro.algorithms.greedy import GreedySummarizer
from repro.algorithms.pruned_greedy import OptimizedGreedySummarizer, PrunedGreedySummarizer


class TestQualityEquivalence:
    """Both pruned variants must return speeches of the same quality as G-B:
    pruning only skips facts that provably cannot have maximal gain."""

    def test_gp_matches_greedy_utility(self, example_problem):
        base = GreedySummarizer().summarize(example_problem)
        pruned = PrunedGreedySummarizer().summarize(example_problem)
        assert pruned.utility == pytest.approx(base.utility)

    def test_go_matches_greedy_utility(self, example_problem):
        base = GreedySummarizer().summarize(example_problem)
        optimized = OptimizedGreedySummarizer().summarize(example_problem)
        assert optimized.utility == pytest.approx(base.utility)

    def test_two_fact_problem(self, small_problem):
        base = GreedySummarizer().summarize(small_problem)
        for algorithm in (PrunedGreedySummarizer(), OptimizedGreedySummarizer()):
            assert algorithm.summarize(small_problem).utility == pytest.approx(base.utility)


class TestWorkAccounting:
    def test_pruning_never_increases_gain_evaluations(self, example_problem):
        base = GreedySummarizer().summarize(example_problem)
        for algorithm in (PrunedGreedySummarizer(), OptimizedGreedySummarizer()):
            outcome = algorithm.summarize(example_problem)
            assert (
                outcome.statistics.fact_evaluations
                <= base.statistics.fact_evaluations
            )

    def test_names(self, small_problem):
        assert PrunedGreedySummarizer().summarize(small_problem).algorithm == "G-P"
        assert OptimizedGreedySummarizer().summarize(small_problem).algorithm == "G-O"

    def test_speech_length_respected(self, example_problem):
        for algorithm in (PrunedGreedySummarizer(), OptimizedGreedySummarizer()):
            outcome = algorithm.summarize(example_problem)
            assert outcome.speech.length <= example_problem.max_facts
            assert len(set(outcome.speech.facts)) == outcome.speech.length

    def test_statistics_have_time(self, example_problem):
        outcome = OptimizedGreedySummarizer().summarize(example_problem)
        assert outcome.statistics.elapsed_seconds > 0
