"""Unit tests for the conflict-resolution study (Figure 7)."""


from repro.userstudy.conflict import MODEL_LABELS, ConflictStudy
from repro.userstudy.worker import WorkerPool


class TestConflictStudy:
    def test_build_facts(self, example_relation):
        study = ConflictStudy(pool=WorkerPool(size=5, seed=1))
        facts = study.build_facts(
            example_relation, "region", ("North", "East"), "season", ("Winter", "Summer")
        )
        assert len(facts) == 4
        assert {f.scope.columns for f in facts} == {("region",), ("season",)}

    def test_all_models_reported(self, example_relation):
        study = ConflictStudy(pool=WorkerPool(size=10, seed=2), workers_per_combination=10)
        result = study.run(
            example_relation,
            "region",
            ("North", "East"),
            "season",
            ("Winter", "Summer"),
            prior=0.0,
        )
        assert set(result.errors) == set(MODEL_LABELS.values())
        assert result.combinations == 4
        assert result.hits == 40

    def test_closest_model_wins_with_closest_population(self, example_relation):
        pool = WorkerPool(size=30, seed=3, closest_fraction=1.0, average_fraction=0.0, noise=0.05)
        study = ConflictStudy(pool=pool, workers_per_combination=30)
        result = study.run(
            example_relation,
            "region",
            ("North", "East"),
            "season",
            ("Winter", "Summer"),
            prior=0.0,
        )
        assert result.best_model() == "Closest"
        assert result.errors["Closest"] <= result.errors["Farthest"]

    def test_missing_combinations_are_skipped(self, example_relation):
        study = ConflictStudy(pool=WorkerPool(size=5, seed=4), workers_per_combination=5)
        result = study.run(
            example_relation,
            "region",
            ("North",),
            "season",
            ("Winter",),
            prior=0.0,
        )
        assert result.combinations == 1
