"""Unit tests for the estimation study (Figure 6)."""

import pytest

from repro.core.model import Speech
from repro.userstudy.estimation import EstimationStudy
from repro.userstudy.worker import WorkerPool


@pytest.fixture()
def speeches(example_relation):
    good = Speech(
        [
            example_relation.make_fact({"season": "Winter"}),
            example_relation.make_fact({"region": "North"}),
            example_relation.make_fact({}),
        ]
    )
    bad = Speech([example_relation.make_fact({"region": "East", "season": "Spring"})])
    return {"best": good, "worst": bad}


class TestEstimationStudy:
    def test_collects_all_points(self, example_relation, speeches):
        study = EstimationStudy(pool=WorkerPool(size=10, seed=1), workers_per_point=10)
        points = [
            {"region": region, "season": season}
            for region in ("East", "North")
            for season in ("Winter", "Summer")
        ]
        result = study.run(example_relation, speeches, points, prior=0.0)
        assert len(result.points) == 4
        assert result.hits == 4 * 2 * 10
        for point in result.points:
            assert set(point.estimates) == {"best", "worst"}

    def test_better_speech_gives_lower_error(self, example_relation, speeches):
        study = EstimationStudy(pool=WorkerPool(size=20, seed=2), workers_per_point=20)
        points = [
            {"region": region, "season": season}
            for region in ("East", "South", "West", "North")
            for season in ("Winter", "Summer", "Fall")
        ]
        result = study.run(example_relation, speeches, points, prior=0.0)
        assert result.mean_absolute_error("best") < result.mean_absolute_error("worst")

    def test_unknown_points_are_skipped(self, example_relation, speeches):
        study = EstimationStudy(pool=WorkerPool(size=5, seed=3), workers_per_point=5)
        points = [{"region": "Atlantis", "season": "Winter"}]
        result = study.run(example_relation, speeches, points, prior=0.0)
        assert result.points == []
        assert result.mean_absolute_error("best") == 0.0

    def test_point_error_helper(self, example_relation, speeches):
        study = EstimationStudy(pool=WorkerPool(size=5, seed=4), workers_per_point=5)
        result = study.run(
            example_relation, speeches, [{"region": "North", "season": "Winter"}], prior=0.0
        )
        point = result.points[0]
        assert point.error("best") == pytest.approx(abs(point.estimates["best"] - point.correct))
