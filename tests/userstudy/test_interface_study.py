"""Unit tests for the interface comparison study (Figure 8)."""

import pytest

from repro.system.config import SummarizationConfig
from repro.system.engine import VoiceQueryEngine
from repro.userstudy.interface_study import InterfaceStudy


@pytest.fixture()
def engine(example_table) -> VoiceQueryEngine:
    config = SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=2,
        max_facts_per_speech=2,
        max_fact_dimensions=1,
        algorithm="G-B",
    )
    engine = VoiceQueryEngine(config, example_table, target_synonyms={"delay": ["delays"]})
    engine.preprocess()
    return engine


class TestInterfaceStudy:
    def test_participant_results(self, engine):
        study = InterfaceStudy(engine, participants=4, questions_per_interface=2, seed=1)
        result = study.run()
        assert len(result.participants) == 4
        assert result.questions_asked == 8
        for participant in result.participants:
            assert participant.vocal_time > 0
            assert participant.visual_time > 0
            assert 1.0 <= participant.vocal_rating <= 10.0
            assert 1.0 <= participant.visual_rating <= 10.0

    def test_aggregates(self, engine):
        study = InterfaceStudy(engine, participants=6, questions_per_interface=2, seed=2)
        result = study.run()
        assert result.median_vocal_time > 0
        assert result.median_visual_time > 0
        assert 0 <= result.faster_with_voice <= 6
        assert result.mean_vocal_rating > 0
        assert result.mean_visual_rating > 0

    def test_questions_are_answerable(self, engine):
        """Most generated questions should be answered from the store."""
        study = InterfaceStudy(engine, participants=5, questions_per_interface=3, seed=3)
        result = study.run()
        assert result.unanswered_questions <= result.questions_asked // 2

    def test_empty_study(self, engine):
        study = InterfaceStudy(engine, participants=0, questions_per_interface=1, seed=4)
        result = study.run()
        assert result.participants == []
        assert result.median_vocal_time == 0.0
        assert result.mean_vocal_rating == 0.0
