"""Unit tests for the rating study (Figures 5 and 11)."""

import pytest

from repro.userstudy.ratings import (
    DEFAULT_ADJECTIVES,
    EXTENDED_ADJECTIVES,
    RatingStudy,
    SpeechCandidate,
)
from repro.userstudy.worker import WorkerPool


CANDIDATES = [
    SpeechCandidate(label="Worst", text="bad speech", scaled_utility=0.05),
    SpeechCandidate(label="Medium", text="ok speech", scaled_utility=0.4),
    SpeechCandidate(label="Best", text="great speech", scaled_utility=0.9),
]


class TestRatingStudy:
    def test_requires_two_candidates(self):
        study = RatingStudy(pool=WorkerPool(size=5, seed=1))
        with pytest.raises(ValueError):
            study.run(CANDIDATES[:1])

    def test_all_adjectives_rated(self):
        study = RatingStudy(pool=WorkerPool(size=10, seed=1))
        result = study.run(CANDIDATES)
        for candidate in CANDIDATES:
            assert set(result.average_ratings[candidate.label]) == set(DEFAULT_ADJECTIVES)
            for rating in result.average_ratings[candidate.label].values():
                assert 1.0 <= rating <= 10.0

    def test_better_speech_rated_higher(self):
        study = RatingStudy(pool=WorkerPool(size=30, seed=2))
        result = study.run(CANDIDATES)
        for adjective in DEFAULT_ADJECTIVES:
            assert (
                result.average_ratings["Best"][adjective]
                > result.average_ratings["Worst"][adjective]
            )

    def test_wins_ordering(self):
        study = RatingStudy(pool=WorkerPool(size=30, seed=3))
        result = study.run(CANDIDATES)
        assert result.wins["Best"] > result.wins["Worst"]
        total_wins = sum(result.wins.values())
        # Each worker compares each unordered pair once per adjective.
        assert total_wins == 30 * 3 * len(DEFAULT_ADJECTIVES)

    def test_ranking_helper(self):
        study = RatingStudy(pool=WorkerPool(size=30, seed=4))
        result = study.run(CANDIDATES)
        assert result.ranking()[0] == "Best"
        assert result.ranking()[-1] == "Worst"

    def test_extended_adjectives(self):
        study = RatingStudy(pool=WorkerPool(size=5, seed=5), adjectives=EXTENDED_ADJECTIVES)
        result = study.run(CANDIDATES[:2])
        assert set(result.average_ratings["Worst"]) == set(EXTENDED_ADJECTIVES)

    def test_precision_bonus_shifts_ratings(self):
        study = RatingStudy(pool=WorkerPool(size=40, seed=6))
        plain = SpeechCandidate("A", "text", 0.5)
        boosted = SpeechCandidate("B", "text", 0.5, precision_bonus=0.3)
        result = study.run([plain, boosted])
        mean_plain = sum(result.average_ratings["A"].values()) / len(DEFAULT_ADJECTIVES)
        mean_boosted = sum(result.average_ratings["B"].values()) / len(DEFAULT_ADJECTIVES)
        assert mean_boosted > mean_plain

    def test_hits_counted(self):
        study = RatingStudy(pool=WorkerPool(size=5, seed=7))
        result = study.run(CANDIDATES[:2])
        assert result.hits > 0
