"""Unit tests for the simulated crowd workers."""

import pytest

from repro.core.model import Fact, Scope
from repro.userstudy.worker import SimulatedWorker, WorkerBehaviour, WorkerPool


def _fact(assignments, value):
    return Fact(scope=Scope(assignments), value=value, support=1)


ROW = {"borough": "Bronx", "age_group": "Elders"}
FACTS = [_fact({"borough": "Bronx"}, 40.0), _fact({"age_group": "Elders"}, 90.0)]


class TestEstimation:
    def test_closest_worker_tracks_truth(self):
        worker = SimulatedWorker(behaviour=WorkerBehaviour.CLOSEST, noise=0.0, seed=1)
        estimate = worker.estimate(FACTS, ROW, true_value=85.0, prior=30.0)
        assert estimate == pytest.approx(90.0)

    def test_farthest_worker_picks_worst_value(self):
        worker = SimulatedWorker(behaviour=WorkerBehaviour.FARTHEST, noise=0.0, seed=1)
        estimate = worker.estimate(FACTS, ROW, true_value=85.0, prior=30.0)
        assert estimate == pytest.approx(30.0)

    def test_average_scope_worker(self):
        worker = SimulatedWorker(behaviour=WorkerBehaviour.AVERAGE_SCOPE, noise=0.0, seed=1)
        estimate = worker.estimate(FACTS, ROW, true_value=85.0, prior=30.0)
        assert estimate == pytest.approx(65.0)

    def test_average_all_worker_ignores_relevance(self):
        worker = SimulatedWorker(behaviour=WorkerBehaviour.AVERAGE_ALL, noise=0.0, seed=1)
        irrelevant = FACTS + [_fact({"borough": "Queens"}, 10.0)]
        estimate = worker.estimate(irrelevant, ROW, true_value=85.0, prior=30.0)
        assert estimate == pytest.approx((40.0 + 90.0 + 10.0) / 3)

    def test_no_relevant_facts_falls_back_to_prior(self):
        worker = SimulatedWorker(behaviour=WorkerBehaviour.AVERAGE_SCOPE, noise=0.0, seed=1)
        estimate = worker.estimate([], ROW, true_value=85.0, prior=30.0)
        assert estimate == pytest.approx(30.0)

    def test_noise_perturbs_estimates(self):
        worker = SimulatedWorker(noise=0.3, seed=5)
        estimates = {worker.estimate(FACTS, ROW, 85.0, 30.0) for _ in range(10)}
        assert len(estimates) > 1


class TestRatings:
    def test_ratings_increase_with_quality(self):
        worker = SimulatedWorker(rating_noise=0.0, seed=1)
        assert worker.rate(0.9) > worker.rate(0.1)

    def test_ratings_bounded(self):
        worker = SimulatedWorker(rating_noise=5.0, seed=2)
        for quality in (0.0, 0.5, 1.0):
            for _ in range(20):
                assert 1.0 <= worker.rate(quality) <= 10.0

    def test_preference_favours_better_speech(self):
        worker = SimulatedWorker(seed=3)
        wins = sum(worker.prefers(0.9, 0.1) for _ in range(200))
        assert wins > 150

    def test_preference_is_roughly_symmetric_for_ties(self):
        worker = SimulatedWorker(seed=4)
        wins = sum(worker.prefers(0.5, 0.5) for _ in range(400))
        assert 120 < wins < 280


class TestWorkerPool:
    def test_pool_size_and_iteration(self):
        pool = WorkerPool(size=20, seed=1)
        assert len(pool) == 20
        assert len(list(pool)) == 20
        assert len(pool.workers) == 20

    def test_pool_composition_mostly_closest(self):
        pool = WorkerPool(size=200, seed=2, closest_fraction=0.7, average_fraction=0.2)
        closest = sum(1 for w in pool if w.behaviour is WorkerBehaviour.CLOSEST)
        assert closest > 100

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WorkerPool(size=0)
        with pytest.raises(ValueError):
            WorkerPool(closest_fraction=0.9, average_fraction=0.5)

    def test_deterministic_given_seed(self):
        a = WorkerPool(size=10, seed=3)
        b = WorkerPool(size=10, seed=3)
        assert [w.behaviour for w in a] == [w.behaviour for w in b]
