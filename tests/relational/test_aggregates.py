"""Unit tests for repro.relational.aggregates."""

import pytest

from repro.relational.aggregates import (
    AVG,
    COUNT,
    MAX,
    MIN,
    SUM,
    aggregate_avg,
    aggregate_count,
    aggregate_count_star,
    aggregate_max,
    aggregate_min,
    aggregate_sum,
)


class TestAggregateFunctions:
    def test_sum_skips_nulls(self):
        assert aggregate_sum([1, None, 2]) == 3.0

    def test_sum_empty_is_zero(self):
        assert aggregate_sum([]) == 0.0
        assert aggregate_sum([None]) == 0.0

    def test_avg(self):
        assert aggregate_avg([1, 3, None]) == pytest.approx(2.0)

    def test_avg_empty_is_none(self):
        assert aggregate_avg([None]) is None

    def test_count_vs_count_star(self):
        assert aggregate_count([1, None, 2]) == 2
        assert aggregate_count_star([1, None, 2]) == 3

    def test_min_max(self):
        assert aggregate_min([3, 1, None]) == 1.0
        assert aggregate_max([3, 1, None]) == 3.0
        assert aggregate_min([]) is None
        assert aggregate_max([None]) is None


class TestAggregateSpecs:
    def test_default_output_names(self):
        assert SUM("u").output_column == "sum_u"
        assert AVG("u").output_column == "avg_u"
        assert COUNT("u").output_column == "count_u"
        assert COUNT().output_column == "count"
        assert MIN("u").output_column == "min_u"
        assert MAX("u").output_column == "max_u"

    def test_custom_output_name(self):
        assert SUM("u", "utility").output_column == "utility"

    def test_count_star_has_no_input(self):
        assert COUNT().input_column is None
        assert COUNT("u").input_column == "u"

    def test_compute_delegates(self):
        assert SUM("u").compute([1, 2, 3]) == 6.0
        assert AVG("u").compute([2, 4]) == 3.0
