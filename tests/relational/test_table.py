"""Unit tests for repro.relational.table."""

import pytest

from repro.relational.column import Column, ColumnType
from repro.relational.errors import SchemaError
from repro.relational.table import Table


def make_table() -> Table:
    return Table(
        "people",
        [
            Column.categorical("city", ["NYC", "LA", "NYC"]),
            Column.numeric("age", [30.0, 40.0, 50.0]),
        ],
    )


class TestConstruction:
    def test_basic_properties(self):
        table = make_table()
        assert table.name == "people"
        assert table.num_rows == 3
        assert table.num_columns == 2
        assert table.column_names == ["city", "age"]
        assert len(table) == 3

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column.numeric("a", [1]), Column.numeric("a", [2])])

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column.numeric("a", [1]), Column.numeric("b", [1, 2])])

    def test_from_rows(self):
        table = Table.from_rows(
            "t",
            ["c", "v"],
            [ColumnType.CATEGORICAL, ColumnType.NUMERIC],
            [("a", 1), ("b", 2)],
        )
        assert table.num_rows == 2
        assert table.value(1, "v") == 2.0

    def test_from_rows_wrong_width_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_rows("t", ["c"], [ColumnType.CATEGORICAL], [("a", 1)])

    def test_from_dict_infers_types(self):
        table = Table.from_dict("t", {"c": ["a", "b"], "v": [1, 2]})
        assert table.column("c").ctype is ColumnType.CATEGORICAL
        assert table.column("v").ctype is ColumnType.NUMERIC

    def test_empty_table(self):
        table = Table.empty("t", [("a", ColumnType.NUMERIC)])
        assert table.num_rows == 0
        assert table.column_names == ["a"]


class TestAccess:
    def test_column_lookup_and_error(self):
        table = make_table()
        assert table.column("city").values[0] == "NYC"
        with pytest.raises(SchemaError):
            table.column("missing")

    def test_row_and_iteration(self):
        table = make_table()
        assert table.row(0) == {"city": "NYC", "age": 30.0}
        assert len(table.to_dicts()) == 3

    def test_has_column(self):
        table = make_table()
        assert table.has_column("age")
        assert not table.has_column("salary")


class TestTransformations:
    def test_with_column_appends(self):
        table = make_table().with_column(Column.numeric("height", [1.0, 2.0, 3.0]))
        assert table.column_names == ["city", "age", "height"]

    def test_with_column_replaces(self):
        table = make_table().with_column(Column.numeric("age", [0.0, 0.0, 0.0]))
        assert table.column("age").values == [0.0, 0.0, 0.0]
        assert table.num_columns == 2

    def test_with_column_length_mismatch(self):
        with pytest.raises(SchemaError):
            make_table().with_column(Column.numeric("x", [1.0]))

    def test_select_and_drop_columns(self):
        table = make_table()
        assert table.select_columns(["age"]).column_names == ["age"]
        assert table.without_columns(["age"]).column_names == ["city"]

    def test_take_and_mask(self):
        table = make_table()
        assert table.take([2, 0]).column("age").values == [50.0, 30.0]
        assert table.mask([False, True, False]).column("city").values == ["LA"]

    def test_head(self):
        assert make_table().head(2).num_rows == 2
        assert make_table().head(10).num_rows == 3

    def test_concat(self):
        table = make_table()
        combined = table.concat(table)
        assert combined.num_rows == 6

    def test_concat_schema_mismatch(self):
        other = Table("o", [Column.numeric("age", [1.0])])
        with pytest.raises(SchemaError):
            make_table().concat(other)

    def test_sorted_by_ascending_and_descending(self):
        table = make_table()
        ascending = table.sorted_by("age")
        assert ascending.column("age").values == [30.0, 40.0, 50.0]
        descending = table.sorted_by("age", descending=True)
        assert descending.column("age").values == [50.0, 40.0, 30.0]

    def test_sorted_by_nulls_last(self):
        table = Table("t", [Column.numeric("v", [None, 2.0, 1.0])])
        assert table.sorted_by("v").column("v").values == [1.0, 2.0, None]
        assert table.sorted_by("v", descending=True).column("v").values == [2.0, 1.0, None]

    def test_renamed(self):
        assert make_table().renamed("other").name == "other"

    def test_equality_ignores_name(self):
        assert make_table() == make_table().renamed("other")
