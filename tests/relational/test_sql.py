"""Unit tests for the minimal SQL layer (repro.relational.sql)."""

import pytest

from repro.relational.column import Column
from repro.relational.errors import RelationalError
from repro.relational.sql import SqlSession, SqlSyntaxError, execute_sql, parse_sql
from repro.relational.table import Table


@pytest.fixture()
def flights() -> Table:
    return Table(
        "flights",
        [
            Column.categorical("region", ["East", "East", "North", "North", "South"]),
            Column.categorical("season", ["Winter", "Summer", "Winter", "Summer", None]),
            Column.numeric("delay", [15.0, 10.0, 15.0, 15.0, 20.0]),
        ],
    )


class TestParsing:
    def test_basic_projection(self):
        parsed = parse_sql("SELECT region, delay FROM flights")
        assert parsed.table == "flights"
        assert parsed.columns == ["region", "delay"]
        assert not parsed.is_aggregation

    def test_star(self):
        parsed = parse_sql("SELECT * FROM flights")
        assert parsed.select_all

    def test_aggregates_and_aliases(self):
        parsed = parse_sql("SELECT AVG(delay) AS avg_delay, COUNT(*) FROM flights GROUP BY region")
        assert parsed.is_aggregation
        assert [a.output_column for a in parsed.aggregates] == ["avg_delay", "count"]
        assert parsed.group_by == ["region"]

    def test_where_and_order_and_limit(self):
        parsed = parse_sql(
            "SELECT region FROM flights WHERE delay > 10 AND season = 'Winter' "
            "ORDER BY region DESC LIMIT 2"
        )
        assert parsed.order_by == "region"
        assert parsed.order_descending
        assert parsed.limit == 2

    def test_is_null_conditions(self):
        parsed = parse_sql("SELECT region FROM flights WHERE season IS NULL")
        assert "IS" in repr(parsed.predicate)

    def test_syntax_errors(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("UPDATE flights SET delay = 0")
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT region FROM flights WHERE delay ~ 3")
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT MAX(*) FROM flights")
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT region FROM flights ORDER BY region SIDEWAYS")

    def test_literal_parsing(self):
        parsed = parse_sql("SELECT region FROM flights WHERE delay = 12.5")
        assert "12.5" in repr(parsed.predicate)
        parsed = parse_sql("SELECT region FROM flights WHERE region = 'North'")
        assert "North" in repr(parsed.predicate)


class TestExecution:
    def test_projection_with_filter(self, flights):
        result = execute_sql(
            "SELECT region FROM flights WHERE season = 'Winter'", flights
        )
        assert result.column("region").values == ["East", "North"]

    def test_filter_with_comparison(self, flights):
        result = execute_sql("SELECT * FROM flights WHERE delay >= 15", flights)
        assert result.num_rows == 4

    def test_group_by_aggregation(self, flights):
        result = execute_sql(
            "SELECT AVG(delay) AS avg_delay FROM flights GROUP BY region", flights
        )
        rows = {row["region"]: row["avg_delay"] for row in result.iter_rows()}
        assert rows["East"] == pytest.approx(12.5)
        assert rows["North"] == pytest.approx(15.0)
        assert rows["South"] == pytest.approx(20.0)

    def test_global_aggregation(self, flights):
        result = execute_sql("SELECT SUM(delay) AS total, COUNT(*) FROM flights", flights)
        assert result.num_rows == 1
        assert result.row(0)["total"] == 75.0
        assert result.row(0)["count"] == 5

    def test_not_equals_and_null_handling(self, flights):
        result = execute_sql("SELECT * FROM flights WHERE season != 'Winter'", flights)
        # The NULL season row does not match != either (SQL three-valued logic
        # is approximated by "NULL never matches").
        assert result.num_rows == 2

    def test_is_not_null(self, flights):
        result = execute_sql("SELECT * FROM flights WHERE season IS NOT NULL", flights)
        assert result.num_rows == 4

    def test_order_by_and_limit(self, flights):
        result = execute_sql(
            "SELECT region, delay FROM flights ORDER BY delay DESC LIMIT 2", flights
        )
        assert result.column("delay").values == [20.0, 15.0]

    def test_unknown_table(self, flights):
        with pytest.raises(RelationalError):
            execute_sql("SELECT * FROM planes", flights)

    def test_scalar_aggregate_of_empty_filter(self, flights):
        result = execute_sql("SELECT SUM(delay) AS s FROM flights WHERE delay > 99", flights)
        assert result.num_rows == 1
        assert result.row(0)["s"] == 0.0


class TestSession:
    def test_register_and_query(self, flights):
        session = SqlSession()
        session.register(flights)
        assert session.tables() == ["flights"]
        result = session.query("SELECT COUNT(*) AS n FROM flights")
        assert result.row(0)["n"] == 5

    def test_session_with_initial_tables(self, flights):
        session = SqlSession({"flights": flights})
        assert session.query("SELECT * FROM flights").num_rows == 5

    def test_matches_operator_api(self, flights):
        """The SQL path and the operator API give identical answers for the
        summarizer's utility-style query shape."""
        from repro.relational.aggregates import AVG
        from repro.relational.expressions import EqualsPredicate
        from repro.relational.operators import group_by, select

        sql_result = execute_sql(
            "SELECT AVG(delay) AS v FROM flights WHERE season = 'Winter' GROUP BY region",
            flights,
        )
        api_result = group_by(
            select(flights, EqualsPredicate("season", "Winter")),
            ["region"],
            [AVG("delay", "v")],
        )
        assert sql_result.to_dicts() == api_result.to_dicts()
