"""Unit tests for repro.relational.engine."""

import pytest

from repro.relational.aggregates import AVG
from repro.relational.column import Column
from repro.relational.engine import RelationalEngine
from repro.relational.errors import UnknownTableError
from repro.relational.expressions import EqualsPredicate
from repro.relational.table import Table


@pytest.fixture()
def engine() -> RelationalEngine:
    engine = RelationalEngine()
    engine.register_table(
        Table(
            "flights",
            [
                Column.categorical("region", ["E", "E", "N"]),
                Column.numeric("delay", [10.0, 20.0, 15.0]),
            ],
        )
    )
    return engine


class TestTableManagement:
    def test_register_and_fetch(self, engine):
        assert engine.table("flights").num_rows == 3
        assert engine.statistics("flights").row_count == 3

    def test_unknown_table(self, engine):
        with pytest.raises(UnknownTableError):
            engine.table("nope")

    def test_load_csv(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("region,delay\nE,10\nN,20\n")
        engine = RelationalEngine()
        table = engine.load_csv(str(path), name="loaded")
        assert table.num_rows == 2
        assert engine.catalog.has_table("loaded")

    def test_cost_estimator(self, engine):
        estimator = engine.cost_estimator("flights")
        assert estimator.data_row_count == 3


class TestQueryShapes:
    def test_filter(self, engine):
        result = engine.filter(engine.table("flights"), EqualsPredicate("region", "E"))
        assert result.num_rows == 2

    def test_aggregate(self, engine):
        result = engine.aggregate(engine.table("flights"), ["region"], [AVG("delay", "d")])
        rows = {row["region"]: row["d"] for row in result.iter_rows()}
        assert rows["E"] == 15.0

    def test_project(self, engine):
        result = engine.project(engine.table("flights"), ["region"], distinct=True)
        assert result.num_rows == 2

    def test_scope_join(self, engine):
        facts = Table(
            "facts",
            [Column.categorical("region", [None]), Column.numeric("value", [15.0])],
        )
        result = engine.scope_join(engine.table("flights"), facts, ["region"])
        assert result.num_rows == 3

    def test_query_count_increments(self, engine):
        before = engine.query_count
        engine.project(engine.table("flights"), ["region"])
        assert engine.query_count == before + 1
