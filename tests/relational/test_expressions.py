"""Unit tests for repro.relational.expressions."""

import pytest

from repro.relational.column import Column
from repro.relational.errors import SchemaError
from repro.relational.expressions import (
    AndPredicate,
    ComparisonPredicate,
    EqualsPredicate,
    InPredicate,
    IsNullPredicate,
    NotPredicate,
    OrPredicate,
    TruePredicate,
    conjunction_of_equalities,
)
from repro.relational.table import Table


@pytest.fixture()
def table() -> Table:
    return Table(
        "flights",
        [
            Column.categorical("season", ["Winter", "Summer", None, "Winter"]),
            Column.numeric("delay", [15.0, 20.0, 5.0, None]),
        ],
    )


class TestEqualsPredicate:
    def test_evaluate(self, table):
        assert EqualsPredicate("season", "Winter").evaluate(table) == [True, False, False, True]

    def test_null_never_matches(self, table):
        assert EqualsPredicate("season", None).evaluate(table) == [False] * 4

    def test_matches_row(self):
        predicate = EqualsPredicate("season", "Winter")
        assert predicate.matches_row({"season": "Winter"})
        assert not predicate.matches_row({"season": "Summer"})
        assert not predicate.matches_row({})

    def test_unknown_column_rejected(self, table):
        with pytest.raises(SchemaError):
            EqualsPredicate("missing", 1).evaluate(table)

    def test_equality_and_hash(self):
        assert EqualsPredicate("a", 1) == EqualsPredicate("a", 1)
        assert hash(EqualsPredicate("a", 1)) == hash(EqualsPredicate("a", 1))
        assert EqualsPredicate("a", 1) != EqualsPredicate("a", 2)


class TestComparisonPredicate:
    def test_operators(self, table):
        assert ComparisonPredicate("delay", ">", 10).evaluate(table) == [True, True, False, False]
        assert ComparisonPredicate("delay", "<=", 15).evaluate(table) == [True, False, True, False]
        assert ComparisonPredicate("delay", "!=", 15).evaluate(table) == [False, True, True, False]

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            ComparisonPredicate("delay", "~", 1)


class TestOtherPredicates:
    def test_true_predicate(self, table):
        assert TruePredicate().evaluate(table) == [True] * 4

    def test_in_predicate(self, table):
        assert InPredicate("season", ["Winter", "Fall"]).evaluate(table) == [
            True, False, False, True,
        ]

    def test_is_null(self, table):
        assert IsNullPredicate("season").evaluate(table) == [False, False, True, False]
        assert IsNullPredicate("season", negate=True).evaluate(table) == [
            True, True, False, True,
        ]

    def test_not_predicate(self, table):
        predicate = NotPredicate(EqualsPredicate("season", "Winter"))
        assert predicate.evaluate(table) == [False, True, True, False]


class TestBooleanCombinations:
    def test_and(self, table):
        predicate = AndPredicate(
            [EqualsPredicate("season", "Winter"), ComparisonPredicate("delay", ">", 10)]
        )
        assert predicate.evaluate(table) == [True, False, False, False]

    def test_or(self, table):
        predicate = OrPredicate(
            [EqualsPredicate("season", "Summer"), IsNullPredicate("delay")]
        )
        assert predicate.evaluate(table) == [False, True, False, True]

    def test_operator_overloads(self, table):
        predicate = EqualsPredicate("season", "Winter") & ComparisonPredicate("delay", ">", 10)
        assert predicate.evaluate(table) == [True, False, False, False]
        negated = ~EqualsPredicate("season", "Winter")
        assert negated.evaluate(table) == [False, True, True, False]
        either = EqualsPredicate("season", "Winter") | EqualsPredicate("season", "Summer")
        assert either.evaluate(table) == [True, True, False, True]

    def test_referenced_columns(self):
        predicate = AndPredicate(
            [EqualsPredicate("a", 1), OrPredicate([EqualsPredicate("b", 2), TruePredicate()])]
        )
        assert predicate.referenced_columns() == {"a", "b"}

    def test_empty_and_or(self, table):
        assert AndPredicate([]).evaluate(table) == [True] * 4
        assert OrPredicate([]).evaluate(table) == [False] * 4


class TestConjunctionHelper:
    def test_empty_mapping_is_true(self, table):
        assert isinstance(conjunction_of_equalities({}), TruePredicate)

    def test_single_predicate(self):
        predicate = conjunction_of_equalities({"season": "Winter"})
        assert isinstance(predicate, EqualsPredicate)

    def test_multiple_predicates(self, table):
        predicate = conjunction_of_equalities({"season": "Winter", "delay": 15.0})
        assert predicate.evaluate(table) == [True, False, False, False]
