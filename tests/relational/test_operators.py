"""Unit tests for repro.relational.operators."""

import pytest

from repro.relational.aggregates import AVG, COUNT, SUM
from repro.relational.column import Column, ColumnType
from repro.relational.errors import SchemaError
from repro.relational.expressions import EqualsPredicate
from repro.relational.operators import (
    cross_product,
    extend,
    group_by,
    hash_join,
    nested_loop_join,
    project,
    scope_match_join,
    select,
)
from repro.relational.table import Table


@pytest.fixture()
def flights() -> Table:
    return Table(
        "flights",
        [
            Column.categorical("region", ["East", "East", "North", "North"]),
            Column.categorical("season", ["Winter", "Summer", "Winter", "Summer"]),
            Column.numeric("delay", [15.0, 10.0, 15.0, 15.0]),
        ],
    )


class TestSelectProject:
    def test_select(self, flights):
        result = select(flights, EqualsPredicate("region", "East"))
        assert result.num_rows == 2
        assert result.column("season").values == ["Winter", "Summer"]

    def test_select_renames(self, flights):
        assert select(flights, EqualsPredicate("region", "East"), name="east").name == "east"

    def test_project(self, flights):
        result = project(flights, ["region"])
        assert result.column_names == ["region"]
        assert result.num_rows == 4

    def test_project_distinct(self, flights):
        result = project(flights, ["region"], distinct=True)
        assert result.column("region").values == ["East", "North"]

    def test_extend_adds_computed_column(self, flights):
        result = extend(flights, "double_delay", ColumnType.NUMERIC, lambda row: row["delay"] * 2)
        assert result.column("double_delay").values == [30.0, 20.0, 30.0, 30.0]


class TestGroupBy:
    def test_group_by_single_key(self, flights):
        result = group_by(flights, ["region"], [AVG("delay", "avg_delay")])
        rows = {row["region"]: row["avg_delay"] for row in result.iter_rows()}
        assert rows["East"] == pytest.approx(12.5)
        assert rows["North"] == pytest.approx(15.0)

    def test_group_by_multiple_aggregates(self, flights):
        result = group_by(flights, ["season"], [SUM("delay", "s"), COUNT(None, "n")])
        rows = {row["season"]: row for row in result.iter_rows()}
        assert rows["Winter"]["s"] == 30.0
        assert rows["Winter"]["n"] == 2

    def test_global_aggregation(self, flights):
        result = group_by(flights, [], [SUM("delay", "total")])
        assert result.num_rows == 1
        assert result.row(0)["total"] == 55.0

    def test_global_aggregation_of_empty_table(self):
        empty = Table.empty("e", [("v", ColumnType.NUMERIC)])
        result = group_by(empty, [], [SUM("v", "total")])
        assert result.num_rows == 1
        assert result.row(0)["total"] == 0.0

    def test_unknown_key_rejected(self, flights):
        with pytest.raises(SchemaError):
            group_by(flights, ["missing"], [SUM("delay")])

    def test_unknown_aggregate_input_rejected(self, flights):
        with pytest.raises(SchemaError):
            group_by(flights, ["region"], [SUM("missing")])


class TestJoins:
    def test_hash_join(self, flights):
        regions = Table(
            "regions",
            [
                Column.categorical("region", ["East", "North"]),
                Column.categorical("coast", ["Atlantic", "None"]),
            ],
        )
        result = hash_join(flights, regions, ["region"], ["region"])
        assert result.num_rows == 4
        assert set(result.column_names) >= {"season", "coast"}

    def test_hash_join_null_keys_never_match(self):
        left = Table("l", [Column.categorical("k", ["a", None])])
        right = Table("r", [Column.categorical("k", ["a", None])])
        result = hash_join(left, right, ["k"], ["k"])
        assert result.num_rows == 1

    def test_hash_join_key_count_mismatch(self, flights):
        with pytest.raises(SchemaError):
            hash_join(flights, flights, ["region"], ["region", "season"])

    def test_nested_loop_join_theta(self, flights):
        small = Table("thresholds", [Column.numeric("cutoff", [12.0])])
        result = nested_loop_join(
            flights, small, lambda l, r: l["delay"] > r["cutoff"]
        )
        assert result.num_rows == 3

    def test_cross_product(self, flights):
        other = Table("t", [Column.numeric("x", [1.0, 2.0])])
        assert cross_product(flights, other).num_rows == 8

    def test_join_column_name_collisions_are_prefixed(self, flights):
        result = nested_loop_join(flights, flights, lambda l, r: True)
        assert "left_region" in result.column_names
        assert "right_region" in result.column_names


class TestScopeMatchJoin:
    def test_facts_match_rows_within_scope(self, flights):
        facts = Table(
            "facts",
            [
                Column.categorical("region", ["East", None]),
                Column.categorical("season", [None, "Winter"]),
                Column.numeric("value", [12.5, 15.0]),
            ],
        )
        result = scope_match_join(flights, facts, ["region", "season"])
        # Fact 1 (region East) covers 2 rows, fact 2 (Winter) covers 2 rows.
        assert result.num_rows == 4

    def test_unrestricted_fact_matches_all_rows(self, flights):
        facts = Table(
            "facts",
            [
                Column.categorical("region", [None]),
                Column.categorical("season", [None]),
                Column.numeric("value", [13.75]),
            ],
        )
        assert scope_match_join(flights, facts, ["region", "season"]).num_rows == 4

    def test_missing_dimension_rejected(self, flights):
        facts = Table("facts", [Column.categorical("region", ["East"])])
        with pytest.raises(SchemaError):
            scope_match_join(flights, facts, ["region", "season"])
