"""Unit tests for repro.relational.csvio."""

import pytest

from repro.relational.column import ColumnType
from repro.relational.csvio import read_csv, write_csv
from repro.relational.errors import SchemaError
from repro.relational.table import Table
from repro.relational.column import Column


class TestReadCsv:
    def test_round_trip(self, tmp_path):
        table = Table(
            "flights",
            [
                Column.categorical("region", ["East", "North", None]),
                Column.numeric("delay", [1.5, None, 3.0]),
            ],
        )
        path = tmp_path / "flights.csv"
        write_csv(table, path)
        loaded = read_csv(path)
        assert loaded.column("region").values == ["East", "North", None]
        assert loaded.column("delay").values == [1.5, None, 3.0]

    def test_type_inference(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("name,score\nalice,1.5\nbob,2\n")
        table = read_csv(path)
        assert table.column("name").ctype is ColumnType.CATEGORICAL
        assert table.column("score").ctype is ColumnType.NUMERIC

    def test_explicit_types(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("code,value\n001,2\n002,3\n")
        table = read_csv(path, types={"code": ColumnType.CATEGORICAL})
        assert table.column("code").values == ["001", "002"]

    def test_limit(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("v\n1\n2\n3\n")
        assert read_csv(path, limit=2).num_rows == 2

    def test_default_name_is_file_stem(self, tmp_path):
        path = tmp_path / "primaries.csv"
        path.write_text("v\n1\n")
        assert read_csv(path).name == "primaries"

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(SchemaError):
            read_csv(path)


class TestWriteCsv:
    def test_creates_parent_directories(self, tmp_path):
        table = Table("t", [Column.numeric("v", [1.0])])
        path = tmp_path / "nested" / "dir" / "out.csv"
        write_csv(table, path)
        assert path.exists()

    def test_null_round_trips_as_empty_cell(self, tmp_path):
        table = Table("t", [Column.categorical("c", [None, "x"])])
        path = tmp_path / "out.csv"
        write_csv(table, path)
        # The second data cell is empty on disk and reads back as NULL.
        assert read_csv(path).column("c").values == [None, "x"]
