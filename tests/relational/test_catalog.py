"""Unit tests for repro.relational.catalog and planner."""

import pytest

from repro.relational.catalog import Catalog, TableStatistics
from repro.relational.column import Column
from repro.relational.errors import UnknownTableError
from repro.relational.planner import CostEstimator
from repro.relational.table import Table


@pytest.fixture()
def table() -> Table:
    return Table(
        "flights",
        [
            Column.categorical("region", ["E", "E", "N", "S"]),
            Column.categorical("season", ["W", "S", "W", None]),
            Column.numeric("delay", [1.0, 2.0, 3.0, 4.0]),
        ],
    )


class TestTableStatistics:
    def test_from_table(self, table):
        stats = TableStatistics.from_table(table)
        assert stats.row_count == 4
        assert stats.distinct_count("region") == 3
        assert stats.distinct_count("season") == 2
        assert stats.null_counts["season"] == 1

    def test_combination_count_capped_by_rows(self, table):
        stats = TableStatistics.from_table(table)
        assert stats.combination_count(["region"]) == 3
        # 3 * 2 = 6 would exceed the row count, so the estimate is capped.
        assert stats.combination_count(["region", "season"]) == 4
        assert stats.combination_count([]) == 1

    def test_selectivity(self, table):
        stats = TableStatistics.from_table(table)
        assert stats.selectivity(["region"]) == pytest.approx(1 / 3)


class TestCatalog:
    def test_register_and_lookup(self, table):
        catalog = Catalog()
        catalog.register(table)
        assert catalog.has_table("flights")
        assert catalog.table("flights") is table
        assert catalog.statistics("flights").row_count == 4
        assert catalog.table_names() == ["flights"]

    def test_unknown_table_raises(self):
        catalog = Catalog()
        with pytest.raises(UnknownTableError):
            catalog.table("missing")
        with pytest.raises(UnknownTableError):
            catalog.statistics("missing")

    def test_unregister(self, table):
        catalog = Catalog()
        catalog.register(table)
        catalog.unregister("flights")
        assert not catalog.has_table("flights")
        # Unregistering again is a no-op.
        catalog.unregister("flights")

    def test_refresh(self, table):
        catalog = Catalog()
        catalog.register(table)
        catalog.refresh()
        assert catalog.statistics("flights").row_count == 4


class TestCostEstimator:
    def test_costs_scale_with_group_size(self, table):
        estimator = CostEstimator(TableStatistics.from_table(table))
        small = estimator.utility_cost(["region"])
        large = estimator.utility_cost(["region", "season"])
        assert float(large) >= float(small)

    def test_deviation_cheaper_than_utility(self, table):
        estimator = CostEstimator(TableStatistics.from_table(table))
        group = ["region"]
        assert float(estimator.deviation_cost(group)) < float(estimator.utility_cost(group))

    def test_fact_count(self, table):
        estimator = CostEstimator(TableStatistics.from_table(table))
        assert estimator.fact_count(["region"]) == 3
        assert estimator.fact_count([]) == 1

    def test_cost_estimate_addition(self, table):
        estimator = CostEstimator(TableStatistics.from_table(table))
        total = estimator.utility_cost(["region"]) + estimator.deviation_cost(["region"])
        assert float(total) == pytest.approx(
            float(estimator.utility_cost(["region"])) + float(estimator.deviation_cost(["region"]))
        )

    def test_data_row_count(self, table):
        estimator = CostEstimator(TableStatistics.from_table(table))
        assert estimator.data_row_count == 4
