"""Property-based tests for the relational operators.

The operators are checked against brute-force reference implementations
over randomly generated small tables: selection matches row-wise
predicate evaluation, group-by aggregates match per-group recomputation,
and the scope-match join produces exactly the pairs the scope-inclusion
definition demands.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.relational.aggregates import AVG, COUNT, SUM
from repro.relational.column import Column
from repro.relational.expressions import EqualsPredicate
from repro.relational.operators import group_by, scope_match_join, select
from repro.relational.table import Table

_CATEGORIES = ["a", "b", "c", None]


@st.composite
def small_tables(draw):
    """Random tables with two categorical dimensions and one numeric target."""
    num_rows = draw(st.integers(min_value=0, max_value=12))
    dim1 = draw(st.lists(st.sampled_from(_CATEGORIES), min_size=num_rows, max_size=num_rows))
    dim2 = draw(st.lists(st.sampled_from(_CATEGORIES), min_size=num_rows, max_size=num_rows))
    values = draw(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=num_rows,
            max_size=num_rows,
        )
    )
    return Table(
        "random",
        [
            Column.categorical("d1", dim1),
            Column.categorical("d2", dim2),
            Column.numeric("v", values),
        ],
    )


@settings(max_examples=60, deadline=None)
@given(table=small_tables(), value=st.sampled_from(["a", "b", "c"]))
def test_select_matches_rowwise_filter(table, value):
    predicate = EqualsPredicate("d1", value)
    result = select(table, predicate)
    expected = [row for row in table.iter_rows() if row["d1"] == value]
    assert result.to_dicts() == expected


@settings(max_examples=60, deadline=None)
@given(table=small_tables())
def test_group_by_matches_bruteforce(table):
    result = group_by(table, ["d1"], [SUM("v", "s"), COUNT(None, "n"), AVG("v", "m")])
    groups: dict = {}
    for row in table.iter_rows():
        groups.setdefault(row["d1"], []).append(row["v"])
    assert result.num_rows == len(groups)
    for row in result.iter_rows():
        values = groups[row["d1"]]
        assert row["s"] == sum(values)
        assert row["n"] == len(values)
        assert abs(row["m"] - sum(values) / len(values)) < 1e-9


@settings(max_examples=60, deadline=None)
@given(table=small_tables())
def test_group_by_partitions_all_rows(table):
    result = group_by(table, ["d1", "d2"], [COUNT(None, "n")])
    assert sum(row["n"] for row in result.iter_rows()) == table.num_rows


@settings(max_examples=60, deadline=None)
@given(table=small_tables(), facts_spec=st.lists(
    st.tuples(st.sampled_from(["a", "b", "c", None]), st.sampled_from(["a", "b", "c", None])),
    min_size=1,
    max_size=4,
))
def test_scope_match_join_matches_definition(table, facts_spec):
    facts = Table(
        "facts",
        [
            Column.categorical("d1", [f[0] for f in facts_spec]),
            Column.categorical("d2", [f[1] for f in facts_spec]),
            Column.numeric("value", [1.0] * len(facts_spec)),
        ],
    )
    result = scope_match_join(table, facts, ["d1", "d2"])
    expected_pairs = 0
    for row in table.iter_rows():
        for fact_d1, fact_d2 in facts_spec:
            if fact_d1 is not None and row["d1"] != fact_d1:
                continue
            if fact_d2 is not None and row["d2"] != fact_d2:
                continue
            expected_pairs += 1
    assert result.num_rows == expected_pairs
