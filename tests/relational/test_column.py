"""Unit tests for repro.relational.column."""

import math

import pytest

from repro.relational.column import Column, ColumnType
from repro.relational.errors import SchemaError, TypeMismatchError


class TestConstruction:
    def test_categorical_values_are_strings(self):
        column = Column.categorical("city", ["NYC", 5, None])
        assert column.values == ["NYC", "5", None]

    def test_numeric_values_are_floats(self):
        column = Column.numeric("delay", [1, 2.5, None])
        assert column.values == [1.0, 2.5, None]

    def test_numeric_rejects_non_numeric(self):
        with pytest.raises(TypeMismatchError):
            Column.numeric("delay", ["many"])

    def test_integer_rejects_null(self):
        with pytest.raises(TypeMismatchError):
            Column.integer("count", [1, None])

    def test_integer_coerces_floats(self):
        column = Column.integer("count", [1.0, 2.0])
        assert column.values == [1, 2]

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column.numeric("", [1.0])

    def test_nan_becomes_null(self):
        column = Column.numeric("delay", [float("nan"), 1.0])
        assert column.values == [None, 1.0]

    def test_length_and_iteration(self):
        column = Column.categorical("c", ["a", "b", "c"])
        assert len(column) == 3
        assert list(column) == ["a", "b", "c"]
        assert column[1] == "b"


class TestDerivedViews:
    def test_renamed_preserves_values(self):
        column = Column.numeric("old", [1.0, 2.0])
        renamed = column.renamed("new")
        assert renamed.name == "new"
        assert renamed.values == column.values

    def test_take_reorders(self):
        column = Column.numeric("v", [1.0, 2.0, 3.0])
        assert column.take([2, 0]).values == [3.0, 1.0]

    def test_mask_filters(self):
        column = Column.categorical("c", ["a", "b", "c"])
        assert column.mask([True, False, True]).values == ["a", "c"]

    def test_mask_length_mismatch_rejected(self):
        column = Column.categorical("c", ["a", "b"])
        with pytest.raises(SchemaError):
            column.mask([True])

    def test_with_values_keeps_type(self):
        column = Column.numeric("v", [1.0])
        replacement = column.with_values([3, 4])
        assert replacement.ctype is ColumnType.NUMERIC
        assert replacement.values == [3.0, 4.0]

    def test_equality(self):
        a = Column.numeric("v", [1.0, 2.0])
        b = Column.numeric("v", [1.0, 2.0])
        c = Column.numeric("v", [1.0, 3.0])
        assert a == b
        assert a != c


class TestStatistics:
    def test_null_count(self):
        column = Column.categorical("c", ["a", None, None])
        assert column.null_count() == 2
        assert column.is_null(1)
        assert not column.is_null(0)

    def test_distinct_values_order_and_count(self):
        column = Column.categorical("c", ["b", "a", "b", None])
        assert column.distinct_values() == ["b", "a"]
        assert column.distinct_count() == 2

    def test_to_numpy_null_becomes_nan(self):
        column = Column.numeric("v", [1.0, None])
        array = column.to_numpy()
        assert array[0] == 1.0
        assert math.isnan(array[1])

    def test_to_numpy_rejects_categorical(self):
        with pytest.raises(TypeMismatchError):
            Column.categorical("c", ["a"]).to_numpy()

    def test_numeric_summary(self):
        column = Column.numeric("v", [1.0, 3.0, None])
        summary = column.numeric_summary()
        assert summary["count"] == 2
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_numeric_summary_empty(self):
        summary = Column.numeric("v", [None]).numeric_summary()
        assert summary["count"] == 0
        assert math.isnan(summary["mean"])
