"""Integration tests: the full pipeline over synthetic datasets.

These tests wire every layer together the way the deployed system does:
dataset generation → configuration → pre-processing with a real
algorithm → natural-language querying → speech realisation — and check
the invariants the paper's system design relies on.
"""

import pytest

from repro.algorithms.exact import ExactSummarizer
from repro.algorithms.greedy import GreedySummarizer
from repro.datasets import load_dataset
from repro.system.config import SummarizationConfig
from repro.system.engine import ResponseKind, VoiceQueryEngine
from repro.system.problem_generator import ProblemGenerator
from repro.system.queries import DataQuery
from repro.system.templates import SpeechRealizer, TargetPhrasing


@pytest.fixture(scope="module")
def flights_engine() -> VoiceQueryEngine:
    dataset = load_dataset("flights", num_rows=500)
    config = SummarizationConfig.create(
        table="flights",
        dimensions=("origin_region", "season", "time_of_day"),
        targets=("cancellation",),
        max_query_length=1,
        max_facts_per_speech=3,
        max_fact_dimensions=1,
        algorithm="G-O",
    )
    realizer = SpeechRealizer(
        target_phrasings={
            "cancellation": TargetPhrasing(
                subject="the cancellation probability", unit="%", scale=100.0, decimals=1
            )
        }
    )
    engine = VoiceQueryEngine(
        config,
        dataset.table,
        target_synonyms={"cancellation": ["cancellations", "cancelled flights"]},
        realizer=realizer,
    )
    engine.preprocess()
    return engine


class TestFlightsDeployment:
    def test_preprocessing_covers_all_queries(self, flights_engine):
        report = flights_engine.report
        # 1 overall + 4 regions + 4 seasons + 4 times of day = 13 queries.
        assert report.queries_considered == 13
        assert report.speeches_generated == 13
        assert 0.0 < report.average_scaled_utility <= 1.0

    def test_every_stored_speech_has_text_and_utility(self, flights_engine):
        for stored in flights_engine.store:
            assert stored.text
            assert stored.speech.length >= 1
            assert stored.utility >= 0.0
            assert stored.algorithm == "G-O"

    def test_natural_language_round_trip(self, flights_engine):
        response = flights_engine.ask("cancellations in Winter?")
        assert response.kind is ResponseKind.SPEECH
        assert response.exact_match
        assert "%" in response.text
        assert response.query.predicate_map == {"season": "Winter"}

    def test_two_predicate_query_falls_back_to_most_specific_speech(self, flights_engine):
        response = flights_engine.ask("cancelled flights in the Northeast in Winter")
        assert response.kind is ResponseKind.SPEECH
        assert not response.exact_match
        assert response.query.length == 2

    def test_runtime_latency_is_far_below_preprocessing_cost(self, flights_engine):
        report = flights_engine.report
        response = flights_engine.answer_query(DataQuery.create("cancellation", {}))
        assert response.kind is ResponseKind.SPEECH
        assert response.latency_seconds < report.per_query_seconds

    def test_speech_values_match_data(self, flights_engine):
        """Every spoken fact value equals the average of its scope in the data."""
        dataset_table = flights_engine.table
        from repro.core.model import SummarizationRelation

        relation = SummarizationRelation(
            dataset_table, list(flights_engine.config.dimensions), "cancellation"
        )
        for stored in flights_engine.store:
            for fact in stored.speech:
                expected, support = relation.average_target(fact.scope)
                assert support == fact.support
                assert fact.value == pytest.approx(expected)


class TestAlgorithmAgreementOnRealData:
    def test_greedy_close_to_exact_on_acs(self):
        dataset = load_dataset("acs", num_rows=300)
        config = SummarizationConfig.create(
            table="acs",
            dimensions=("borough", "age_group", "sex"),
            targets=("visual_impairment",),
            max_query_length=1,
            max_facts_per_speech=3,
            max_fact_dimensions=1,
        )
        generator = ProblemGenerator(config, dataset.table)
        greedy = GreedySummarizer()
        exact = ExactSummarizer()
        checked = 0
        for generated in generator.generate():
            if checked >= 4:
                break
            greedy_result = greedy.summarize(generated.problem)
            exact_result = exact.summarize(generated.problem)
            assert greedy_result.utility <= exact_result.utility + 1e-9
            if exact_result.utility > 0:
                assert greedy_result.utility / exact_result.utility >= 0.9
            checked += 1
        assert checked > 0
