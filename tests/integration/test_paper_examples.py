"""Integration tests tied to the paper's worked examples.

Example 2 (facts as scope averages), Example 6 (pruning arithmetic) and
Example 7 (greedy choices) are checked on a relation that follows the
paper's Figure 1 setting: zero prior, facts restricted to regions,
seasons, or both.
"""

import pytest

from repro.algorithms.exact import ExactSummarizer
from repro.algorithms.greedy import GreedySummarizer
from repro.core.model import Scope, SummarizationRelation
from repro.core.priors import ZeroPrior
from repro.core.problem import SummarizationProblem
from repro.core.utility import UtilityEvaluator
from repro.facts.generation import FactGenerator
from repro.relational.column import ColumnType
from repro.relational.table import Table

REGIONS = ["East", "South", "West", "North"]
SEASONS = ["Spring", "Summer", "Fall", "Winter"]


@pytest.fixture(scope="module")
def paper_relation() -> SummarizationRelation:
    """A delay grid in the spirit of Figure 1.

    Delays: 20 minutes in the South in Summer and in the East in Winter,
    15 minutes elsewhere in Winter and in the North, 10 minutes for all
    remaining flights.
    """
    rows = []
    for region in REGIONS:
        for season in SEASONS:
            if (region, season) in {("South", "Summer"), ("East", "Winter")}:
                delay = 20.0
            elif season == "Winter" or region == "North":
                delay = 15.0
            else:
                delay = 10.0
            rows.append((region, season, delay))
    table = Table.from_rows(
        "figure1",
        ["region", "season", "delay"],
        [ColumnType.CATEGORICAL, ColumnType.CATEGORICAL, ColumnType.NUMERIC],
        rows,
    )
    return SummarizationRelation(table, ["region", "season"], "delay")


@pytest.fixture(scope="module")
def evaluator(paper_relation) -> UtilityEvaluator:
    return UtilityEvaluator(paper_relation, prior=ZeroPrior())


class TestExample2FactSemantics:
    def test_fact_values_are_scope_averages(self, paper_relation):
        south_summer = paper_relation.make_fact({"region": "South", "season": "Summer"})
        assert south_summer.value == pytest.approx(20.0)
        winter = paper_relation.make_fact({"season": "Winter"})
        # Winter: East 20, South/West 15, North 15 -> average 16.25.
        assert winter.value == pytest.approx(16.25)


class TestExample6PruningArithmetic:
    """The bound-pruning rule of Example 6: with a known lower bound b and
    one expansion remaining, a partial speech whose bound plus the candidate's
    single-fact utility stays below b is discarded."""

    def test_bound_rule(self, evaluator, paper_relation):
        south_summer = paper_relation.make_fact({"region": "South", "season": "Summer"})
        east_winter = paper_relation.make_fact({"region": "East", "season": "Winter"})
        partial_bound = evaluator.single_fact_utility(south_summer)
        candidate_utility = evaluator.single_fact_utility(east_winter)
        assert partial_bound == pytest.approx(20.0)
        assert candidate_utility == pytest.approx(20.0)
        lower_bound = 85.0  # utility of a speech found by the heuristic
        remaining = 1
        # (b - S.U) / r > F.U  ==>  prune.
        assert (lower_bound - partial_bound) / remaining > candidate_utility

    def test_exact_algorithm_survives_aggressive_bound(self, paper_relation):
        facts = FactGenerator(paper_relation, max_extra_dimensions=2).generate().facts
        problem = SummarizationProblem(
            relation=paper_relation,
            candidate_facts=facts,
            max_facts=2,
            prior=ZeroPrior(),
        )
        exact = ExactSummarizer().summarize(problem)
        greedy = GreedySummarizer().summarize(problem)
        assert exact.utility >= greedy.utility - 1e-9


class TestExample7GreedyChoices:
    def test_greedy_prefers_single_dimension_facts(self, paper_relation):
        """Restricted to single-dimension facts (as in Example 7), greedy
        picks the Winter and North facts, which dominate combination facts
        like South/Summer."""
        facts = FactGenerator(paper_relation, max_extra_dimensions=1).generate()
        single_dim = [f for f in facts.facts if len(f.dimensions) == 1]
        problem = SummarizationProblem(
            relation=paper_relation,
            candidate_facts=single_dim,
            max_facts=2,
            prior=ZeroPrior(),
        )
        result = GreedySummarizer().summarize(problem)
        chosen_scopes = {fact.scope for fact in result.speech}
        assert chosen_scopes == {Scope({"season": "Winter"}), Scope({"region": "North"})}

    def test_dominated_fact_not_chosen_first(self, evaluator, paper_relation):
        south_summer = paper_relation.make_fact({"region": "South", "season": "Summer"})
        winter = paper_relation.make_fact({"season": "Winter"})
        north = paper_relation.make_fact({"region": "North"})
        assert evaluator.single_fact_utility(south_summer) < evaluator.single_fact_utility(winter)
        assert evaluator.single_fact_utility(south_summer) < evaluator.single_fact_utility(north)
