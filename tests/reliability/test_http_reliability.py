"""HTTP-layer fault behavior: error bodies, Retry-After, dropped
connections, and the client's overload retries.

Satellite checks live here: 500/503 bodies carry stable ``code``
fields and never leak exception detail (that goes to the server log),
the client degrades non-JSON error bodies from intermediaries instead
of crashing on them, and 503 retries honor the server's Retry-After
pacing hint.
"""

from __future__ import annotations

import asyncio
import json
import logging

import pytest

from repro.api import HttpClient, VoiceHttpServer, VoiceRequest
from repro.api.clients import MAX_RETRY_AFTER_SECONDS
from repro.api.errors import ServiceOverloadedError, VoiceApiError
from repro.reliability import FAILPOINTS
from repro.serving import VoiceService


def run_with_server(engine, scenario):
    """Run ``scenario(service, server, client)`` against a live stack."""

    async def main():
        async with VoiceService(engine, concurrency=2) as service:
            async with VoiceHttpServer(service) as server:
                async with HttpClient(server.host, server.port) as client:
                    return await scenario(service, server, client)

    return asyncio.run(main())


async def raw_request(server, payload: bytes) -> bytes:
    """Send raw bytes, return everything until the server closes."""
    reader, writer = await asyncio.open_connection(server.host, server.port)
    writer.write(payload)
    await writer.drain()
    writer.write_eof()
    data = await reader.read()
    writer.close()
    return data


def post_ask(body: bytes) -> bytes:
    return (
        f"POST /v1/ask HTTP/1.1\r\nHost: x\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    ).encode() + body


async def scripted_server(responses: list[bytes]):
    """A fake origin that pops one canned response per request."""
    served = {"count": 0}

    async def handle(reader, writer):
        while responses:
            line = await reader.readline()
            if not line:
                break
            length = 0
            while True:  # headers
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            if length:
                await reader.readexactly(length)
            served["count"] += 1
            writer.write(responses.pop(0))
            await writer.drain()
        writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1], served


def plain_text_response(status: int, text: str, retry_after: str | None = None) -> bytes:
    body = text.encode()
    hint = f"Retry-After: {retry_after}\r\n" if retry_after is not None else ""
    return (
        f"HTTP/1.1 {status} X\r\nContent-Type: text/plain\r\n"
        f"Content-Length: {len(body)}\r\n{hint}Connection: keep-alive\r\n\r\n"
    ).encode() + body


class TestErrorBodies:
    def test_internal_errors_hide_exception_detail(self, engine, caplog):
        """Satellite: ``repr(exc)`` goes to the log, never the body."""

        async def scenario(service, server, client):
            async def explode(request):
                raise ValueError("secret-table-path /etc/passwd")

            service.submit = explode
            return await client._request(
                "POST", "/v1/ask", body=VoiceRequest(text="help").to_dict()
            )

        with caplog.at_level(logging.ERROR, logger="repro.api.http_server"):
            status, payload, _ = run_with_server(engine, scenario)
        assert status == 500
        assert payload["code"] == "internal_error"
        assert "secret" not in json.dumps(payload)
        assert "secret-table-path" in caplog.text  # operators still see it

    def test_overload_carries_code_and_retry_after(self, engine):
        async def scenario(service, server, client):
            async def reject(request):
                raise ServiceOverloadedError("queue full")

            service.submit = reject
            body = json.dumps(VoiceRequest(text="help").to_dict()).encode()
            return await raw_request(server, post_ask(body))

        raw = run_with_server(engine, scenario)
        assert raw.startswith(b"HTTP/1.1 503 ")
        assert b"Retry-After: 1\r\n" in raw
        assert b'"overloaded"' in raw

    def test_draining_service_answers_503(self, engine):
        async def scenario(service, server, client):
            await service.stop()  # the front-end outlives the service here
            return await client._request(
                "POST", "/v1/ask", body=VoiceRequest(text="help").to_dict()
            )

        status, payload, _ = run_with_server(engine, scenario)
        assert status == 503
        assert payload["code"] == "draining"


class TestConnectionDrop:
    def test_http_drop_failpoint_drops_once_then_recovers(self, engine):
        async def scenario(service, server, client):
            with FAILPOINTS.active(["http.drop:times=1"]):
                with pytest.raises(VoiceApiError, match="connection"):
                    await client.ask("help")
            recovered = await client.ask("help")
            return recovered

        recovered = run_with_server(engine, scenario)
        assert recovered.text  # the server survived its own chaos


class TestClientRetries:
    def test_ask_retries_503_and_succeeds(self, engine, monkeypatch):
        # An immediate Retry-After keeps the test fast while still
        # proving the hint (not the fallback backoff) paces the retry.
        monkeypatch.setattr("repro.api.http_server.RETRY_AFTER_SECONDS", 0)

        async def main():
            async with VoiceService(engine, concurrency=2) as service:
                calls = {"count": 0}
                original = service.submit

                async def flaky(request):
                    calls["count"] += 1
                    if calls["count"] == 1:
                        raise ServiceOverloadedError("transient spike")
                    return await original(request)

                service.submit = flaky
                async with VoiceHttpServer(service) as server:
                    async with HttpClient(
                        server.host, server.port, overload_retries=1
                    ) as client:
                        return await client.ask("help"), calls["count"]

        response, calls = asyncio.run(main())
        assert response.text
        assert calls == 2  # rejected once, re-submitted once

    def test_retries_exhausted_surface_overload(self, engine, monkeypatch):
        monkeypatch.setattr("repro.api.http_server.RETRY_AFTER_SECONDS", 0)

        async def scenario(service, server, client):
            async def reject(request):
                raise ServiceOverloadedError("queue full")

            service.submit = reject
            async with HttpClient(
                server.host, server.port, overload_retries=1
            ) as retrying:
                with pytest.raises(ServiceOverloadedError, match="queue full"):
                    await retrying.ask("help")

        run_with_server(engine, scenario)

    def test_retry_delay_honors_and_clamps_the_hint(self):
        client = HttpClient("localhost", 1, retry_backoff=0.05, retry_seed=0)
        # A hinted delay wins over the backoff, clamped to the ceiling
        # (plus at most 10% jitter).
        hinted = client._retry_delay(0, 0.2)
        assert 0.2 <= hinted <= 0.2 * 1.1
        clamped = client._retry_delay(0, 3600.0)
        assert MAX_RETRY_AFTER_SECONDS <= clamped <= MAX_RETRY_AFTER_SECONDS * 1.1
        # Without a hint: capped exponential backoff.
        assert 0.05 <= client._retry_delay(0, None) <= 0.05 * 1.1
        assert client._retry_delay(10, None) <= 1.0 * 1.1

    def test_plain_text_503_reads_as_overload(self, engine):
        """Satellite: a proxy's text/plain 503 must not crash the client."""

        async def main():
            server, port, served = await scripted_server(
                [plain_text_response(503, "upstream scaling up, try later")]
            )
            async with server:
                async with HttpClient("127.0.0.1", port, overload_retries=0) as client:
                    with pytest.raises(ServiceOverloadedError, match="try later"):
                        await client.ask("help")
            return served["count"]

        assert asyncio.run(main()) == 1

    def test_plain_text_503_retry_then_json_success(self, engine):
        """A non-JSON 503 still drives the retry loop to a real answer."""

        async def main():
            async with VoiceService(engine, concurrency=2) as service:
                async with VoiceHttpServer(service) as real:
                    # Fetch one genuine envelope to replay from the fake.
                    async with HttpClient(real.host, real.port) as probe:
                        _, payload, _ = await probe._request(
                            "POST", "/v1/ask", body=VoiceRequest(text="help").to_dict()
                        )
            envelope = json.dumps(payload).encode()
            ok = (
                f"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
                f"Content-Length: {len(envelope)}\r\nConnection: keep-alive\r\n\r\n"
            ).encode() + envelope
            server, port, served = await scripted_server(
                [plain_text_response(503, "busy", retry_after="0"), ok]
            )
            async with server:
                async with HttpClient("127.0.0.1", port, overload_retries=1) as client:
                    response = await client.ask("help")
            return response, served["count"]

        response, served = asyncio.run(main())
        assert response.text
        assert served == 2

    def test_plain_text_200_is_a_protocol_error(self, engine):
        async def main():
            server, port, _ = await scripted_server(
                [plain_text_response(200, "hello from a confused proxy")]
            )
            async with server:
                async with HttpClient("127.0.0.1", port) as client:
                    with pytest.raises(VoiceApiError, match="invalid JSON"):
                        await client.ask("help")

        asyncio.run(main())
