"""Shared fixtures for the chaos/reliability tests.

Every test in this package runs against a clean failpoint registry:
the autouse fixture clears :data:`repro.reliability.FAILPOINTS` before
and after each test, so no injected fault can leak into the rest of
the suite (the registry is process-global by design).
"""

from __future__ import annotations

import pytest

from repro.reliability import FAILPOINTS
from repro.system.engine import VoiceQueryEngine

from tests.serving.conftest import append_table, make_config, make_engine  # noqa: F401


@pytest.fixture(autouse=True)
def _clean_failpoints():
    """No chaos bleeds between tests (or out of this package)."""
    FAILPOINTS.clear()
    yield
    FAILPOINTS.clear()


@pytest.fixture()
def engine(example_table) -> VoiceQueryEngine:
    """A pre-processed engine over the running-example table."""
    return make_engine(example_table)


@pytest.fixture()
def append_batch():
    """One append batch over the running-example schema."""
    return append_table([("East", "Winter", 55.0), ("North", "Summer", 44.0)])
