"""Chaos tests for the supervised worker pool.

The acceptance bar: a run with injected worker crashes (or a real
SIGKILL from outside) streams results *byte-identical* to a no-fault
run, deaths are detected promptly via sentinel watch rather than
timeout expiry, and exhausting the respawn budget degrades the pool to
serial instead of failing the run.
"""

from __future__ import annotations

import os
import signal
import time

from repro.reliability import FAILPOINTS
from repro.system.worker_pool import WorkerPool


def scale_chunk(context, chunk):
    """Module-level task (pool workers can only import top-level callables)."""
    return [context["factor"] * value for value in chunk]


def sleepy_scale_chunk(context, chunk):
    """Scale after holding the worker busy (mid-stream kill tests)."""
    time.sleep(context["sleep"])
    return [context["factor"] * value for value in chunk]


CHUNKS = [[index, index + 1] for index in range(0, 16, 2)]
DOUBLED = [[2 * a, 2 * b] for a, b in CHUNKS]


def run_scaled(pool, chunks=CHUNKS):
    return list(pool.imap_chunks({"factor": 2}, scale_chunk, iter(chunks)))


class TestCrashRecovery:
    def test_crash_failpoint_run_matches_no_fault_run(self):
        with WorkerPool(2) as pool:
            baseline = run_scaled(pool)
        with FAILPOINTS.active(["worker.crash:times=1"]):
            with WorkerPool(2) as pool:
                faulted = run_scaled(pool)
                assert pool.respawn_count == 1
                assert not pool.degraded
                assert pool.parallel  # one crash does not forfeit parallelism
            assert FAILPOINTS.report()["worker.crash"]["fired"] == 1
        assert faulted == baseline == DOUBLED

    def test_repeated_crashes_within_budget_stay_parallel(self):
        with FAILPOINTS.active(["worker.crash:times=2"]):
            with WorkerPool(2, max_respawns=3) as pool:
                assert run_scaled(pool) == DOUBLED
                assert pool.respawn_count == 2
                assert not pool.degraded

    def test_sigkill_mid_stream_is_detected_promptly(self):
        """A worker SIGKILLed mid-run (satellite: deterministic kill test).

        ``chunk_timeout`` is an hour — if recovery relied on timeout
        expiry this test could not finish; finishing fast proves the
        parent watches process sentinels and re-dispatches the lost
        chunks on a respawned worker.
        """
        expected = [[3 * a, 3 * b] for a, b in CHUNKS]
        start = time.perf_counter()
        with WorkerPool(2, chunk_timeout=3600.0) as pool:
            iterator = pool.imap_chunks(
                {"factor": 3, "sleep": 0.2}, sleepy_scale_chunk, iter(CHUNKS)
            )
            results = [next(iterator)]
            # Both workers still hold in-flight chunks here (8 chunks,
            # 2 workers, ~0.2 s each); kill one of them outright.
            victim = pool._slots[0].process
            os.kill(victim.pid, signal.SIGKILL)
            results.extend(iterator)
            elapsed = time.perf_counter() - start
            assert pool.respawn_count == 1
        assert results == expected  # in order, nothing lost or duplicated
        assert elapsed < 20.0  # prompt detection, not the 3600 s timeout

    def test_respawn_budget_exhaustion_degrades_to_serial(self):
        with FAILPOINTS.active(["worker.crash:times=0"]):  # every dispatch crashes
            with WorkerPool(2, max_respawns=1) as pool:
                assert run_scaled(pool) == DOUBLED  # finished serially
                assert pool.degraded
                assert not pool.parallel
                assert pool.respawn_count == pool.max_respawns + 1
                # The degraded pool stays usable (now serial, so the
                # crash failpoint is never consulted again).
                assert run_scaled(pool) == DOUBLED

    def test_broadcast_stall_delays_but_preserves_results(self):
        with FAILPOINTS.active(["worker.broadcast_stall:sleep=0.3,times=1"]):
            with WorkerPool(2) as pool:
                start = time.perf_counter()
                assert run_scaled(pool) == DOUBLED
                elapsed = time.perf_counter() - start
                assert pool.respawn_count == 0  # slow is not dead
        assert elapsed >= 0.25  # the stalled worker's chunks waited it out
