"""Unit tests for the deterministic failpoint registry."""

from __future__ import annotations

import time

import pytest

from repro.reliability.faults import (
    DEFAULT_SLEEP_SECONDS,
    FailpointRegistry,
    FailpointRule,
    InjectedFault,
    parse_rule,
)


class TestParseRule:
    def test_bare_site_fires_once_by_default(self):
        rule = parse_rule("worker.crash")
        assert rule.site == "worker.crash"
        assert (rule.mode, rule.times, rule.after, rule.every) == ("raise", 1, 0, 1)
        assert rule.sleep == DEFAULT_SLEEP_SECONDS
        assert rule.probability == 1.0

    def test_all_options_parse(self):
        rule = parse_rule("x:mode=sleep,sleep=0.25,times=0,after=2,every=3,p=0.5,seed=9")
        assert rule.mode == "sleep"
        assert rule.sleep == 0.25
        assert (rule.times, rule.after, rule.every) == (0, 2, 3)
        assert rule.probability == 0.5
        assert rule.seed == 9

    @pytest.mark.parametrize(
        "spec",
        [
            ":times=1",  # no site
            "x:times",  # not key=value
            "x:frobnicate=1",  # unknown key
            "x:times=abc",  # unparseable int
            "x:mode=explode",  # unknown mode
            "x:times=-1",  # negative
            "x:every=0",  # every must be >= 1
            "x:p=1.5",  # probability out of range
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_rule(spec)


class TestRuleSchedule:
    def fire_pattern(self, rule: FailpointRule, hits: int) -> list[int]:
        """1-based hit indexes on which the rule fires."""
        return [hit for hit in range(1, hits + 1) if rule.decide()]

    def test_after_every_times_schedule(self):
        # Skip 2 hits, then every 3rd eligible hit, at most twice:
        # eligible hits are 3, 6, 9, ... and `times` caps at two fires.
        rule = FailpointRule(site="s", times=2, after=2, every=3)
        assert self.fire_pattern(rule, 12) == [3, 6]

    def test_times_zero_is_unlimited(self):
        rule = FailpointRule(site="s", times=0)
        assert self.fire_pattern(rule, 5) == [1, 2, 3, 4, 5]

    def test_probability_is_seed_deterministic(self):
        pattern = lambda seed: self.fire_pattern(  # noqa: E731
            FailpointRule(site="s", times=0, probability=0.5, seed=seed), 64
        )
        assert pattern(7) == pattern(7)
        # Statistically certain for 64 draws at p=0.5.
        assert 0 < len(pattern(7)) < 64

    def test_sites_draw_independent_sequences_from_one_seed(self):
        a = FailpointRule(site="a", times=0, probability=0.5, seed=7)
        b = FailpointRule(site="b", times=0, probability=0.5, seed=7)
        fires = lambda rule: [rule.decide() for _ in range(64)]  # noqa: E731
        assert fires(a) != fires(b)


class TestRegistry:
    def test_unconfigured_sites_never_fire(self):
        registry = FailpointRegistry()
        assert registry.trigger("worker.crash") is None
        assert not registry.fires("worker.crash")
        assert not registry.inject("worker.crash")
        assert not registry.configured

    def test_duplicate_site_rejected(self):
        registry = FailpointRegistry()
        with pytest.raises(ValueError, match="duplicate"):
            registry.configure(["x:times=1", "x:times=2"])

    def test_inject_raise_mode_raises_injected_fault(self):
        registry = FailpointRegistry()
        registry.configure(["x"])
        with pytest.raises(InjectedFault) as excinfo:
            registry.inject("x")
        assert excinfo.value.site == "x"
        assert registry.report() == {"x": {"hits": 1, "fired": 1}}
        # The single allotted fire is spent; later hits pass through.
        assert not registry.inject("x")

    def test_inject_sleep_mode_sleeps(self):
        registry = FailpointRegistry()
        registry.configure(["x:mode=sleep,sleep=0.05"])
        start = time.perf_counter()
        assert registry.inject("x")
        assert time.perf_counter() - start >= 0.04

    def test_ensure_preserves_counters_configure_resets(self):
        registry = FailpointRegistry()
        registry.configure(["x:times=0"], seed=3)
        registry.fires("x")
        registry.ensure(["x:times=0"], seed=3)  # same config: no reset
        assert registry.report()["x"]["hits"] == 1
        registry.configure(["x:times=0"], seed=3)  # explicit: reset
        assert registry.report()["x"]["hits"] == 0

    def test_active_context_clears_on_exit(self):
        registry = FailpointRegistry()
        with registry.active(["x"]):
            assert registry.configured
            assert registry.specs == ("x",)
        assert not registry.configured

    def test_active_context_clears_on_error(self):
        registry = FailpointRegistry()
        with pytest.raises(RuntimeError):
            with registry.active(["x"]):
                raise RuntimeError("test body failed")
        assert not registry.configured
