"""Retry, backoff and circuit-breaker tests for the maintenance scheduler.

Failure is forced two ways: by monkeypatching ``maintainer.maintain``
(arbitrary counts, no failpoint machinery in the loop) and through the
``maintain.raise`` failpoint (proving the production injection site
fires after the maintainer really appended — rollback and retry then
run against a non-empty table delta).
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.api.errors import MaintenanceUnavailableError
from repro.reliability import FAILPOINTS
from repro.reliability.faults import InjectedFault
from repro.serving.scheduler import MaintenanceScheduler
from repro.serving.snapshots import SnapshotRegistry
from repro.system.updates import IncrementalMaintainer

from tests.serving.conftest import make_config


def make_scheduler(engine, **kwargs):
    maintainer = IncrementalMaintainer(
        make_config(), engine.table, summarizer=engine.summarizer, realizer=engine.realizer
    )
    registry = SnapshotRegistry(engine.store)
    scheduler = MaintenanceScheduler(maintainer, registry, **kwargs)
    return scheduler, registry, maintainer


def fail_maintain(maintainer, times=None):
    """Make ``maintain`` raise (the first ``times`` calls; None = always)."""
    original = maintainer.maintain
    calls = {"count": 0}

    def flaky(new_rows, store, **kwargs):
        calls["count"] += 1
        if times is None or calls["count"] <= times:
            raise RuntimeError(f"maintenance crashed (call {calls['count']})")
        return original(new_rows, store, **kwargs)

    maintainer.maintain = flaky
    return calls


async def wait_for(predicate, timeout=10.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert asyncio.get_running_loop().time() < deadline, "condition never held"
        await asyncio.sleep(0.005)


class TestRetry:
    def test_exhausted_retries_record_dropped_rows(self, engine, append_batch):
        """Satellite regression: dropped rows are counted, not silent."""

        async def run():
            scheduler, registry, maintainer = make_scheduler(
                engine, retry_limit=1, backoff_base=0.0, backoff_cap=0.0,
                breaker_threshold=99,
            )
            rows_before = maintainer.table.num_rows
            fail_maintain(maintainer)
            scheduler.start()
            scheduler.request_append(append_batch)
            await scheduler.quiesce()
            await scheduler.stop()
            return scheduler, registry, maintainer, rows_before

        scheduler, registry, maintainer, rows_before = asyncio.run(run())
        first, last = scheduler.jobs
        assert (first.status, last.status) == ("failed", "failed")
        assert (first.attempt, last.attempt) == (1, 2)
        # Only the FINAL failed attempt declares the rows dropped.
        assert first.dropped_rows == 0
        assert last.dropped_rows == append_batch.num_rows
        assert scheduler.dropped_rows_total == append_batch.num_rows
        assert scheduler.retry_count == 1
        assert scheduler.retry_successes == 0
        assert registry.version == 0  # nothing was ever published
        assert maintainer.table.num_rows == rows_before  # every attempt rolled back

    def test_retry_waits_for_backoff(self, engine, append_batch):
        async def run():
            scheduler, registry, maintainer = make_scheduler(
                engine, retry_limit=3, backoff_base=0.3, backoff_cap=0.3,
                breaker_threshold=99,
            )
            fail_maintain(maintainer, times=1)
            scheduler.start()
            start = time.perf_counter()
            scheduler.request_append(append_batch)
            await scheduler.quiesce()
            elapsed = time.perf_counter() - start
            await scheduler.stop()
            return scheduler, registry, elapsed

        scheduler, registry, elapsed = asyncio.run(run())
        failed, retried = scheduler.jobs
        assert failed.status == "failed"
        assert retried.status == "completed"
        assert retried.attempt == 2
        assert scheduler.retry_successes == 1
        assert registry.version == 1
        assert elapsed >= 0.28  # the retry waited out its backoff delay

    def test_stop_without_drain_drops_the_pending_retry(self, engine, append_batch):
        async def run():
            scheduler, _, maintainer = make_scheduler(
                engine, retry_limit=5, backoff_base=30.0, backoff_cap=30.0,
                breaker_threshold=99,
            )
            fail_maintain(maintainer)
            scheduler.start()
            scheduler.request_append(append_batch)
            await wait_for(lambda: scheduler.retry_pending)
            await scheduler.stop(drain=False)
            return scheduler

        scheduler = asyncio.run(run())
        cancelled = scheduler.jobs[-1]
        # Rows the service accepted and then abandoned mid-retry count
        # as dropped — unlike never-started pending batches.
        assert cancelled.status == "cancelled"
        assert cancelled.dropped_rows == append_batch.num_rows
        assert scheduler.dropped_rows_total == append_batch.num_rows

    def test_maintain_raise_failpoint_drives_a_real_retry(self, engine, append_batch):
        async def run():
            scheduler, registry, maintainer = make_scheduler(
                engine, backoff_base=0.0, backoff_cap=0.0
            )
            rows_before = maintainer.table.num_rows
            with FAILPOINTS.active(["maintain.raise:times=1"]):
                scheduler.start()
                scheduler.request_append(append_batch)
                await scheduler.quiesce()
                await scheduler.stop()
            return scheduler, registry, maintainer, rows_before

        scheduler, registry, maintainer, rows_before = asyncio.run(run())
        failed, retried = scheduler.jobs
        assert InjectedFault.__name__ in failed.error
        assert retried.status == "completed"
        assert registry.version == 1
        assert maintainer.table.num_rows == rows_before + append_batch.num_rows


class TestCircuitBreaker:
    def test_breaker_opens_rejects_appends_and_recloses(self, engine, append_batch):
        async def run():
            scheduler, registry, maintainer = make_scheduler(
                engine, retry_limit=0, breaker_threshold=2, breaker_cooldown=0.2,
            )
            fail_maintain(maintainer, times=2)
            scheduler.start()
            scheduler.request_append(append_batch)
            await scheduler.quiesce()  # failure 1 (appends must not coalesce)
            assert scheduler.breaker_state == "closed"
            scheduler.request_append(append_batch)
            await scheduler.quiesce()  # failure 2: threshold reached
            assert scheduler.breaker_state == "open"
            assert scheduler.consecutive_failures == 2
            with pytest.raises(MaintenanceUnavailableError):
                scheduler.request_append(append_batch)
            await asyncio.sleep(0.25)  # cooldown elapses
            assert scheduler.breaker_state == "half_open"
            scheduler.request_append(append_batch)  # the half-open probe
            await scheduler.quiesce()  # maintain works again: probe succeeds
            assert scheduler.breaker_state == "closed"
            assert scheduler.consecutive_failures == 0
            await scheduler.stop()
            return registry

        registry = asyncio.run(run())
        assert registry.version == 1  # exactly the probe's append published

    def test_failed_half_open_probe_reopens_the_breaker(self, engine, append_batch):
        async def run():
            scheduler, _, maintainer = make_scheduler(
                engine, retry_limit=0, breaker_threshold=1, breaker_cooldown=0.1,
            )
            fail_maintain(maintainer)
            scheduler.start()
            scheduler.request_append(append_batch)
            await scheduler.quiesce()
            assert scheduler.breaker_state == "open"
            await asyncio.sleep(0.15)
            assert scheduler.breaker_state == "half_open"
            scheduler.request_append(append_batch)  # probe, fails again
            await scheduler.quiesce()
            assert scheduler.breaker_state == "open"  # cooldown restarted
            with pytest.raises(MaintenanceUnavailableError):
                scheduler.request_append(append_batch)
            await scheduler.stop()

        asyncio.run(run())
