"""Request deadlines, graceful degradation and health at the service layer.

The acceptance bar for deadlines: with the ``serve.offload_slow``
failpoint pushing every offloaded answer past the budget, every
affected request comes back as a ``timeout``-kind response *within*
the deadline plus one scheduling quantum — the caller is never parked
behind work nobody is waiting for anymore.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import ServingConfig, VoiceRequest
from repro.api.envelopes import EnvelopeError
from repro.api.errors import MaintenanceUnavailableError
from repro.reliability import FAILPOINTS
from repro.reliability.faults import InjectedFault
from repro.serving import VoiceService
from repro.system.engine import ResponseKind

#: A data query without a pre-generated exact speech: falls into
#: subset matching, which the service offloads to the executor.
OFFLOAD_QUESTION = "delays for East in Winter"

#: Allowance past the deadline for the event loop to schedule the
#: timed-out response ("one scheduling quantum", generously).
QUANTUM_SECONDS = 0.25


class TestDeadlines:
    def test_slow_offloads_time_out_within_the_deadline(self, engine):
        deadline_ms = 150.0
        config = ServingConfig(concurrency=2, default_deadline_ms=deadline_ms)

        async def run():
            with FAILPOINTS.active(["serve.offload_slow:sleep=0.6,times=0"]):
                async with VoiceService(engine, config) as service:
                    responses = await asyncio.gather(
                        *(service.submit(OFFLOAD_QUESTION) for _ in range(4))
                    )
                    return responses, service.metrics_summary()

        responses, summary = asyncio.run(run())
        for response in responses:
            assert response.kind is ResponseKind.TIMEOUT
            # Answered within deadline + one quantum, far before the
            # 0.6 s the offload would have taken.
            assert response.latency_seconds <= deadline_ms / 1000.0 + QUANTUM_SECONDS
        assert summary["timeouts"] == 4
        assert summary["reliability"]["timeouts"] == 4

    def test_request_deadline_overrides_the_default(self, engine):
        config = ServingConfig(concurrency=2, default_deadline_ms=50.0)

        async def run():
            with FAILPOINTS.active(["serve.offload_slow:sleep=0.2,times=0"]):
                async with VoiceService(engine, config) as service:
                    generous = await service.submit(
                        VoiceRequest(text=OFFLOAD_QUESTION, deadline_ms=10_000.0)
                    )
                    default = await service.submit(OFFLOAD_QUESTION)
                    return generous, default

        generous, default = asyncio.run(run())
        assert generous.kind is ResponseKind.SPEECH  # its own budget sufficed
        assert default.kind is ResponseKind.TIMEOUT  # the 50 ms default did not

    def test_timed_out_request_records_no_session_state(self, engine):
        config = ServingConfig(concurrency=2, default_deadline_ms=100.0)

        async def run():
            with FAILPOINTS.active(["serve.offload_slow:sleep=0.5,times=0"]):
                async with VoiceService(engine, config) as service:
                    timed_out = await service.submit(
                        VoiceRequest(text=OFFLOAD_QUESTION, session_id="s")
                    )
                    live_sessions = len(service.sessions)
                    # "repeat" is inline (never offloaded): it answers
                    # within any deadline and must not find an answer
                    # the caller never heard.
                    replay = await service.submit(
                        VoiceRequest(text="repeat", session_id="s")
                    )
                    return timed_out, live_sessions, replay

        timed_out, live_sessions, replay = asyncio.run(run())
        assert timed_out.kind is ResponseKind.TIMEOUT
        assert live_sessions == 0
        assert replay.text == engine.respond("repeat").text  # stateless fallback

    def test_offload_raise_failpoint_surfaces_as_request_error(self, engine):
        async def run():
            with FAILPOINTS.active(["serve.offload_raise:times=1"]):
                async with VoiceService(engine, concurrency=2) as service:
                    with pytest.raises(InjectedFault):
                        await service.submit(OFFLOAD_QUESTION)
                    recovered = await service.submit(OFFLOAD_QUESTION)
                    return recovered, service.metrics_summary()

        recovered, summary = asyncio.run(run())
        assert recovered.kind is ResponseKind.SPEECH
        assert summary["errors"] == 1
        assert summary["completed"] == 1

    @pytest.mark.parametrize("bad", [0, -5.0, float("nan"), float("inf"), True, "1s"])
    def test_invalid_deadlines_rejected_at_the_envelope(self, bad):
        with pytest.raises(EnvelopeError, match="deadline_ms"):
            VoiceRequest(text="hello", deadline_ms=bad)

    def test_deadline_round_trips_through_the_envelope(self):
        request = VoiceRequest(text="hello", deadline_ms=250.0)
        decoded = VoiceRequest.from_dict(request.to_dict())
        assert decoded.deadline_ms == 250.0
        # Absent on the wire (and for old payloads) decodes as None.
        assert VoiceRequest.from_dict(VoiceRequest(text="hi").to_dict()).deadline_ms is None


class TestHealth:
    def test_ok_then_draining(self, engine):
        async def run():
            service = VoiceService(engine, concurrency=2)
            await service.start()
            healthy = service.health()
            await service.stop()
            return healthy, service.health()

        healthy, stopped = asyncio.run(run())
        assert healthy == {"status": "ok", "reasons": []}
        assert stopped["status"] == "draining"

    def test_open_breaker_degrades_health_and_rejects_appends(
        self, engine, append_batch
    ):
        config = ServingConfig(
            concurrency=2,
            maintenance_retry_limit=0,
            breaker_threshold=1,
            breaker_cooldown_seconds=60.0,
        )

        async def run():
            with FAILPOINTS.active(["maintain.raise:times=0"]):
                async with VoiceService(engine, config) as service:
                    service.request_append(append_batch)
                    await service.scheduler.quiesce()
                    health = service.health()
                    reliability = service.reliability()
                    with pytest.raises(MaintenanceUnavailableError):
                        service.request_append(append_batch)
                    # Degraded still answers requests.
                    response = await service.submit("help")
                    return health, reliability, response

        health, reliability, response = asyncio.run(run())
        assert health["status"] == "degraded"
        assert any("breaker" in reason for reason in health["reasons"])
        assert any("dropped" in reason for reason in health["reasons"])
        assert reliability["breaker_state"] == "open"
        assert reliability["maintenance_dropped_rows"] == append_batch.num_rows
        assert response.kind is ResponseKind.HELP
