"""Shared fixtures for the test suite.

The fixtures centre on the paper's running example (flight delays by
region and season, Figure 1) so unit tests can check concrete utility
numbers against the worked examples in the paper.
"""

from __future__ import annotations

import pytest

from repro.core.model import SummarizationRelation
from repro.core.priors import ZeroPrior
from repro.core.problem import SummarizationProblem
from repro.core.utility import UtilityEvaluator
from repro.facts.generation import FactGenerator
from repro.relational.column import ColumnType
from repro.relational.table import Table

REGIONS = ["East", "South", "West", "North"]
SEASONS = ["Spring", "Summer", "Fall", "Winter"]


def build_example_table() -> Table:
    """A Figure 1-style relation: one row per (region, season).

    Delays: 15 minutes for flights in the North or in Winter, 20 minutes
    for flights in the South in Summer, 10 minutes otherwise.  Utility
    numbers asserted in the tests are derived from this concrete data
    (the paper's worked examples use a slightly different delay grid).
    """
    rows = []
    for region in REGIONS:
        for season in SEASONS:
            if region == "North" or season == "Winter":
                delay = 15.0
            elif region == "South" and season == "Summer":
                delay = 20.0
            else:
                delay = 10.0
            rows.append((region, season, delay))
    return Table.from_rows(
        "flight_delays",
        ["region", "season", "delay"],
        [ColumnType.CATEGORICAL, ColumnType.CATEGORICAL, ColumnType.NUMERIC],
        rows,
    )


@pytest.fixture()
def example_table() -> Table:
    """The running-example table."""
    return build_example_table()


@pytest.fixture()
def example_relation(example_table) -> SummarizationRelation:
    """The running-example summarization relation."""
    return SummarizationRelation(example_table, ["region", "season"], "delay")


@pytest.fixture()
def example_evaluator(example_relation) -> UtilityEvaluator:
    """Utility evaluator with the zero prior of Example 3."""
    return UtilityEvaluator(example_relation, prior=ZeroPrior())


@pytest.fixture()
def example_facts(example_relation):
    """All candidate facts restricting up to two dimensions."""
    return FactGenerator(example_relation, max_extra_dimensions=2).generate()


@pytest.fixture()
def example_problem(example_relation, example_facts) -> SummarizationProblem:
    """A three-fact summarization problem over the running example."""
    return SummarizationProblem(
        relation=example_relation,
        candidate_facts=example_facts.facts,
        max_facts=3,
        prior=ZeroPrior(),
        label="running example",
    )


@pytest.fixture()
def small_problem(example_relation, example_facts) -> SummarizationProblem:
    """A two-fact problem (matches Example 6's setting)."""
    return SummarizationProblem(
        relation=example_relation,
        candidate_facts=example_facts.facts,
        max_facts=2,
        prior=ZeroPrior(),
        label="running example (two facts)",
    )
