"""SIGKILL crash tests: a real server process dies at a failpoint and
must recover on restart with zero acked-but-lost batches.

Each test launches ``repro.cli serve --http --data-dir`` as a
subprocess with a killing failpoint armed, drives ``POST /v1/append``
traffic until the process dies (exit status ``-SIGKILL``), then:

1. asserts every batch the client saw acked is in the journal and not
   dropped (the durable-ack contract),
2. runs ``repro.cli recover --verify`` over the data directory (the
   checkpoint path and the pure journal replay must agree byte for
   byte),
3. restarts the server on the same data directory and requires it to
   accept appends and answer again, shutting down cleanly.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.storage.durability import read_journal
from repro.storage.recovery import JOURNAL_NAME

REPO_ROOT = Path(__file__).resolve().parents[2]

SERVE_ARGS = ["--dataset", "flights", "--rows", "200", "--algorithm", "G-B"]

STARTUP_TIMEOUT = 60.0
EXIT_TIMEOUT = 60.0


def _subprocess_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _start_server(data_dir: Path, extra_args: list[str]) -> tuple[subprocess.Popen, str]:
    """Launch ``serve --http 0 --data-dir`` and wait for its listen URL."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            *SERVE_ARGS,
            "--http", "0",
            "--data-dir", str(data_dir),
            *extra_args,
        ],
        cwd=REPO_ROOT,
        env=_subprocess_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    lines: queue.Queue = queue.Queue()

    def pump():
        for line in proc.stdout:
            lines.put(line)
        lines.put(None)

    threading.Thread(target=pump, daemon=True).start()
    collected = []
    while True:
        try:
            line = lines.get(timeout=STARTUP_TIMEOUT)
        except queue.Empty:
            proc.kill()
            pytest.fail(f"server produced no output; saw: {collected!r}")
        if line is None:
            pytest.fail(f"server exited before listening; output: {collected!r}")
        collected.append(line)
        if line.startswith("listening on "):
            return proc, line.split()[2]


def _post_json(url: str, body: dict, timeout: float = 10.0) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _get_json(url: str, timeout: float = 10.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _append_rows(index: int) -> list[dict]:
    """One flights-schema row per batch (values vary per batch)."""
    return [
        {
            "airline": "F9",
            "origin_region": "West",
            "destination_region": "South",
            "season": "Winter",
            "month": "February",
            "time_of_day": "Evening",
            "day_type": "Weekday",
            "cancellation": 0.0,
            "delay_minutes": 30.0 + index,
        }
    ]


def _drive_until_killed(proc: subprocess.Popen, address: str) -> list[int]:
    """POST appends until the server dies; the acked journal seqs."""
    acked: list[int] = []
    for index in range(50):
        if proc.poll() is not None:
            break
        try:
            payload = _post_json(f"{address}/v1/append", {"rows": _append_rows(index)})
        except (urllib.error.URLError, ConnectionError, TimeoutError, OSError):
            # The kill landed mid-request: the batch may or may not be
            # journalled, but it was never acked, so recovery owes us
            # nothing for it.
            break
        if payload.get("journal_seq") is not None:
            acked.append(int(payload["journal_seq"]))
    proc.wait(timeout=EXIT_TIMEOUT)
    return acked


def _run_cli(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=REPO_ROOT,
        env=_subprocess_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize(
    "failpoint",
    [
        # Torn ack: the record is flushed, the client is never answered.
        "journal.sync:mode=kill,after=2,times=1",
        # Pre-swap crash: acked batches journalled, never applied.
        "swap.commit:mode=kill,times=1",
        # Mid-checkpoint crash: only an ignorable .tmp- directory remains.
        "checkpoint.save:mode=kill,times=1",
    ],
    ids=["journal-sync", "swap-commit", "checkpoint-save"],
)
def test_sigkill_then_restart_recovers(tmp_path, failpoint):
    data_dir = tmp_path / "state"

    proc, address = _start_server(
        data_dir,
        ["--checkpoint-every", "1", "--failpoint", failpoint],
    )
    try:
        acked = _drive_until_killed(proc, address)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=EXIT_TIMEOUT)
    assert proc.returncode == -signal.SIGKILL

    # Durable-ack contract: every acked seq is in the journal's valid
    # prefix and was never dropped.
    scan = read_journal(data_dir / JOURNAL_NAME)
    journalled = {
        int(entry.record["seq"]) for entry in scan.records if entry.kind == "append"
    }
    assert acked, "server died before acking any append"
    assert set(acked) <= journalled
    assert not (set(acked) & scan.dropped_seqs())

    # Independent recovery parity: checkpoint path == pure journal replay.
    verify = _run_cli(
        [
            "recover", *SERVE_ARGS,
            "--data-dir", str(data_dir),
            "--append-rows", "0",
            "--verify",
        ]
    )
    assert verify.returncode == 0, verify.stdout + verify.stderr
    assert "verified: checkpoint recovery matches pure journal replay" in verify.stdout
    summary = json.loads(
        next(
            line for line in verify.stdout.splitlines() if line.startswith("recovery: ")
        ).removeprefix("recovery: ")
    )
    assert summary["next_seq"] > max(acked)

    # The restarted server recovers the same directory and serves again.
    proc, address = _start_server(data_dir, [])
    try:
        payload = _post_json(f"{address}/v1/append", {"rows": _append_rows(99)})
        assert payload["journal_seq"] > max(acked)
        health = _get_json(f"{address}/healthz")
        assert health["status"] in ("ok", "degraded")
        metrics = _get_json(f"{address}/v1/metrics")
        assert metrics["durability"]["data_dir"] == str(data_dir)
        assert metrics["durability"]["next_seq"] > max(acked)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=EXIT_TIMEOUT) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=EXIT_TIMEOUT)
