"""Tests for the durability layer (journal, checkpoints, recovery)."""
