"""Journal codec, writer, and torn-tail behaviour."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability import faults
from repro.relational.column import ColumnType
from repro.relational.table import Table
from repro.storage.durability import (
    JournalError,
    JournalWriter,
    decode_record,
    encode_record,
    read_journal,
    table_from_payload,
    table_to_payload,
)

from tests.serving.conftest import append_table


class TestRecordCodec:
    def test_round_trip(self):
        record = {"kind": "append", "seq": 7, "table": {"name": "t", "columns": []}}
        blob = encode_record(record)
        decoded, end = decode_record(blob)
        assert decoded == record
        assert end == len(blob)

    def test_decode_at_offset(self):
        first = encode_record({"kind": "applied", "seqs": [1], "snapshot_version": 1})
        second = encode_record({"kind": "dropped", "seqs": [2]})
        blob = first + second
        record, end = decode_record(blob, len(first))
        assert record["kind"] == "dropped"
        assert end == len(blob)

    def test_truncated_header_rejected(self):
        with pytest.raises(JournalError, match="truncated record header"):
            decode_record(b"\x00\x00")

    def test_truncated_payload_rejected(self):
        blob = encode_record({"kind": "append", "seq": 1})
        with pytest.raises(JournalError, match="truncated record payload"):
            decode_record(blob[:-1])

    def test_crc_mismatch_rejected(self):
        blob = bytearray(encode_record({"kind": "append", "seq": 1}))
        blob[-1] ^= 0xFF
        with pytest.raises(JournalError, match="CRC mismatch"):
            decode_record(bytes(blob))

    def test_implausible_length_rejected(self):
        blob = b"\xff\xff\xff\xff" + b"\x00" * 16
        with pytest.raises(JournalError, match="implausible record length"):
            decode_record(blob)

    def test_unkinded_record_rejected(self):
        payload = json.dumps([1, 2]).encode()
        import struct
        import zlib

        blob = struct.pack(">II", len(payload), zlib.crc32(payload)) + payload
        with pytest.raises(JournalError, match="not a kinded object"):
            decode_record(blob)

    @settings(max_examples=50, deadline=None)
    @given(
        seq=st.integers(min_value=1, max_value=2**31),
        rows=st.lists(
            st.tuples(
                st.sampled_from(["East", "South", "West", "North"]),
                st.sampled_from(["Spring", "Summer", "Fall", "Winter"]),
                st.floats(
                    min_value=-1e6, max_value=1e6, allow_nan=False, width=32
                ),
            ),
            min_size=1,
            max_size=8,
        ),
    )
    def test_append_record_round_trips(self, seq, rows):
        table = append_table([(r, s, float(d)) for r, s, d in rows])
        record = {"kind": "append", "seq": seq, "table": table_to_payload(table)}
        decoded, _ = decode_record(encode_record(record))
        assert decoded["seq"] == seq
        rebuilt = table_from_payload(decoded["table"])
        assert rebuilt.name == table.name
        assert [c.name for c in rebuilt.columns] == [c.name for c in table.columns]
        assert [c.ctype for c in rebuilt.columns] == [c.ctype for c in table.columns]
        assert [c.values for c in rebuilt.columns] == [c.values for c in table.columns]


class TestTableCodec:
    def test_round_trip_preserves_schema_order(self):
        table = append_table([("East", "Winter", 55.0)])
        rebuilt = table_from_payload(table_to_payload(table))
        assert [c.name for c in rebuilt.columns] == ["region", "season", "delay"]
        assert rebuilt.columns[2].ctype is ColumnType.NUMERIC

    def test_malformed_payload_rejected(self):
        with pytest.raises(JournalError, match="malformed table payload"):
            table_from_payload({"name": "t"})
        with pytest.raises(JournalError, match="malformed table payload"):
            table_from_payload({"name": "t", "columns": [{"name": "x"}]})


class TestJournalWriter:
    def test_missing_file_scans_empty(self, tmp_path):
        scan = read_journal(tmp_path / "absent.wal")
        assert scan.records == ()
        assert scan.good_offset == 0
        assert scan.next_seq == 1
        assert not scan.truncated

    def test_append_marks_and_scan(self, tmp_path):
        path = tmp_path / "journal.wal"
        writer = JournalWriter(path)
        batch = append_table([("East", "Winter", 55.0)])
        assert writer.log_append(batch) == 1
        assert writer.log_append(batch) == 2
        writer.mark_applied([1, 2], snapshot_version=1)
        assert writer.log_append(batch) == 3
        writer.mark_dropped([3])
        writer.close()

        scan = read_journal(path)
        assert [entry.kind for entry in scan.records] == [
            "append", "append", "applied", "append", "dropped",
        ]
        assert scan.next_seq == 4
        assert scan.applied_seqs() == frozenset({1, 2})
        assert scan.dropped_seqs() == frozenset({3})
        assert scan.good_offset == path.stat().st_size
        assert not scan.truncated

    def test_empty_marker_lists_not_written(self, tmp_path):
        writer = JournalWriter(tmp_path / "journal.wal")
        writer.mark_applied([], snapshot_version=1)
        writer.mark_dropped([])
        writer.close()
        assert read_journal(tmp_path / "journal.wal").records == ()

    def test_torn_tail_stops_scan_at_last_good_record(self, tmp_path):
        path = tmp_path / "journal.wal"
        writer = JournalWriter(path)
        batch = append_table([("East", "Winter", 55.0)])
        writer.log_append(batch)
        good = writer.offset
        writer.log_append(batch)
        writer.close()
        # Tear the second record mid-payload, as a crash mid-write would.
        with open(path, "r+b") as handle:
            handle.truncate(good + 10)

        scan = read_journal(path)
        assert len(scan.records) == 1
        assert scan.good_offset == good
        assert scan.truncated
        assert "truncated record payload" in scan.truncated_reason

    def test_corrupt_middle_record_sacrifices_rest(self, tmp_path):
        path = tmp_path / "journal.wal"
        writer = JournalWriter(path)
        batch = append_table([("East", "Winter", 55.0)])
        writer.log_append(batch)
        first_end = writer.offset
        writer.log_append(batch)
        writer.log_append(batch)
        writer.close()
        blob = bytearray(path.read_bytes())
        blob[first_end + 12] ^= 0xFF  # flip a byte inside record 2's payload
        path.write_bytes(bytes(blob))

        scan = read_journal(path)
        assert len(scan.records) == 1
        assert scan.good_offset == first_end
        assert "CRC mismatch" in scan.truncated_reason

    def test_writer_heals_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / "journal.wal"
        writer = JournalWriter(path)
        batch = append_table([("East", "Winter", 55.0)])
        writer.log_append(batch)
        writer.close()
        with open(path, "ab") as handle:
            handle.write(b"\x00\x01garbage")

        scan = read_journal(path)
        assert scan.truncated
        healed = JournalWriter(
            path, next_seq=scan.next_seq, truncate_at=scan.good_offset
        )
        assert healed.log_append(batch) == 2
        healed.close()

        rescanned = read_journal(path)
        assert not rescanned.truncated
        assert [entry.record["seq"] for entry in rescanned.records] == [1, 2]

    def test_closed_writer_rejects_writes(self, tmp_path):
        writer = JournalWriter(tmp_path / "journal.wal")
        writer.close()
        with pytest.raises(JournalError, match="closed"):
            writer.log_append(append_table([("East", "Winter", 1.0)]))


class TestJournalFailpoints:
    def test_journal_write_fault_persists_nothing(self, tmp_path):
        faults.FAILPOINTS.configure(["journal.write:times=1"])
        writer = JournalWriter(tmp_path / "journal.wal")
        batch = append_table([("East", "Winter", 55.0)])
        with pytest.raises(faults.InjectedFault):
            writer.log_append(batch)
        # Nothing was written and the seq was not consumed.
        assert writer.offset == 0
        assert writer.next_seq == 1
        assert writer.log_append(batch) == 1
        writer.close()
        assert len(read_journal(tmp_path / "journal.wal").records) == 1

    def test_journal_sync_fault_fires_after_record_is_durable(self, tmp_path):
        faults.FAILPOINTS.configure(["journal.sync:times=1"])
        writer = JournalWriter(tmp_path / "journal.wal")
        batch = append_table([("East", "Winter", 55.0)])
        with pytest.raises(faults.InjectedFault):
            writer.log_append(batch)
        writer.close()
        # The torn-ack crash: record durable, caller never acked.
        scan = read_journal(tmp_path / "journal.wal")
        assert [entry.record["seq"] for entry in scan.records] == [1]
