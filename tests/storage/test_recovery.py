"""Startup recovery parity and the runtime durability coordinator."""

from __future__ import annotations

import pytest

from repro.reliability import faults
from repro.storage.checkpoint import CheckpointManager
from repro.storage.durability import JournalWriter, read_journal
from repro.storage.recovery import (
    JOURNAL_NAME,
    DurabilityCoordinator,
    recover_state,
)
from repro.system.persistence import canonical_store_payload, store_from_payload
from repro.system.updates import IncrementalMaintainer

from tests.serving.conftest import append_table


def live_run(engine, data_dir, groups, dropped=()):
    """Simulate the scheduler's serialized jobs with a journal.

    Each entry in ``groups`` is a list of batches one maintenance job
    coalesced; the journal gets one ``append`` record per batch (the
    ack boundary) and one ``applied`` marker per job, exactly as
    :class:`MaintenanceScheduler` writes them.  ``dropped`` batches are
    journalled and then marked dropped (retries exhausted) without
    being maintained.  Returns the live store/table the uninterrupted
    process ended with.
    """
    writer = JournalWriter(data_dir / JOURNAL_NAME)
    store = engine.store.clone()
    maintainer = IncrementalMaintainer(
        engine.config,
        engine.table,
        summarizer=engine.summarizer,
        realizer=engine.realizer,
    )
    version = 0
    for group in groups:
        seqs, batch = [], None
        for rows in group:
            seqs.append(writer.log_append(rows))
            batch = rows if batch is None else batch.concat(rows)
        maintainer.maintain(batch, store)
        version += 1
        writer.mark_applied(seqs, snapshot_version=version)
    for rows in dropped:
        seq = writer.log_append(rows)
        writer.mark_dropped([seq])
    writer.close()
    return store, maintainer.table


def recover(engine, data_dir, **kwargs):
    return recover_state(
        data_dir,
        engine.config,
        base_store=engine.store,
        base_table=engine.table,
        summarizer=engine.summarizer,
        realizer=engine.realizer,
        **kwargs,
    )


BATCH_A = [("East", "Winter", 55.0), ("North", "Summer", 44.0)]
BATCH_B = [("East", "Winter", 5.0), ("West", "Fall", 30.0)]
BATCH_C = [("South", "Spring", 12.0)]


class TestRecoverState:
    def test_empty_data_dir_recovers_base(self, tmp_path, engine):
        recovered = recover(engine, tmp_path)
        assert recovered.replayed_seqs == ()
        assert recovered.next_seq == 1
        assert recovered.checkpoint is None
        assert canonical_store_payload(recovered.store) == canonical_store_payload(
            engine.store
        )
        # The base store was cloned, not adopted.
        assert recovered.store is not engine.store

    def test_journal_replay_matches_live_run(self, tmp_path, engine):
        live_store, live_table = live_run(
            engine,
            tmp_path,
            groups=[[append_table(BATCH_A)], [append_table(BATCH_B)]],
        )
        recovered = recover(engine, tmp_path)
        assert recovered.replayed_seqs == (1, 2)
        assert canonical_store_payload(recovered.store) == canonical_store_payload(
            live_store
        )
        assert recovered.table.num_rows == live_table.num_rows

    def test_replay_reproduces_job_grouping(self, tmp_path, engine):
        # One job coalesced two batches: replaying them as two passes
        # would diverge, so the applied marker's grouping must be used.
        live_store, _ = live_run(
            engine,
            tmp_path,
            groups=[[append_table(BATCH_A), append_table(BATCH_B)]],
        )
        recovered = recover(engine, tmp_path)
        assert recovered.replayed_seqs == (1, 2)
        assert canonical_store_payload(recovered.store) == canonical_store_payload(
            live_store
        )

    def test_unapplied_suffix_replayed_as_one_coalesced_pass(self, tmp_path, engine):
        writer = JournalWriter(tmp_path / JOURNAL_NAME)
        writer.log_append(append_table(BATCH_A))
        writer.log_append(append_table(BATCH_B))
        writer.close()
        # What a restarted scheduler would do with both batches pending:
        # one job over their concatenation.
        expected = engine.store.clone()
        maintainer = IncrementalMaintainer(
            engine.config,
            engine.table,
            summarizer=engine.summarizer,
            realizer=engine.realizer,
        )
        maintainer.maintain(
            append_table(BATCH_A).concat(append_table(BATCH_B)), expected
        )

        recovered = recover(engine, tmp_path)
        assert recovered.replayed_seqs == (1, 2)
        assert canonical_store_payload(recovered.store) == canonical_store_payload(
            expected
        )

    def test_dropped_seqs_never_replayed(self, tmp_path, engine):
        live_store, _ = live_run(
            engine,
            tmp_path,
            groups=[[append_table(BATCH_A)]],
            dropped=[append_table(BATCH_B)],
        )
        recovered = recover(engine, tmp_path)
        assert recovered.replayed_seqs == (1,)
        assert recovered.dropped_seqs == frozenset({2})
        assert canonical_store_payload(recovered.store) == canonical_store_payload(
            live_store
        )

    def test_checkpoint_skips_covered_prefix(self, tmp_path, engine):
        live_store, live_table = live_run(
            engine,
            tmp_path,
            groups=[[append_table(BATCH_A)], [append_table(BATCH_B)]],
        )
        # Checkpoint covering seq 1 only: recovery must replay seq 2.
        partial_store, partial_table = live_run(
            engine, tmp_path / "partial", groups=[[append_table(BATCH_A)]]
        )
        CheckpointManager(tmp_path).save(
            partial_store,
            partial_table,
            applied_seq=1,
            store_version=1,
            journal_offset=0,
        )
        recovered = recover(engine, tmp_path)
        assert recovered.checkpoint is not None
        assert recovered.replayed_seqs == (2,)
        assert canonical_store_payload(recovered.store) == canonical_store_payload(
            live_store
        )

    def test_verify_paths_agree(self, tmp_path, engine):
        live_store, live_table = live_run(
            engine,
            tmp_path,
            groups=[[append_table(BATCH_A)], [append_table(BATCH_B)]],
        )
        CheckpointManager(tmp_path).save(
            live_store,
            live_table,
            applied_seq=2,
            store_version=2,
            journal_offset=0,
        )
        via_checkpoint = recover(engine, tmp_path)
        via_journal = recover(engine, tmp_path, use_checkpoint=False)
        assert via_checkpoint.replayed_seqs == ()
        assert via_journal.replayed_seqs == (1, 2)
        assert canonical_store_payload(
            via_checkpoint.store
        ) == canonical_store_payload(via_journal.store)

    def test_torn_tail_recovers_good_prefix(self, tmp_path, engine):
        live_run(engine, tmp_path, groups=[[append_table(BATCH_A)]])
        partial, _ = live_run(
            engine, tmp_path / "oracle", groups=[[append_table(BATCH_A)]]
        )
        path = tmp_path / JOURNAL_NAME
        good = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00\x00\x10torn")

        recovered = recover(engine, tmp_path)
        assert recovered.scan.truncated
        assert recovered.journal_offset == good
        assert recovered.replayed_seqs == (1,)
        assert canonical_store_payload(recovered.store) == canonical_store_payload(
            partial
        )

    def test_recover_replay_failpoint_fires_per_record(self, tmp_path, engine):
        live_run(engine, tmp_path, groups=[[append_table(BATCH_A)]])
        faults.FAILPOINTS.configure(["recover.replay:times=1"])
        with pytest.raises(faults.InjectedFault):
            recover(engine, tmp_path)


class TestCanonicalPayloadParity:
    def test_round_trip_is_byte_identical(self, engine):
        payload = canonical_store_payload(engine.store)
        rebuilt, _ = store_from_payload(payload)
        assert canonical_store_payload(rebuilt) == payload

    def test_round_trip_matches_clone_answers(self, engine):
        rebuilt, _ = store_from_payload(canonical_store_payload(engine.store))
        clone = engine.store.clone()
        assert canonical_store_payload(rebuilt) == canonical_store_payload(clone)
        for stored in list(clone)[:5]:
            match = rebuilt.best_match(stored.query)
            assert match is not None and match.exact
            assert match.stored.text == stored.text


class TestDurabilityCoordinator:
    def make(self, tmp_path, **kwargs):
        return DurabilityCoordinator(tmp_path, **kwargs)

    def test_log_append_returns_monotonic_seqs(self, tmp_path):
        coordinator = self.make(tmp_path)
        assert coordinator.log_append(append_table(BATCH_A)) == 1
        assert coordinator.log_append(append_table(BATCH_B)) == 2
        coordinator.close()
        scan = read_journal(tmp_path / JOURNAL_NAME)
        assert scan.next_seq == 3

    def test_policy_checkpoint_after_n_swaps(self, tmp_path, engine):
        coordinator = self.make(tmp_path, checkpoint_every_swaps=2)
        for version in (1, 2):
            seq = coordinator.log_append(append_table(BATCH_A))
            coordinator.commit_applied(
                [seq], engine.store, engine.table, store_version=version
            )
        stats = coordinator.stats()
        assert stats["checkpoints_written"] == 1
        assert stats["last_checkpoint_seq"] == 2
        assert CheckpointManager(tmp_path).load_latest().applied_seq == 2
        coordinator.close()

    def test_policy_checkpoint_after_journal_bytes(self, tmp_path, engine):
        coordinator = self.make(
            tmp_path, checkpoint_every_swaps=1000, checkpoint_every_bytes=1
        )
        seq = coordinator.log_append(append_table(BATCH_A))
        coordinator.commit_applied([seq], engine.store, engine.table, store_version=1)
        assert coordinator.stats()["checkpoints_written"] == 1
        coordinator.close()

    def test_checkpoint_failure_is_isolated_and_surfaced(self, tmp_path, engine):
        coordinator = self.make(tmp_path, checkpoint_every_swaps=1)
        faults.FAILPOINTS.configure(["checkpoint.save:times=1"])
        seq = coordinator.log_append(append_table(BATCH_A))
        # Must not raise into the swap path.
        coordinator.commit_applied([seq], engine.store, engine.table, store_version=1)
        assert coordinator.checkpoint_failures == 1
        assert "InjectedFault" in coordinator.last_checkpoint_error
        # The journal still covers the batch.
        scan = read_journal(tmp_path / JOURNAL_NAME)
        assert scan.applied_seqs() == frozenset({1})
        # The next swap checkpoints cleanly and clears the error.
        seq = coordinator.log_append(append_table(BATCH_B))
        coordinator.commit_applied([seq], engine.store, engine.table, store_version=2)
        assert coordinator.last_checkpoint_error is None
        assert coordinator.stats()["checkpoints_written"] == 1
        coordinator.close()

    def test_mark_dropped_advances_watermark(self, tmp_path):
        coordinator = self.make(tmp_path)
        seq = coordinator.log_append(append_table(BATCH_A))
        coordinator.mark_dropped([seq])
        assert coordinator.stats()["applied_seq"] == seq
        coordinator.close()

    def test_resumes_past_torn_tail(self, tmp_path, engine):
        writer = JournalWriter(tmp_path / JOURNAL_NAME)
        writer.log_append(append_table(BATCH_A))
        writer.close()
        with open(tmp_path / JOURNAL_NAME, "ab") as handle:
            handle.write(b"torn-tail-garbage")
        recovered = recover(engine, tmp_path)
        coordinator = self.make(
            tmp_path,
            next_seq=recovered.next_seq,
            truncate_at=recovered.journal_offset,
        )
        assert coordinator.log_append(append_table(BATCH_B)) == 2
        coordinator.close()
        scan = read_journal(tmp_path / JOURNAL_NAME)
        assert not scan.truncated
        assert [entry.record["seq"] for entry in scan.records] == [1, 2]

    def test_rejects_invalid_policy(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every_swaps"):
            self.make(tmp_path, checkpoint_every_swaps=0)
        with pytest.raises(ValueError, match="checkpoint_every_bytes"):
            self.make(tmp_path, checkpoint_every_bytes=0)
