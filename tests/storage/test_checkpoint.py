"""Checkpoint atomicity, validation, and fallback-to-older behaviour."""

from __future__ import annotations

import json

import pytest

from repro.reliability import faults
from repro.storage.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointManager,
)
from repro.system.persistence import canonical_store_payload

from tests.serving.conftest import append_table


def save_checkpoint(manager, engine, applied_seq, journal_offset=0):
    return manager.save(
        engine.store,
        engine.table,
        applied_seq=applied_seq,
        store_version=applied_seq,
        journal_offset=journal_offset,
    )


class TestSaveAndLoad:
    def test_round_trip(self, tmp_path, engine):
        manager = CheckpointManager(tmp_path)
        path = save_checkpoint(manager, engine, applied_seq=7, journal_offset=123)
        assert path.name == "ckpt-000000000007"

        loaded = CheckpointManager(tmp_path).load_latest()
        assert loaded is not None
        assert loaded.applied_seq == 7
        assert loaded.journal_offset == 123
        assert canonical_store_payload(loaded.store) == canonical_store_payload(
            engine.store
        )
        assert loaded.table.num_rows == engine.table.num_rows

    def test_empty_directory_loads_none(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None

    def test_newest_valid_wins(self, tmp_path, engine):
        manager = CheckpointManager(tmp_path)
        save_checkpoint(manager, engine, applied_seq=1)
        save_checkpoint(manager, engine, applied_seq=2)
        assert manager.load_latest().applied_seq == 2

    def test_prune_keeps_newest(self, tmp_path, engine):
        manager = CheckpointManager(tmp_path, keep=2)
        for seq in (1, 2, 3):
            save_checkpoint(manager, engine, applied_seq=seq)
        names = [path.name for path in manager.list_checkpoints()]
        assert names == ["ckpt-000000000002", "ckpt-000000000003"]

    def test_same_watermark_resave_replaces(self, tmp_path, engine):
        manager = CheckpointManager(tmp_path)
        save_checkpoint(manager, engine, applied_seq=4, journal_offset=10)
        save_checkpoint(manager, engine, applied_seq=4, journal_offset=20)
        loaded = manager.load_latest()
        assert loaded.applied_seq == 4
        assert loaded.journal_offset == 20

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep must be >= 1"):
            CheckpointManager(tmp_path, keep=0)


class TestCorruptCheckpoints:
    def test_store_crc_mismatch_falls_back_to_older(self, tmp_path, engine):
        manager = CheckpointManager(tmp_path)
        save_checkpoint(manager, engine, applied_seq=1)
        newest = save_checkpoint(manager, engine, applied_seq=2)
        blob = bytearray((newest / "store.json").read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        (newest / "store.json").write_bytes(bytes(blob))

        loaded = manager.load_latest()
        assert loaded is not None
        assert loaded.applied_seq == 1

    def test_table_crc_mismatch_invalidates(self, tmp_path, engine):
        manager = CheckpointManager(tmp_path)
        newest = save_checkpoint(manager, engine, applied_seq=2)
        (newest / "table.json").write_bytes(b"{}")
        assert manager.load_latest() is None

    def test_format_version_skew_invalidates(self, tmp_path, engine):
        manager = CheckpointManager(tmp_path)
        newest = save_checkpoint(manager, engine, applied_seq=2)
        manifest = json.loads((newest / "manifest.json").read_text())
        assert manifest["format_version"] == CHECKPOINT_FORMAT_VERSION
        manifest["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        (newest / "manifest.json").write_text(json.dumps(manifest))
        assert manager.load_latest() is None

    def test_unreadable_manifest_invalidates(self, tmp_path, engine):
        manager = CheckpointManager(tmp_path)
        newest = save_checkpoint(manager, engine, applied_seq=2)
        (newest / "manifest.json").write_text("not json{")
        assert manager.load_latest() is None

    def test_missing_store_file_invalidates(self, tmp_path, engine):
        manager = CheckpointManager(tmp_path)
        newest = save_checkpoint(manager, engine, applied_seq=2)
        (newest / "store.json").unlink()
        assert manager.load_latest() is None

    def test_tmp_leftovers_ignored_and_swept(self, tmp_path, engine):
        manager = CheckpointManager(tmp_path)
        save_checkpoint(manager, engine, applied_seq=1)
        leftover = manager.directory / ".tmp-ckpt-000000000009"
        leftover.mkdir()
        (leftover / "store.json").write_text("half-written")

        assert manager.load_latest().applied_seq == 1
        save_checkpoint(manager, engine, applied_seq=2)
        assert not leftover.exists()


class TestCheckpointFailpoint:
    def test_save_fault_leaves_previous_checkpoint_authoritative(
        self, tmp_path, engine
    ):
        manager = CheckpointManager(tmp_path)
        save_checkpoint(manager, engine, applied_seq=1)
        faults.FAILPOINTS.configure(["checkpoint.save:times=1"])
        with pytest.raises(faults.InjectedFault):
            save_checkpoint(manager, engine, applied_seq=2)

        assert manager.load_latest().applied_seq == 1
        # The interrupted save left no tmp directory behind (raise mode
        # cleans up; kill mode leaves one that loading ignores anyway).
        assert [p.name for p in manager.list_checkpoints()] == ["ckpt-000000000001"]
        # The failpoint is exhausted; the next save succeeds.
        save_checkpoint(manager, engine, applied_seq=2)
        assert manager.load_latest().applied_seq == 2


class TestCompactCheckpoints:
    def test_compact_round_trip(self, tmp_path, engine):
        manager = CheckpointManager(tmp_path, compact=True)
        newest = save_checkpoint(manager, engine, applied_seq=5, journal_offset=9)
        assert (newest / "store.snap").exists()
        assert not (newest / "store.json").exists()
        manifest = json.loads((newest / "manifest.json").read_text())
        assert manifest["store_format"] == "compact"

        loaded = CheckpointManager(tmp_path).load_latest()
        assert loaded is not None
        assert loaded.applied_seq == 5
        assert canonical_store_payload(loaded.store) == canonical_store_payload(
            engine.store
        )
        # The thawed store must be mutable (journal replay builds on it).
        from repro.system.speech_store import SpeechStore

        assert isinstance(loaded.store, SpeechStore)

    def test_compact_corruption_falls_back_to_older(self, tmp_path, engine):
        manager = CheckpointManager(tmp_path, compact=True)
        save_checkpoint(manager, engine, applied_seq=1)
        newest = save_checkpoint(manager, engine, applied_seq=2)
        blob = bytearray((newest / "store.snap").read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        (newest / "store.snap").write_bytes(bytes(blob))
        assert manager.load_latest().applied_seq == 1

    def test_formats_can_be_mixed_across_saves(self, tmp_path, engine):
        CheckpointManager(tmp_path, compact=False).save(
            engine.store, engine.table, applied_seq=1, store_version=1, journal_offset=0
        )
        CheckpointManager(tmp_path, compact=True).save(
            engine.store, engine.table, applied_seq=2, store_version=2, journal_offset=0
        )
        # A json-configured manager still loads the compact newest.
        loaded = CheckpointManager(tmp_path, compact=False).load_latest()
        assert loaded.applied_seq == 2


class TestAppendTableHelper:
    def test_fixture_schema_matches_engine(self, engine):
        batch = append_table([("East", "Winter", 55.0)])
        assert [c.name for c in batch.columns] == [
            c.name for c in engine.table.columns
        ]
