"""Shared fixtures for the durability tests.

Mirrors the reliability package: every test runs against a clean
failpoint registry (the registry is process-global), and the engine
fixtures reuse the running-example serving helpers.
"""

from __future__ import annotations

import pytest

from repro.reliability import FAILPOINTS
from repro.system.engine import VoiceQueryEngine

from tests.serving.conftest import append_table, make_config, make_engine  # noqa: F401


@pytest.fixture(autouse=True)
def _clean_failpoints():
    """No chaos bleeds between tests (or out of this package)."""
    FAILPOINTS.clear()
    yield
    FAILPOINTS.clear()


@pytest.fixture()
def engine(example_table) -> VoiceQueryEngine:
    """A pre-processed engine over the running-example table."""
    return make_engine(example_table)
