"""Unit tests for the ML-baseline substitute model."""

import pytest

from repro.core.model import Fact, Scope
from repro.mlbaseline.corpus import SummarizationExample
from repro.mlbaseline.model import TemplateSeq2SeqModel
from repro.system.queries import DataQuery


def _example(sentences: int, facts=()) -> SummarizationExample:
    return SummarizationExample(
        query=DataQuery.create("delay", {"season": "Winter"}),
        input_text="The value is 5. It is 7 for region North.",
        output_text=" ".join(["It is 5."] * sentences),
        candidate_facts=tuple(facts),
    )


def _fact(assignments, value):
    return Fact(scope=Scope(assignments), value=value, support=1)


CANDIDATES = [
    _fact({}, 12.0),
    _fact({"region": "North"}, 15.0),
    _fact({"region": "East"}, 10.0),
    _fact({"region": "North", "season": "Winter"}, 15.0),
    _fact({"region": "East", "season": "Winter"}, 15.0),
]


class TestTraining:
    def test_fit_learns_sentence_count(self):
        model = TemplateSeq2SeqModel()
        report = model.fit([_example(2), _example(4)])
        assert report.examples == 2
        assert report.sentences_per_summary == 3.0
        assert model.is_trained

    def test_fit_requires_examples(self):
        with pytest.raises(ValueError):
            TemplateSeq2SeqModel().fit([])

    def test_generate_requires_training(self):
        with pytest.raises(RuntimeError):
            TemplateSeq2SeqModel().generate("The value is 5.")


class TestGeneration:
    def test_generate_for_example_prefers_narrow_scopes(self):
        model = TemplateSeq2SeqModel()
        model.fit([_example(3)])
        generated = model.generate_for_example(_example(3, CANDIDATES))
        assert len(generated.selected_facts) == 3
        # The narrow-scope bias picks two-dimension facts first.
        assert generated.mean_scope_arity > 1.0
        assert generated.text

    def test_redundant_dimension_count(self):
        model = TemplateSeq2SeqModel()
        model.fit([_example(3)])
        generated = model.generate_for_example(_example(3, CANDIDATES))
        # Two selected facts share the same dimension set -> redundancy.
        assert generated.redundant_dimension_count >= 1

    def test_generate_from_raw_text(self):
        model = TemplateSeq2SeqModel()
        model.fit([_example(2)])
        generated = model.generate("The value is 5. It is 7 for region North. It is 9.")
        assert "5" in generated.text
        assert generated.generation_seconds >= 0.0

    def test_generate_with_no_candidates(self):
        model = TemplateSeq2SeqModel()
        model.fit([_example(2)])
        generated = model.generate_for_example(_example(2, ()))
        assert generated.text == "No summary is available."
        assert generated.mean_scope_arity == 0.0

    def test_generate_from_text_without_numbers(self):
        model = TemplateSeq2SeqModel()
        model.fit([_example(2)])
        assert model.generate("no numbers here").text == "No summary is available."
