"""Unit tests for the ML-baseline corpus builder."""

import pytest

from repro.mlbaseline.corpus import build_corpus, facts_to_text, split_corpus
from repro.system.config import SummarizationConfig
from repro.system.preprocessor import Preprocessor
from repro.system.problem_generator import ProblemGenerator
from repro.system.templates import SpeechRealizer


@pytest.fixture()
def prepared(example_table):
    """Pre-processed store plus per-query candidate facts over the fixture."""
    config = SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=1,
        max_facts_per_speech=2,
        max_fact_dimensions=1,
        algorithm="G-B",
    )
    generator = ProblemGenerator(config, example_table)
    store, _ = Preprocessor(config).run(generator)
    candidates = {
        g.query.key(): list(g.problem.candidate_facts) for g in generator.generate()
    }
    return store, candidates


class TestFactsToText:
    def test_renders_every_fact(self, example_relation):
        facts = [
            example_relation.make_fact({"season": "Winter"}),
            example_relation.make_fact({}),
        ]
        text = facts_to_text("delay", facts, SpeechRealizer())
        assert "season Winter" in text
        assert "overall" in text


class TestBuildCorpus:
    def test_one_example_per_template_query(self, prepared):
        store, candidates = prepared
        corpus = build_corpus(store, dimension="season", target="delay",
                              candidate_facts_per_query=candidates)
        # One example per season value.
        assert len(corpus) == 4
        for example in corpus:
            assert example.query.length == 1
            assert example.query.predicates[0][0] == "season"
            assert example.input_text
            assert example.output_text
            assert example.candidate_facts

    def test_other_dimension_excluded(self, prepared):
        store, candidates = prepared
        corpus = build_corpus(store, dimension="region", target="delay",
                              candidate_facts_per_query=candidates)
        assert len(corpus) == 4
        assert all(example.query.predicates[0][0] == "region" for example in corpus)

    def test_input_text_capped(self, prepared):
        store, candidates = prepared
        corpus = build_corpus(store, dimension="season", target="delay",
                              candidate_facts_per_query=candidates, max_facts_in_input=1)
        realizer = SpeechRealizer()
        for example in corpus:
            # Only the first candidate fact appears in the capped input text.
            assert example.input_text == facts_to_text(
                "delay", example.candidate_facts[:1], realizer
            )

    def test_unknown_target_gives_empty_corpus(self, prepared):
        store, candidates = prepared
        assert build_corpus(store, dimension="season", target="price",
                            candidate_facts_per_query=candidates) == []


class TestSplitCorpus:
    def test_holds_out_last_examples(self, prepared):
        store, candidates = prepared
        corpus = build_corpus(store, dimension="season", target="delay",
                              candidate_facts_per_query=candidates)
        train, test = split_corpus(corpus, test_size=1)
        assert len(train) == 3
        assert len(test) == 1

    def test_small_corpus_keeps_everything_for_training(self, prepared):
        store, candidates = prepared
        corpus = build_corpus(store, dimension="season", target="delay",
                              candidate_facts_per_query=candidates)
        train, test = split_corpus(corpus, test_size=10)
        assert train == corpus
        assert test == []
