"""Unit tests for the ML-baseline evaluation."""

import pytest

from repro.mlbaseline.corpus import build_corpus, split_corpus
from repro.mlbaseline.evaluation import evaluate_against_reference
from repro.mlbaseline.model import TemplateSeq2SeqModel
from repro.system.config import SummarizationConfig
from repro.system.preprocessor import Preprocessor
from repro.system.problem_generator import ProblemGenerator
from repro.userstudy.worker import WorkerPool


@pytest.fixture()
def setup(example_table):
    config = SummarizationConfig.create(
        "flight_delays",
        dimensions=("region", "season"),
        targets=("delay",),
        max_query_length=1,
        max_facts_per_speech=3,
        max_fact_dimensions=1,
        algorithm="G-B",
    )
    generator = ProblemGenerator(config, example_table)
    store, _ = Preprocessor(config).run(generator)
    problems = {}
    candidates = {}
    for generated in generator.generate():
        problems[generated.query.key()] = generated.problem
        candidates[generated.query.key()] = list(generated.problem.candidate_facts)
    corpus = build_corpus(store, dimension="season", target="delay",
                          candidate_facts_per_query=candidates)
    return corpus, problems


class TestEvaluation:
    def test_comparison_structure(self, setup):
        corpus, problems = setup
        train, test = split_corpus(corpus, test_size=2)
        model = TemplateSeq2SeqModel()
        model.fit(train)
        result = evaluate_against_reference(
            model, test, problems, pool=WorkerPool(size=10, seed=1)
        )
        assert set(result.ml_ratings) == set(result.reference_ratings)
        assert len(result.ml_ratings) == 6
        assert 0.0 <= result.ml_mean_scaled_utility <= 1.0 + 1e-9
        assert 0.0 <= result.reference_mean_scaled_utility <= 1.0 + 1e-9
        assert result.generation_seconds_per_sample >= 0.0

    def test_reference_wins_flag_is_consistent_with_ratings(self, setup):
        """`reference_wins` mirrors the mean ratings.  (Whether the reference
        actually wins depends on the data; on the realistic flights dataset it
        does — see the ML-baseline experiment smoke test and benchmark.)"""
        corpus, problems = setup
        train, test = split_corpus(corpus, test_size=2)
        model = TemplateSeq2SeqModel()
        model.fit(train)
        result = evaluate_against_reference(
            model, test, problems, pool=WorkerPool(size=30, seed=2)
        )
        ml_mean = sum(result.ml_ratings.values()) / len(result.ml_ratings)
        ref_mean = sum(result.reference_ratings.values()) / len(result.reference_ratings)
        assert result.reference_wins == (ref_mean > ml_mean)
        assert result.ml_mean_scope_arity >= result.reference_mean_scope_arity

    def test_requires_test_examples(self, setup):
        _, problems = setup
        with pytest.raises(ValueError):
            evaluate_against_reference(TemplateSeq2SeqModel(), [], problems)
