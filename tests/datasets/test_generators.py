"""Unit tests for the synthetic dataset generators."""

import pytest

from repro.core.model import Scope
from repro.datasets.acs import AGE_GROUPS, BOROUGHS, generate_acs
from repro.datasets.flights import generate_flights
from repro.datasets.primaries import generate_primaries
from repro.datasets.stackoverflow import generate_stackoverflow


class TestAcs:
    def test_schema(self):
        dataset = generate_acs(num_rows=300, seed=1)
        assert dataset.num_rows == 300
        assert dataset.spec.dimensions == ("borough", "age_group", "sex")
        assert len(dataset.spec.targets) == 6
        assert set(dataset.table.column("borough").distinct_values()) <= set(BOROUGHS)
        assert set(dataset.table.column("age_group").distinct_values()) <= set(AGE_GROUPS)

    def test_age_effect_dominates(self):
        """The planted effect (Table II): elders have far higher visual
        impairment prevalence than teenagers."""
        dataset = generate_acs(num_rows=600, seed=2)
        relation = dataset.relation("visual_impairment")
        elders, _ = relation.average_target(Scope({"age_group": "Elders"}))
        teens, _ = relation.average_target(Scope({"age_group": "Teenagers"}))
        assert elders > 5 * teens

    def test_values_are_nonnegative(self):
        dataset = generate_acs(num_rows=200, seed=3)
        for target in dataset.spec.targets:
            assert min(dataset.table.column(target).values) >= 0.0

    def test_deterministic_given_seed(self):
        a = generate_acs(num_rows=100, seed=7)
        b = generate_acs(num_rows=100, seed=7)
        assert a.table == b.table

    def test_different_seeds_differ(self):
        a = generate_acs(num_rows=100, seed=7)
        b = generate_acs(num_rows=100, seed=8)
        assert a.table != b.table


class TestFlights:
    def test_schema(self):
        dataset = generate_flights(num_rows=500, seed=1)
        assert dataset.num_rows == 500
        assert len(dataset.spec.dimensions) == 6
        assert set(dataset.spec.targets) == {"cancellation", "delay_minutes"}

    def test_cancellation_is_binary(self):
        dataset = generate_flights(num_rows=400, seed=2)
        assert set(dataset.table.column("cancellation").values) <= {0.0, 1.0}

    def test_winter_has_more_cancellations_than_fall(self):
        from repro.core.model import Scope

        dataset = generate_flights(num_rows=3000, seed=3)
        relation = dataset.relation("cancellation")
        winter, _ = relation.average_target(Scope({"season": "Winter"}))
        fall, _ = relation.average_target(Scope({"season": "Fall"}))
        assert winter > fall

    def test_month_consistent_with_season(self):
        from repro.datasets.flights import MONTHS_BY_SEASON

        dataset = generate_flights(num_rows=300, seed=4)
        for row in dataset.table.iter_rows():
            assert row["month"] in MONTHS_BY_SEASON[row["season"]]

    def test_relation_selection(self):
        dataset = generate_flights(num_rows=200, seed=5)
        relation = dataset.relation("delay_minutes")
        assert relation.target == "delay_minutes"
        with pytest.raises(ValueError):
            dataset.relation("profit")


class TestStackOverflow:
    def test_schema(self):
        dataset = generate_stackoverflow(num_rows=500, seed=1)
        assert len(dataset.spec.dimensions) == 7
        assert len(dataset.spec.targets) == 6

    def test_ratings_within_scale(self):
        dataset = generate_stackoverflow(num_rows=400, seed=2)
        for target in ("competence", "optimism", "job_satisfaction"):
            values = dataset.table.column(target).values
            assert min(values) >= 1.0
            assert max(values) <= 10.0

    def test_experience_raises_competence(self):
        from repro.core.model import Scope

        dataset = generate_stackoverflow(num_rows=3000, seed=3)
        relation = dataset.relation("competence")
        senior, _ = relation.average_target(Scope({"experience": "20+ years"}))
        junior, _ = relation.average_target(Scope({"experience": "0-2 years"}))
        assert senior > junior

    def test_dimension_domains(self):
        dataset = generate_stackoverflow(num_rows=300, seed=4)
        domains = dataset.dimension_domains()
        assert set(domains) == set(dataset.spec.dimensions)
        assert all(domains.values())


class TestPrimaries:
    def test_schema(self):
        dataset = generate_primaries(num_rows=400, seed=1)
        assert len(dataset.spec.dimensions) == 5
        assert dataset.spec.targets == ("support_percentage",)

    def test_support_bounded(self):
        dataset = generate_primaries(num_rows=400, seed=2)
        values = dataset.table.column("support_percentage").values
        assert min(values) > 0.0
        assert max(values) <= 70.0

    def test_candidate_effect(self):
        from repro.core.model import Scope

        dataset = generate_primaries(num_rows=2000, seed=3)
        relation = dataset.relation()
        biden, _ = relation.average_target(Scope({"candidate": "Biden"}))
        klobuchar, _ = relation.average_target(Scope({"candidate": "Klobuchar"}))
        assert biden > klobuchar
