"""Unit tests for the dataset registry and Table I overview."""

import pytest

from repro.datasets.registry import available_datasets, dataset_overview, load_dataset


class TestRegistry:
    def test_available_datasets(self):
        assert available_datasets() == ["acs", "flights", "primaries", "stackoverflow"]

    def test_load_dataset_defaults(self):
        dataset = load_dataset("acs")
        assert dataset.num_rows == 900
        assert dataset.spec.key == "acs"

    def test_load_dataset_with_rows(self):
        dataset = load_dataset("primaries", num_rows=123)
        assert dataset.num_rows == 123

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("imdb")

    def test_relations_build_for_every_dataset_and_target(self):
        for key in available_datasets():
            dataset = load_dataset(key, num_rows=120)
            for target in dataset.spec.targets:
                relation = dataset.relation(target)
                assert relation.num_rows > 0
                assert relation.dimensions == dataset.spec.dimensions


class TestOverview:
    def test_table1_structure(self):
        overview = dataset_overview(num_rows={"acs": 50, "flights": 50,
                                              "stackoverflow": 50, "primaries": 50})
        assert len(overview) == 4
        by_name = {row["dataset"]: row for row in overview}
        assert by_name["ACS NY"]["paper_dims"] == 3
        assert by_name["Stack Overflow"]["paper_targets"] == 6
        assert by_name["Flights"]["paper_size"] == "565 MB"
        assert all(row["synthetic_rows"] == 50 for row in overview)

    def test_synthetic_dims_match_paper_dims(self):
        overview = dataset_overview(num_rows={"acs": 40, "flights": 40,
                                              "stackoverflow": 40, "primaries": 40})
        for row in overview:
            assert row["synthetic_dims"] == row["paper_dims"]
