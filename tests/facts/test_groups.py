"""Unit tests for repro.facts.groups."""

from repro.facts.groups import FactGroup, enumerate_fact_groups, specializations


class TestFactGroup:
    def test_dimensions_are_sorted_and_deduplicated(self):
        group = FactGroup(["season", "region", "season"])
        assert group.dimensions == ("region", "season")
        assert group.arity == 2

    def test_equality_and_hash(self):
        assert FactGroup(["a", "b"]) == FactGroup(["b", "a"])
        assert len({FactGroup(["a", "b"]), FactGroup(["b", "a"])}) == 1

    def test_specialization_relation(self):
        region = FactGroup(["region"])
        region_season = FactGroup(["region", "season"])
        assert region_season.is_specialization_of(region)
        assert not region.is_specialization_of(region_season)
        # Reflexive, and everything specializes the empty group.
        assert region.is_specialization_of(region)
        assert region.is_specialization_of(FactGroup([]))

    def test_ordering_is_deterministic(self):
        groups = sorted([FactGroup(["b"]), FactGroup(["a"]), FactGroup([])])
        assert [g.dimensions for g in groups] == [(), ("a",), ("b",)]


class TestEnumeration:
    def test_powerset_without_empty(self):
        groups = enumerate_fact_groups(["a", "b"])
        assert {g.dimensions for g in groups} == {("a",), ("b",), ("a", "b")}

    def test_powerset_with_empty(self):
        groups = enumerate_fact_groups(["a", "b"], include_empty=True)
        assert FactGroup([]) in groups
        assert len(groups) == 4

    def test_max_arity_limits_groups(self):
        groups = enumerate_fact_groups(["a", "b", "c"], max_arity=1)
        assert all(g.arity == 1 for g in groups)
        assert len(groups) == 3

    def test_max_arity_above_dimension_count(self):
        groups = enumerate_fact_groups(["a"], max_arity=5)
        assert {g.dimensions for g in groups} == {("a",)}

    def test_duplicate_dimensions_collapse(self):
        groups = enumerate_fact_groups(["a", "a"])
        assert {g.dimensions for g in groups} == {("a",)}


class TestSpecializations:
    def test_specializations_include_self(self):
        universe = enumerate_fact_groups(["a", "b", "c"], include_empty=True)
        result = specializations(FactGroup(["a"]), universe)
        assert FactGroup(["a"]) in result
        assert FactGroup(["a", "b"]) in result
        assert FactGroup(["a", "b", "c"]) in result
        assert FactGroup(["b"]) not in result
