"""Parity tests: vectorized fact enumeration vs. the per-row reference.

`FactGenerator(vectorized=True)` replaces per-row Python set membership
with bincount/segment operations on the relation's cached dimension
codes.  It is an execution strategy, not a model change: facts must
match the reference path exactly — same order, same scopes, bitwise
identical values — across NULL dimension values, min_support filters
and arbitrary base scopes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import SummarizationRelation
from repro.facts.generation import FactGenerator
from repro.relational.column import Column
from repro.relational.table import Table


def random_relation(rng: np.random.Generator) -> SummarizationRelation:
    num_rows = int(rng.integers(5, 120))
    dimensions = ["a", "b", "c"][: int(rng.integers(1, 4))]
    columns = []
    for dim in dimensions:
        values = [
            None if rng.random() < 0.08 else f"{dim}{int(v)}"
            for v in rng.integers(0, 5, size=num_rows)
        ]
        columns.append(Column.categorical(dim, values))
    columns.append(Column.numeric("t", rng.normal(0.0, 10.0, size=num_rows)))
    return SummarizationRelation(Table("rand", columns), dimensions, "t")


def assert_identical_facts(generated, reference):
    assert len(generated.facts) == len(reference.facts)
    for fact, expected in zip(generated.facts, reference.facts):
        assert fact.scope == expected.scope
        assert fact.support == expected.support
        assert fact.value == expected.value  # bitwise, not approx


class TestVectorizedParity:
    def test_example_relation_matches_reference(self, example_relation):
        generated = FactGenerator(example_relation, max_extra_dimensions=2).generate()
        reference = FactGenerator(
            example_relation, max_extra_dimensions=2, vectorized=False
        ).generate()
        assert_identical_facts(generated, reference)

    @pytest.mark.parametrize("seed", range(12))
    def test_randomized_relations_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        relation = random_relation(rng)
        min_support = int(rng.integers(1, 4))
        base = {}
        if rng.random() < 0.5:
            dim = relation.dimensions[0]
            domain = relation.dimension_domain(dim)
            if domain:
                base[dim] = domain[0]
        kwargs = {"max_extra_dimensions": 2, "min_support": min_support}
        generated = FactGenerator(relation, **kwargs).generate(base_scope=base)
        reference = FactGenerator(relation, vectorized=False, **kwargs).generate(
            base_scope=base
        )
        assert_identical_facts(generated, reference)

    def test_base_scope_value_absent_from_data(self, example_relation):
        for vectorized in (True, False):
            generated = FactGenerator(
                example_relation, vectorized=vectorized
            ).generate(base_scope={"region": "Atlantis"})
            assert generated.count == 0

    def test_min_support_filters_identically(self, example_relation):
        kwargs = {"max_extra_dimensions": 2, "min_support": 2}
        generated = FactGenerator(example_relation, **kwargs).generate()
        reference = FactGenerator(example_relation, vectorized=False, **kwargs).generate()
        assert_identical_facts(generated, reference)
        assert generated.count == 9
