"""Unit tests for repro.facts.bounds."""

import pytest

from repro.facts.bounds import bounds_for_groups, group_utility_bounds
from repro.facts.groups import FactGroup


class TestGroupBounds:
    def test_bound_structure(self, example_evaluator):
        bound = group_utility_bounds(example_evaluator, FactGroup(["region"]))
        assert bound.group == FactGroup(["region"])
        assert bound.scope_count == 4
        assert bound.maximum == pytest.approx(60.0)
        assert bound.per_scope[("North",)] == pytest.approx(60.0)

    def test_bounds_upper_bound_fact_gains(self, example_evaluator, example_facts):
        state = example_evaluator.initial_state()
        for group, facts in example_facts.by_group.items():
            bound = group_utility_bounds(example_evaluator, group, state)
            for fact in facts:
                gain = example_evaluator.incremental_gain(fact, state)
                assert gain <= bound.maximum + 1e-9

    def test_bounds_shrink_after_applying_facts(self, example_evaluator, example_relation):
        group = FactGroup(["season"])
        before = group_utility_bounds(example_evaluator, group)
        state = example_evaluator.initial_state()
        winter = example_relation.make_fact({"season": "Winter"})
        example_evaluator.apply_fact(winter, state)
        after = group_utility_bounds(example_evaluator, group, state)
        assert after.maximum <= before.maximum
        assert after.per_scope[("Winter",)] == pytest.approx(0.0)

    def test_bounds_for_groups(self, example_evaluator):
        groups = [FactGroup(["region"]), FactGroup(["season"])]
        bounds = bounds_for_groups(example_evaluator, groups)
        assert set(bounds) == set(groups)
        assert all(b.maximum > 0 for b in bounds.values())

    def test_empty_group_bound_is_total_deviation(self, example_evaluator):
        bound = group_utility_bounds(example_evaluator, FactGroup([]))
        assert bound.maximum == pytest.approx(example_evaluator.prior_deviation())
