"""Unit tests for repro.facts.generation."""

import pytest

from repro.core.model import Scope
from repro.facts.generation import FactGenerator
from repro.facts.groups import FactGroup


class TestGeneration:
    def test_counts_without_base_scope(self, example_relation):
        generated = FactGenerator(example_relation, max_extra_dimensions=2).generate()
        # 1 overall + 4 regions + 4 seasons + 16 combinations = 25 facts.
        assert generated.count == 25
        assert len(generated.by_group) == 4

    def test_groups_partition_facts(self, example_relation):
        generated = FactGenerator(example_relation, max_extra_dimensions=2).generate()
        assert sum(len(v) for v in generated.by_group.values()) == generated.count
        assert generated.by_group[FactGroup([])][0].scope == Scope()
        assert len(generated.by_group[FactGroup(["region"])]) == 4
        assert len(generated.by_group[FactGroup(["region", "season"])]) == 16

    def test_max_extra_dimensions_one(self, example_relation):
        generated = FactGenerator(example_relation, max_extra_dimensions=1).generate()
        assert generated.count == 9  # overall + 4 + 4

    def test_max_extra_dimensions_zero(self, example_relation):
        generated = FactGenerator(example_relation, max_extra_dimensions=0).generate()
        assert generated.count == 1

    def test_fact_values_are_scope_averages(self, example_relation):
        generated = FactGenerator(example_relation, max_extra_dimensions=2).generate()
        for fact in generated.facts:
            expected, support = example_relation.average_target(fact.scope)
            assert fact.value == pytest.approx(expected)
            assert fact.support == support
            assert fact.support >= 1

    def test_base_scope_restricts_candidates(self, example_relation):
        generated = FactGenerator(example_relation, max_extra_dimensions=1).generate(
            base_scope={"season": "Winter"}
        )
        # Facts: the Winter subset itself + one per region within Winter.
        assert generated.base_scope == Scope({"season": "Winter"})
        assert all(fact.scope.restricts("season") for fact in generated.facts)
        assert generated.count == 5
        # Values are averages over the Winter subset (all 15 in the fixture).
        assert all(fact.value == pytest.approx(15.0) for fact in generated.facts)

    def test_base_scope_accepts_scope_object(self, example_relation):
        generated = FactGenerator(example_relation, max_extra_dimensions=0).generate(
            base_scope=Scope({"region": "North"})
        )
        assert generated.count == 1
        assert generated.facts[0].support == 4

    def test_min_support_filters_facts(self, example_relation):
        generated = FactGenerator(
            example_relation, max_extra_dimensions=2, min_support=2
        ).generate()
        # Single (region, season) cells have support 1 and are filtered out.
        assert FactGroup(["region", "season"]) not in generated.by_group
        assert generated.count == 9

    def test_empty_base_scope_subset(self, example_relation):
        generated = FactGenerator(example_relation).generate(
            base_scope={"region": "Atlantis"}
        )
        assert generated.count == 0

    def test_invalid_parameters(self, example_relation):
        with pytest.raises(ValueError):
            FactGenerator(example_relation, max_extra_dimensions=-1)
        with pytest.raises(ValueError):
            FactGenerator(example_relation, min_support=0)

    def test_facts_in_groups_helper(self, example_relation):
        generated = FactGenerator(example_relation, max_extra_dimensions=2).generate()
        selected = generated.facts_in_groups([FactGroup(["region"]), FactGroup(["season"])])
        assert len(selected) == 8
        assert generated.groups()
