"""Unit and equivalence tests for the data-cube fact generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import Scope, SummarizationRelation
from repro.facts.cube import CubeFactGenerator, DataCube
from repro.facts.generation import FactGenerator
from repro.relational.column import Column
from repro.relational.table import Table


class TestDataCube:
    def test_cell_counts(self, example_relation):
        cube = DataCube(example_relation, max_arity=2)
        # 1 (empty) + 4 regions + 4 seasons + 16 combinations = 25 cells.
        assert cube.cell_count == 25
        assert cube.max_arity == 2

    def test_averages_match_relation(self, example_relation):
        cube = DataCube(example_relation, max_arity=2)
        for assignments in ({}, {"region": "North"}, {"season": "Winter", "region": "East"}):
            expected, support = example_relation.average_target(Scope(assignments))
            value, count = cube.average(assignments)
            assert value == pytest.approx(expected)
            assert count == support

    def test_unknown_combination(self, example_relation):
        cube = DataCube(example_relation, max_arity=1)
        assert cube.average({"region": "Atlantis"}) == (None, 0)
        # Combinations beyond the materialised arity are not served.
        assert cube.average({"region": "North", "season": "Winter"}) == (None, 0)

    def test_invalid_arity(self, example_relation):
        with pytest.raises(ValueError):
            DataCube(example_relation, max_arity=-1)


class TestCubeFactGenerator:
    def test_matches_fact_generator_without_base_scope(self, example_relation):
        direct = FactGenerator(example_relation, max_extra_dimensions=2).generate()
        from_cube = CubeFactGenerator(
            example_relation, max_extra_dimensions=2, max_base_dimensions=0
        ).generate()
        assert set(from_cube.facts) == set(direct.facts)
        assert set(from_cube.by_group) == set(direct.by_group)

    def test_matches_fact_generator_with_base_scope(self, example_relation):
        base = {"season": "Winter"}
        direct = FactGenerator(example_relation, max_extra_dimensions=1).generate(base)
        from_cube = CubeFactGenerator(
            example_relation, max_extra_dimensions=1, max_base_dimensions=1
        ).generate(base)
        assert set(from_cube.facts) == set(direct.facts)

    def test_min_support(self, example_relation):
        from_cube = CubeFactGenerator(
            example_relation, max_extra_dimensions=2, max_base_dimensions=0, min_support=2
        ).generate()
        assert all(fact.support >= 2 for fact in from_cube.facts)
        # The 16 single-row (region, season) cells are filtered out.
        assert from_cube.count == 9

    def test_cube_is_shared_across_queries(self, example_relation):
        generator = CubeFactGenerator(
            example_relation, max_extra_dimensions=1, max_base_dimensions=1
        )
        first = generator.generate({"region": "North"})
        second = generator.generate({"region": "East"})
        assert first.count == second.count == 5
        assert generator.cube.cell_count > 0

    def test_invalid_parameters(self, example_relation):
        with pytest.raises(ValueError):
            CubeFactGenerator(example_relation, max_extra_dimensions=-1)
        with pytest.raises(ValueError):
            CubeFactGenerator(example_relation, min_support=0)


_DIM1 = ["a", "b", "c"]
_DIM2 = ["x", "y"]


@st.composite
def random_relations(draw):
    num_rows = draw(st.integers(min_value=3, max_value=14))
    dim1 = draw(st.lists(st.sampled_from(_DIM1), min_size=num_rows, max_size=num_rows))
    dim2 = draw(st.lists(st.sampled_from(_DIM2), min_size=num_rows, max_size=num_rows))
    values = draw(
        st.lists(
            st.floats(min_value=0, max_value=50, allow_nan=False),
            min_size=num_rows,
            max_size=num_rows,
        )
    )
    table = Table(
        "random",
        [
            Column.categorical("d1", dim1),
            Column.categorical("d2", dim2),
            Column.numeric("v", values),
        ],
    )
    return SummarizationRelation(table, ["d1", "d2"], "v")


@settings(max_examples=40, deadline=None)
@given(relation=random_relations(), base_value=st.sampled_from(_DIM1 + [None]))
def test_cube_generator_equivalent_to_direct_generator(relation, base_value):
    """Property: cube-served facts equal the per-query generator's facts."""
    base = {} if base_value is None else {"d1": base_value}
    direct = FactGenerator(relation, max_extra_dimensions=2).generate(base)
    from_cube = CubeFactGenerator(
        relation, max_extra_dimensions=2, max_base_dimensions=1
    ).generate(base)
    assert set(from_cube.facts) == set(direct.facts)
