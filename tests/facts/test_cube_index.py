"""Tests for the single-pass data cube build and its per-combination index.

Covers the two perf-critical properties introduced with the cube rework:

* ``cells_for_columns`` is served from a per-column-combination index
  (its sizes must partition ``cell_count`` exactly), and
* the cube-backed fact generator produces the same facts as the
  per-query :class:`FactGenerator` on randomized relations.
"""

from __future__ import annotations

import pytest

from repro.core.model import Scope, SummarizationRelation
from repro.facts.cube import CubeFactGenerator, DataCube
from repro.facts.generation import FactGenerator
from repro.relational.column import ColumnType
from repro.relational.table import Table

from tests.core.test_kernel import random_relation


class TestCellIndex:
    def test_index_sizes_partition_cell_count(self, example_relation):
        cube = DataCube(example_relation, max_arity=2)
        sizes = cube.cell_index_sizes()
        assert sum(sizes.values()) == cube.cell_count
        # One combination per arity-bounded column subset: (), (region,),
        # (season,), (region, season).
        assert set(sizes) == {(), ("region",), ("season",), ("region", "season")}
        assert sizes[()] == 1
        assert sizes[("region",)] == 4
        assert sizes[("season",)] == 4
        assert sizes[("region", "season")] == 16

    def test_cells_for_columns_only_returns_requested_combination(self, example_relation):
        cube = DataCube(example_relation, max_arity=2)
        cells = list(cube.cells_for_columns(("region",)))
        assert len(cells) == 4
        values = {v for v, _ in cells}
        assert values == {("East",), ("South",), ("West",), ("North",)}

    def test_cells_for_columns_unsorted_input(self, example_relation):
        cube = DataCube(example_relation, max_arity=2)
        sorted_cells = dict(cube.cells_for_columns(("region", "season")))
        unsorted_cells = dict(cube.cells_for_columns(("season", "region")))
        assert sorted_cells == unsorted_cells

    def test_unknown_combination_is_empty(self, example_relation):
        cube = DataCube(example_relation, max_arity=1)
        assert list(cube.cells_for_columns(("region", "season"))) == []

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cell_aggregates_match_relation_averages(self, seed):
        relation = random_relation(seed)
        cube = DataCube(relation, max_arity=2)
        for columns in cube.cell_index_sizes():
            for values, cell in cube.cells_for_columns(columns):
                scope = Scope(dict(zip(columns, values)))
                expected_avg, expected_support = relation.average_target(scope)
                assert cell.count == expected_support
                assert cell.average == pytest.approx(expected_avg, rel=1e-12)

    def test_null_dimension_values_excluded(self):
        table = Table.from_rows(
            "with_nulls",
            ["dim", "target"],
            [ColumnType.CATEGORICAL, ColumnType.NUMERIC],
            [("x", 1.0), (None, 2.0), ("x", 3.0), ("y", 4.0)],
        )
        relation = SummarizationRelation(table, ["dim"], "target")
        cube = DataCube(relation, max_arity=1)
        cells = dict(cube.cells_for_columns(("dim",)))
        assert set(cells) == {("x",), ("y",)}
        assert cells[("x",)].count == 2
        assert cells[("x",)].average == pytest.approx(2.0)


def _fact_signature(fact):
    """Comparable form of a fact (values rounded to a stable precision)."""
    return (tuple(fact.scope), round(fact.value, 9), fact.support)


class TestCubeGeneratorParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_fact_generator_without_base_scope(self, seed):
        relation = random_relation(seed)
        per_query = FactGenerator(relation, max_extra_dimensions=2).generate()
        from_cube = CubeFactGenerator(
            relation, max_extra_dimensions=2, max_base_dimensions=0
        ).generate()
        assert {_fact_signature(f) for f in per_query.facts} == {
            _fact_signature(f) for f in from_cube.facts
        }
        assert set(per_query.by_group) == set(from_cube.by_group)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_fact_generator_with_base_scope(self, seed):
        """Cube facts for a query's base scope equal per-subset generation."""
        full = random_relation(seed)
        # Pick an actually-occurring base value for the first dimension.
        base_value = full.dimension_domain("alpha")[0]
        base = {"alpha": base_value}
        mask = full.scope_mask(Scope(base))
        subset = full.table.mask(list(mask))
        subset_relation = SummarizationRelation(
            subset, ["alpha", "beta", "gamma"], "target"
        )
        per_query = FactGenerator(subset_relation, max_extra_dimensions=2).generate(
            base_scope=base
        )
        from_cube = CubeFactGenerator(
            full, max_extra_dimensions=2, max_base_dimensions=1
        ).generate(base_scope=base)
        assert {_fact_signature(f) for f in per_query.facts} == {
            _fact_signature(f) for f in from_cube.facts
        }

    def test_base_scope_wider_than_materialised_raises(self):
        """A base scope beyond max_base_dimensions must fail loudly, not
        silently serve a truncated fact set."""
        relation = random_relation(0)
        generator = CubeFactGenerator(
            relation, max_extra_dimensions=1, max_base_dimensions=0
        )
        alpha = relation.dimension_domain("alpha")[0]
        beta = relation.dimension_domain("beta")[0]
        with pytest.raises(ValueError, match="does not materialise"):
            generator.generate(base_scope={"alpha": alpha, "beta": beta})

    @pytest.mark.parametrize("seed", [0, 1])
    def test_min_support_respected(self, seed):
        relation = random_relation(seed)
        from_cube = CubeFactGenerator(
            relation, max_extra_dimensions=2, max_base_dimensions=0, min_support=3
        ).generate()
        assert from_cube.facts, "expected some facts above the support threshold"
        assert all(f.support >= 3 for f in from_cube.facts)
