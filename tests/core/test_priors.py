"""Unit tests for repro.core.priors."""

import numpy as np

from repro.core.model import Scope
from repro.core.priors import ConstantPrior, GlobalAveragePrior, PerRowPrior, ZeroPrior


class TestZeroPrior:
    def test_values(self, example_relation):
        values = ZeroPrior().values(example_relation)
        assert values.shape == (16,)
        assert np.all(values == 0.0)

    def test_describe(self):
        assert "zero" in ZeroPrior().describe()


class TestConstantPrior:
    def test_values(self, example_relation):
        values = ConstantPrior(7.5).values(example_relation)
        assert np.all(values == 7.5)
        assert ConstantPrior(7.5).value == 7.5

    def test_describe_includes_value(self):
        assert "7.5" in ConstantPrior(7.5).describe()


class TestGlobalAveragePrior:
    def test_values_equal_target_mean(self, example_relation):
        expected = float(example_relation.target_values.mean())
        values = GlobalAveragePrior().values(example_relation)
        assert np.allclose(values, expected)


class TestPerRowPrior:
    def test_values_follow_function(self, example_relation):
        prior = PerRowPrior(lambda row: 20.0 if row["season"] == "Winter" else 0.0)
        values = prior.values(example_relation)
        winter_mask = example_relation.scope_mask(Scope({"season": "Winter"}))
        assert np.all(values[winter_mask] == 20.0)
        assert np.all(values[~winter_mask] == 0.0)

    def test_describe_is_custom(self):
        assert PerRowPrior(lambda row: 0.0, description="history").describe() == "history"
