"""Unit tests for SummarizationRelation (repro.core.model)."""

import numpy as np
import pytest

from repro.core.errors import InvalidFactError, InvalidProblemError
from repro.core.model import Scope, SummarizationRelation
from repro.relational.column import Column
from repro.relational.table import Table


class TestConstruction:
    def test_basic_properties(self, example_relation):
        assert example_relation.dimensions == ("region", "season")
        assert example_relation.target == "delay"
        assert example_relation.num_rows == 16

    def test_requires_dimensions(self, example_table):
        with pytest.raises(InvalidProblemError):
            SummarizationRelation(example_table, [], "delay")

    def test_unknown_dimension_rejected(self, example_table):
        with pytest.raises(InvalidProblemError):
            SummarizationRelation(example_table, ["missing"], "delay")

    def test_unknown_target_rejected(self, example_table):
        with pytest.raises(InvalidProblemError):
            SummarizationRelation(example_table, ["region"], "missing")

    def test_target_cannot_be_dimension(self, example_table):
        with pytest.raises(InvalidProblemError):
            SummarizationRelation(example_table, ["region", "delay"], "delay")

    def test_categorical_target_rejected(self, example_table):
        with pytest.raises(InvalidProblemError):
            SummarizationRelation(example_table, ["region"], "season")

    def test_empty_table_rejected(self):
        table = Table("t", [Column.categorical("d", []), Column.numeric("v", [])])
        with pytest.raises(InvalidProblemError):
            SummarizationRelation(table, ["d"], "v")

    def test_null_target_rows_are_dropped(self):
        table = Table(
            "t",
            [
                Column.categorical("d", ["a", "b", "c"]),
                Column.numeric("v", [1.0, None, 3.0]),
            ],
        )
        relation = SummarizationRelation(table, ["d"], "v")
        assert relation.num_rows == 2
        assert list(relation.target_values) == [1.0, 3.0]


class TestScopeMachinery:
    def test_scope_mask_and_indices(self, example_relation):
        mask = example_relation.scope_mask(Scope({"region": "North"}))
        assert mask.sum() == 4
        indices = example_relation.scope_row_indices(Scope({"season": "Winter"}))
        assert len(indices) == 4

    def test_empty_scope_covers_all_rows(self, example_relation):
        assert example_relation.scope_mask(Scope()).all()

    def test_unknown_scope_column_rejected(self, example_relation):
        with pytest.raises(InvalidFactError):
            example_relation.scope_mask(Scope({"airline": "AA"}))

    def test_average_target(self, example_relation):
        value, support = example_relation.average_target(Scope({"region": "North"}))
        assert value == pytest.approx(15.0)
        assert support == 4

    def test_average_target_empty_scope_value(self, example_relation):
        value, support = example_relation.average_target(Scope({"region": "Atlantis"}))
        assert value is None
        assert support == 0

    def test_make_fact(self, example_relation):
        fact = example_relation.make_fact({"season": "Winter"})
        assert fact.value == pytest.approx(15.0)
        assert fact.support == 4

    def test_make_fact_for_empty_scope_rejected(self, example_relation):
        with pytest.raises(InvalidFactError):
            example_relation.make_fact({"season": "Monsoon"})

    def test_dimension_domain(self, example_relation):
        assert set(example_relation.dimension_domain("season")) == {
            "Spring", "Summer", "Fall", "Winter",
        }
        with pytest.raises(InvalidProblemError):
            example_relation.dimension_domain("delay")

    def test_group_rows_by(self, example_relation):
        groups = example_relation.group_rows_by(["region"])
        assert len(groups) == 4
        assert all(len(indices) == 4 for indices in groups.values())
        # Empty column list: one group with all rows.
        all_rows = example_relation.group_rows_by([])
        assert list(all_rows) == [()]
        assert len(all_rows[()]) == 16

    def test_group_rows_by_unknown_column(self, example_relation):
        with pytest.raises(InvalidProblemError):
            example_relation.group_rows_by(["delay"])

    def test_target_values_is_float_array(self, example_relation):
        values = example_relation.target_values
        assert isinstance(values, np.ndarray)
        assert values.dtype == float
        assert values.shape == (16,)
