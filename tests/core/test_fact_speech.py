"""Unit tests for Fact and Speech (repro.core.model)."""

import pytest

from repro.core.errors import InvalidFactError
from repro.core.model import Fact, Scope, Speech


def fact(assignments, value, support=4) -> Fact:
    return Fact(scope=Scope(assignments), value=value, support=support)


class TestFact:
    def test_dimensions(self):
        assert fact({"region": "East", "season": "Winter"}, 1.0).dimensions == (
            "region",
            "season",
        )

    def test_covers_row(self):
        winter = fact({"season": "Winter"}, 15.0)
        assert winter.covers_row({"season": "Winter", "region": "East"})
        assert not winter.covers_row({"season": "Summer", "region": "East"})

    def test_negative_support_rejected(self):
        with pytest.raises(InvalidFactError):
            Fact(scope=Scope(), value=1.0, support=-1)

    def test_facts_are_hashable_and_comparable(self):
        a = fact({"season": "Winter"}, 15.0)
        b = fact({"season": "Winter"}, 15.0)
        assert a == b
        assert len({a, b}) == 1


class TestSpeech:
    def test_length_and_iteration(self):
        speech = Speech([fact({"season": "Winter"}, 15.0), fact({"region": "North"}, 15.0)])
        assert speech.length == 2
        assert len(list(speech)) == 2

    def test_duplicates_are_removed(self):
        duplicate = fact({"season": "Winter"}, 15.0)
        speech = Speech([duplicate, duplicate])
        assert speech.length == 1

    def test_order_does_not_matter_for_equality(self):
        f1, f2 = fact({"a": 1}, 1.0), fact({"b": 2}, 2.0)
        assert Speech([f1, f2]) == Speech([f2, f1])
        assert hash(Speech([f1, f2])) == hash(Speech([f2, f1]))

    def test_with_fact_returns_new_speech(self):
        original = Speech([fact({"a": 1}, 1.0)])
        extended = original.with_fact(fact({"b": 2}, 2.0))
        assert original.length == 1
        assert extended.length == 2

    def test_contains(self):
        member = fact({"a": 1}, 1.0)
        assert member in Speech([member])
        assert fact({"b": 2}, 2.0) not in Speech([member])

    def test_relevant_facts(self):
        winter = fact({"season": "Winter"}, 15.0)
        north = fact({"region": "North"}, 15.0)
        speech = Speech([winter, north])
        relevant = speech.relevant_facts({"season": "Winter", "region": "South"})
        assert relevant == [winter]

    def test_empty_speech(self):
        speech = Speech()
        assert speech.length == 0
        assert speech.relevant_facts({"a": 1}) == []
