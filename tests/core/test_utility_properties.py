"""Property-based tests for the utility model.

Theorem 1 of the paper states that speech utility is submodular (and it
is also monotone and non-negative under the closest-relevant-value
model).  These properties underpin both the greedy guarantee and the
exact algorithm's pruning, so they are verified here on randomly
generated relations and fact sets.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.model import Fact, Scope, SummarizationRelation
from repro.core.priors import ConstantPrior
from repro.core.utility import UtilityEvaluator
from repro.relational.column import Column
from repro.relational.table import Table

_DIM1 = ["a", "b", "c"]
_DIM2 = ["x", "y"]


@st.composite
def relation_and_facts(draw):
    """A random relation over two small dimensions plus random facts."""
    num_rows = draw(st.integers(min_value=2, max_value=14))
    dim1 = draw(st.lists(st.sampled_from(_DIM1), min_size=num_rows, max_size=num_rows))
    dim2 = draw(st.lists(st.sampled_from(_DIM2), min_size=num_rows, max_size=num_rows))
    values = draw(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=num_rows,
            max_size=num_rows,
        )
    )
    table = Table(
        "random",
        [
            Column.categorical("d1", dim1),
            Column.categorical("d2", dim2),
            Column.numeric("v", values),
        ],
    )
    relation = SummarizationRelation(table, ["d1", "d2"], "v")

    fact_count = draw(st.integers(min_value=1, max_value=6))
    facts = []
    for _ in range(fact_count):
        assignments = {}
        if draw(st.booleans()):
            assignments["d1"] = draw(st.sampled_from(_DIM1))
        if draw(st.booleans()):
            assignments["d2"] = draw(st.sampled_from(_DIM2))
        value = draw(st.floats(min_value=-50, max_value=50, allow_nan=False))
        facts.append(Fact(scope=Scope(assignments), value=value, support=1))
    prior_value = draw(st.floats(min_value=-50, max_value=50, allow_nan=False))
    return relation, facts, prior_value


@settings(max_examples=80, deadline=None)
@given(data=relation_and_facts())
def test_utility_is_nonnegative_and_bounded(data):
    relation, facts, prior_value = data
    evaluator = UtilityEvaluator(relation, prior=ConstantPrior(prior_value))
    utility = evaluator.utility(facts)
    assert utility >= -1e-9
    assert utility <= evaluator.prior_deviation() + 1e-9


@settings(max_examples=80, deadline=None)
@given(data=relation_and_facts())
def test_utility_is_monotone(data):
    relation, facts, prior_value = data
    evaluator = UtilityEvaluator(relation, prior=ConstantPrior(prior_value))
    for cut in range(len(facts)):
        smaller = facts[:cut]
        larger = facts[: cut + 1]
        assert evaluator.utility(larger) >= evaluator.utility(smaller) - 1e-9


@settings(max_examples=80, deadline=None)
@given(data=relation_and_facts())
def test_utility_is_submodular(data):
    """Adding a fact helps a subset at least as much as a superset (Theorem 1)."""
    relation, facts, prior_value = data
    if len(facts) < 2:
        return
    evaluator = UtilityEvaluator(relation, prior=ConstantPrior(prior_value))
    new_fact = facts[-1]
    rest = facts[:-1]
    for cut in range(len(rest) + 1):
        smaller = rest[:cut]
        larger = rest
        gain_small = evaluator.utility(list(smaller) + [new_fact]) - evaluator.utility(smaller)
        gain_large = evaluator.utility(list(larger) + [new_fact]) - evaluator.utility(larger)
        assert gain_small >= gain_large - 1e-6


@settings(max_examples=80, deadline=None)
@given(data=relation_and_facts())
def test_incremental_gains_match_full_recomputation(data):
    relation, facts, prior_value = data
    evaluator = UtilityEvaluator(relation, prior=ConstantPrior(prior_value))
    state = evaluator.initial_state()
    applied = []
    for fact in facts:
        predicted_gain = evaluator.incremental_gain(fact, state)
        realised_gain = evaluator.apply_fact(fact, state)
        assert abs(predicted_gain - realised_gain) < 1e-6
        applied.append(fact)
        assert abs(state.total_error - evaluator.deviation(applied)) < 1e-6


@settings(max_examples=80, deadline=None)
@given(data=relation_and_facts())
def test_single_fact_utility_upper_bounds_incremental_gain(data):
    """Lemma 2: single-fact utility bounds the gain of adding the fact later."""
    relation, facts, prior_value = data
    evaluator = UtilityEvaluator(relation, prior=ConstantPrior(prior_value))
    state = evaluator.initial_state()
    for fact in facts[:-1]:
        evaluator.apply_fact(fact, state)
    last = facts[-1]
    single = evaluator.single_fact_utility(last)
    later_gain = evaluator.incremental_gain(last, state)
    assert later_gain <= single + 1e-6
