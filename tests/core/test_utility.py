"""Unit tests for the utility evaluator (repro.core.utility).

The expected numbers are derived from the conftest fixture data:
16 rows, delays of 15 (7 rows: the North column and the Winter row),
20 (1 row: South/Summer) and 10 (8 remaining rows).  With the zero
prior, the prior deviation is 7*15 + 1*20 + 8*10 = 205.
"""

import numpy as np
import pytest

from repro.core.expectation import AverageOfScopeFactsModel
from repro.core.model import Fact, Scope, Speech
from repro.core.priors import ConstantPrior, ZeroPrior
from repro.core.utility import UtilityEvaluator


def _fact(assignments, value, support=4):
    return Fact(scope=Scope(assignments), value=value, support=support)


WINTER = _fact({"season": "Winter"}, 15.0)
NORTH = _fact({"region": "North"}, 15.0)
SOUTH_SUMMER = _fact({"region": "South", "season": "Summer"}, 20.0, support=1)


class TestDeviationAndUtility:
    def test_prior_deviation(self, example_evaluator):
        assert example_evaluator.prior_deviation() == pytest.approx(205.0)

    def test_single_fact_deviation(self, example_evaluator):
        # The Winter fact zeroes the deviation of its 4 rows (all 15s).
        assert example_evaluator.deviation([WINTER]) == pytest.approx(205.0 - 60.0)
        assert example_evaluator.utility([WINTER]) == pytest.approx(60.0)

    def test_two_fact_utility(self, example_evaluator):
        # Winter and North together zero all seven 15-rows.
        assert example_evaluator.utility([WINTER, NORTH]) == pytest.approx(105.0)

    def test_speech_input_accepted(self, example_evaluator):
        speech = Speech([WINTER, NORTH])
        assert example_evaluator.utility(speech) == pytest.approx(105.0)

    def test_scaled_utility(self, example_evaluator):
        assert example_evaluator.scaled_utility([WINTER]) == pytest.approx(60.0 / 205.0)

    def test_scaled_utility_with_zero_prior_deviation(self):
        # A prior that matches the data exactly leaves nothing to improve;
        # the convention is a scaled utility of 1.0.
        from repro.relational.column import Column
        from repro.relational.table import Table
        from repro.core.model import SummarizationRelation

        table = Table(
            "const",
            [Column.categorical("d", ["a", "b"]), Column.numeric("v", [5.0, 5.0])],
        )
        relation = SummarizationRelation(table, ["d"], "v")
        exact_prior = UtilityEvaluator(relation, prior=ConstantPrior(5.0))
        assert exact_prior.prior_deviation() == 0.0
        assert exact_prior.scaled_utility([]) == 1.0

    def test_utility_of_empty_fact_set_is_zero(self, example_evaluator):
        assert example_evaluator.utility([]) == pytest.approx(0.0)

    def test_expectations_shape(self, example_evaluator, example_relation):
        expected = example_evaluator.expectations([WINTER])
        assert expected.shape == (example_relation.num_rows,)

    def test_alternative_expectation_model(self, example_relation):
        evaluator = UtilityEvaluator(
            example_relation,
            prior=ZeroPrior(),
            expectation_model=AverageOfScopeFactsModel(),
        )
        # Under the averaging model the overlap row expects (15+15)/2 = 15 too,
        # so utility of the two facts is identical here; the model is simply
        # exercised end to end.
        assert evaluator.utility([WINTER, NORTH]) == pytest.approx(105.0)


class TestSingleFactUtility:
    def test_matches_full_evaluation(self, example_evaluator):
        for fact in (WINTER, NORTH, SOUTH_SUMMER):
            assert example_evaluator.single_fact_utility(fact) == pytest.approx(
                example_evaluator.utility([fact])
            )

    def test_vectorised_helper(self, example_evaluator):
        utilities = example_evaluator.single_fact_utilities([WINTER, NORTH])
        assert list(utilities) == [
            pytest.approx(60.0),
            pytest.approx(60.0),
        ]

    def test_empty_scope_fact(self, example_evaluator):
        ghost = _fact({"region": "Atlantis"}, 5.0, support=0)
        assert example_evaluator.single_fact_utility(ghost) == 0.0


class TestIncrementalState:
    def test_initial_state_matches_prior(self, example_evaluator):
        state = example_evaluator.initial_state()
        assert state.total_error == pytest.approx(205.0)
        assert np.all(state.expected == 0.0)

    def test_incremental_gain_matches_single_fact_utility(self, example_evaluator):
        state = example_evaluator.initial_state()
        assert example_evaluator.incremental_gain(WINTER, state) == pytest.approx(60.0)

    def test_apply_fact_updates_state(self, example_evaluator):
        state = example_evaluator.initial_state()
        gain = example_evaluator.apply_fact(WINTER, state)
        assert gain == pytest.approx(60.0)
        assert state.total_error == pytest.approx(145.0)
        # Re-applying the same fact yields no further gain.
        assert example_evaluator.apply_fact(WINTER, state) == pytest.approx(0.0)

    def test_gain_shrinks_after_overlapping_fact(self, example_evaluator):
        state = example_evaluator.initial_state()
        example_evaluator.apply_fact(WINTER, state)
        # North overlaps Winter in one row; its gain drops from 60 to 45.
        assert example_evaluator.incremental_gain(NORTH, state) == pytest.approx(45.0)

    def test_state_copy_is_independent(self, example_evaluator):
        state = example_evaluator.initial_state()
        clone = state.copy()
        example_evaluator.apply_fact(WINTER, state)
        assert clone.total_error == pytest.approx(205.0)

    def test_incremental_matches_full_recomputation(self, example_evaluator):
        state = example_evaluator.initial_state()
        applied = []
        for fact in (NORTH, SOUTH_SUMMER, WINTER):
            example_evaluator.apply_fact(fact, state)
            applied.append(fact)
            assert state.total_error == pytest.approx(example_evaluator.deviation(applied))


class TestGroupBounds:
    def test_bounds_cover_every_group_value(self, example_evaluator):
        bounds = example_evaluator.group_deviation_bounds(["region"])
        assert len(bounds) == 4
        # The North column contributes 4 rows at 15 -> bound 60.
        assert bounds[("North",)] == pytest.approx(60.0)

    def test_bound_upper_bounds_single_fact_utility(self, example_evaluator, example_facts):
        state = example_evaluator.initial_state()
        for fact in example_facts.facts:
            group_columns = list(fact.scope.columns)
            bounds = example_evaluator.group_deviation_bounds(group_columns, state)
            key = tuple(fact.scope.value(c) for c in sorted(fact.scope.columns))
            # Keys follow the order passed to group_rows_by (sorted scope columns).
            assert example_evaluator.incremental_gain(fact, state) <= bounds[key] + 1e-9

    def test_max_group_bound(self, example_evaluator):
        # Per-region deviation sums: East 45, South 55, West 45, North 60.
        assert example_evaluator.max_group_bound(["region"]) == pytest.approx(60.0)

    def test_empty_group_is_whole_relation(self, example_evaluator):
        bounds = example_evaluator.group_deviation_bounds([])
        assert bounds[()] == pytest.approx(205.0)


class TestValidation:
    def test_mismatched_prior_length_rejected(self, example_relation):
        class BrokenPrior(ZeroPrior):
            def values(self, relation):
                return np.zeros(3)

        with pytest.raises(ValueError):
            UtilityEvaluator(example_relation, prior=BrokenPrior())
