"""Unit tests for SummarizationProblem (repro.core.problem)."""

import pytest

from repro.core.errors import InvalidProblemError
from repro.core.expectation import AverageOfAllFactsModel, ClosestRelevantFactModel
from repro.core.priors import GlobalAveragePrior, ZeroPrior
from repro.core.problem import SummarizationProblem


class TestConstruction:
    def test_defaults(self, example_relation, example_facts):
        problem = SummarizationProblem(
            relation=example_relation,
            candidate_facts=example_facts.facts,
            max_facts=3,
        )
        assert isinstance(problem.prior, GlobalAveragePrior)
        assert isinstance(problem.expectation_model, ClosestRelevantFactModel)
        assert problem.num_candidates == len(example_facts.facts)
        assert problem.num_rows == 16
        assert problem.label == ""

    def test_invalid_max_facts(self, example_relation, example_facts):
        with pytest.raises(InvalidProblemError):
            SummarizationProblem(example_relation, example_facts.facts, max_facts=0)

    def test_requires_candidates(self, example_relation):
        with pytest.raises(InvalidProblemError):
            SummarizationProblem(example_relation, [], max_facts=2)


class TestEvaluatorFactory:
    def test_evaluator_uses_configured_prior_and_model(self, example_relation, example_facts):
        problem = SummarizationProblem(
            relation=example_relation,
            candidate_facts=example_facts.facts,
            max_facts=2,
            prior=ZeroPrior(),
            expectation_model=AverageOfAllFactsModel(),
        )
        evaluator = problem.evaluator()
        assert evaluator.prior is problem.prior
        assert evaluator.expectation_model is problem.expectation_model
        assert evaluator.prior_deviation() == pytest.approx(205.0)

    def test_fresh_evaluator_per_call(self, example_problem):
        assert example_problem.evaluator() is not example_problem.evaluator()
