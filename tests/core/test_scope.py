"""Unit tests for repro.core.model.Scope."""

import pytest

from repro.core.model import Scope


class TestScopeBasics:
    def test_empty_scope(self):
        scope = Scope()
        assert len(scope) == 0
        assert not scope
        assert scope.columns == ()
        assert scope.assignments == {}

    def test_assignments_are_sorted_by_column(self):
        scope = Scope({"season": "Winter", "region": "East"})
        assert scope.columns == ("region", "season")
        assert list(scope) == [("region", "East"), ("season", "Winter")]

    def test_value_and_restricts(self):
        scope = Scope({"region": "East"})
        assert scope.value("region") == "East"
        assert scope.restricts("region")
        assert not scope.restricts("season")
        with pytest.raises(KeyError):
            scope.value("season")

    def test_equality_and_hash(self):
        a = Scope({"region": "East", "season": "Winter"})
        b = Scope({"season": "Winter", "region": "East"})
        assert a == b
        assert hash(a) == hash(b)
        assert a != Scope({"region": "East"})

    def test_usable_as_dict_key(self):
        mapping = {Scope({"a": 1}): "x"}
        assert mapping[Scope({"a": 1})] == "x"

    def test_repr_mentions_assignments(self):
        assert "region" in repr(Scope({"region": "East"}))
        assert "all rows" in repr(Scope())


class TestScopeRelations:
    def test_is_subscope_of(self):
        general = Scope({"region": "East"})
        specific = Scope({"region": "East", "season": "Winter"})
        assert general.is_subscope_of(specific)
        assert not specific.is_subscope_of(general)
        assert Scope().is_subscope_of(general)

    def test_is_subscope_requires_equal_values(self):
        assert not Scope({"region": "East"}).is_subscope_of(Scope({"region": "West"}))

    def test_contains_row(self):
        scope = Scope({"region": "East", "season": "Winter"})
        assert scope.contains_row({"region": "East", "season": "Winter", "delay": 5})
        assert not scope.contains_row({"region": "East", "season": "Summer"})
        assert Scope().contains_row({"anything": 1})

    def test_merged_with_compatible(self):
        merged = Scope({"region": "East"}).merged_with(Scope({"season": "Winter"}))
        assert merged == Scope({"region": "East", "season": "Winter"})

    def test_merged_with_conflict_returns_none(self):
        assert Scope({"region": "East"}).merged_with(Scope({"region": "West"})) is None

    def test_merged_with_same_value_is_fine(self):
        merged = Scope({"region": "East"}).merged_with(Scope({"region": "East"}))
        assert merged == Scope({"region": "East"})
