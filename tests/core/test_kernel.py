"""Parity tests for the vectorized optimizer kernel.

The batch kernel must agree with the per-fact reference path
(:meth:`UtilityEvaluator.incremental_gain`) for every candidate and
every greedy state — the kernel is an execution strategy, not a model
change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import SummarizationRelation
from repro.core.problem import SummarizationProblem
from repro.core.utility import UtilityEvaluator
from repro.facts.generation import FactGenerator
from repro.relational.column import ColumnType
from repro.relational.table import Table


def random_relation(seed: int, num_rows: int = 120) -> SummarizationRelation:
    """A random relation with three categorical dimensions."""
    rng = np.random.default_rng(seed)
    rows = [
        (
            f"a{rng.integers(0, 4)}",
            f"b{rng.integers(0, 3)}",
            f"c{rng.integers(0, 5)}",
            float(rng.normal(50.0, 15.0)),
        )
        for _ in range(num_rows)
    ]
    table = Table.from_rows(
        f"random_{seed}",
        ["alpha", "beta", "gamma", "target"],
        [
            ColumnType.CATEGORICAL,
            ColumnType.CATEGORICAL,
            ColumnType.CATEGORICAL,
            ColumnType.NUMERIC,
        ],
        rows,
    )
    return SummarizationRelation(table, ["alpha", "beta", "gamma"], "target")


def random_problem(seed: int, max_facts: int = 3) -> SummarizationProblem:
    relation = random_relation(seed)
    facts = FactGenerator(relation, max_extra_dimensions=2).generate().facts
    return SummarizationProblem(
        relation=relation, candidate_facts=facts, max_facts=max_facts
    )


class TestFactScopeIndexStructure:
    def test_csr_rows_match_scope_indices(self, example_evaluator, example_facts):
        index = example_evaluator.fact_scope_index(example_facts.facts)
        for fact_id, fact in enumerate(example_facts.facts):
            expected = example_evaluator.scope_indices(fact.scope)
            np.testing.assert_array_equal(index.rows_of(fact_id), expected)

    def test_supports_match_fact_supports(self, example_evaluator, example_facts):
        index = example_evaluator.fact_scope_index(example_facts.facts)
        for fact_id, fact in enumerate(example_facts.facts):
            assert index.supports[fact_id] == fact.support

    def test_fact_errors_precomputed(self, example_evaluator, example_facts):
        index = example_evaluator.fact_scope_index(example_facts.facts)
        truth = example_evaluator.relation.target_values
        for fact_id, fact in enumerate(example_facts.facts):
            expected = np.abs(fact.value - truth[index.rows_of(fact_id)])
            np.testing.assert_allclose(index.errors_of(fact_id), expected)

    def test_total_scope_rows(self, example_evaluator, example_facts):
        index = example_evaluator.fact_scope_index(example_facts.facts)
        assert index.total_scope_rows == sum(f.support for f in example_facts.facts)


class TestBatchGainParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_batch_equals_per_fact_on_prior_state(self, seed):
        problem = random_problem(seed)
        evaluator = problem.evaluator()
        index = evaluator.fact_scope_index(problem.candidate_facts)
        state = evaluator.initial_state()
        batch = evaluator.batch_incremental_gains(index, state)
        per_fact = [evaluator.incremental_gain(f, state) for f in problem.candidate_facts]
        np.testing.assert_allclose(batch, per_fact, rtol=1e-12, atol=1e-9)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_equals_per_fact_along_greedy_path(self, seed):
        """Parity must hold at every intermediate greedy state, not just the prior."""
        problem = random_problem(seed, max_facts=4)
        evaluator = problem.evaluator()
        facts = list(problem.candidate_facts)
        index = evaluator.fact_scope_index(facts)
        state = evaluator.initial_state()
        for _ in range(problem.max_facts):
            batch = evaluator.batch_incremental_gains(index, state)
            per_fact = [evaluator.incremental_gain(f, state) for f in facts]
            np.testing.assert_allclose(batch, per_fact, rtol=1e-12, atol=1e-9)
            best = int(np.argmax(batch))
            index.apply_fact(best, state)

    def test_single_fact_utilities_parity(self, example_evaluator, example_facts):
        index = example_evaluator.fact_scope_index(example_facts.facts)
        batch = example_evaluator.batch_single_fact_utilities(index)
        per_fact = example_evaluator.single_fact_utilities(list(example_facts.facts))
        np.testing.assert_allclose(batch, per_fact, rtol=1e-12, atol=1e-9)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_subset_gains_match_batch(self, seed):
        problem = random_problem(seed)
        evaluator = problem.evaluator()
        index = evaluator.fact_scope_index(problem.candidate_facts)
        state = evaluator.initial_state()
        full = evaluator.batch_incremental_gains(index, state)
        rng = np.random.default_rng(seed)
        mask = rng.random(index.num_facts) < 0.5
        subset = index.subset_gains(mask, state.error)
        np.testing.assert_allclose(subset[mask], full[mask], rtol=1e-12, atol=1e-9)
        assert np.all(subset[~mask] == 0.0)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_sampled_gains_match_per_fact_estimates(self, seed):
        problem = random_problem(seed)
        evaluator = problem.evaluator()
        index = evaluator.fact_scope_index(problem.candidate_facts)
        state = evaluator.initial_state()
        rng = np.random.default_rng(seed)
        sampled = rng.choice(problem.num_rows, size=problem.num_rows // 2, replace=True)
        row_mask = np.zeros(problem.num_rows, dtype=bool)
        row_mask[sampled] = True
        gains, counts = index.sampled_gains(state.error, row_mask)
        truth = evaluator.relation.target_values
        for fact_id, fact in enumerate(problem.candidate_facts):
            rows = index.rows_of(fact_id)
            in_sample = rows[row_mask[rows]]
            assert counts[fact_id] == in_sample.size
            fact_err = np.abs(fact.value - truth[in_sample])
            expected = float(np.maximum(state.error[in_sample] - fact_err, 0.0).sum())
            assert gains[fact_id] == pytest.approx(expected, rel=1e-12, abs=1e-9)


class TestApplyFactParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_kernel_apply_matches_evaluator_apply(self, seed):
        problem = random_problem(seed)
        evaluator = problem.evaluator()
        facts = list(problem.candidate_facts)
        index = evaluator.fact_scope_index(facts)
        state_kernel = evaluator.initial_state()
        state_reference = evaluator.initial_state()
        rng = np.random.default_rng(seed)
        for fact_id in rng.choice(len(facts), size=min(5, len(facts)), replace=False):
            gain_kernel = index.apply_fact(int(fact_id), state_kernel)
            gain_reference = evaluator.apply_fact(facts[int(fact_id)], state_reference)
            assert gain_kernel == pytest.approx(gain_reference, rel=1e-12, abs=1e-9)
            np.testing.assert_array_equal(state_kernel.expected, state_reference.expected)
            np.testing.assert_array_equal(state_kernel.error, state_reference.error)

    def test_empty_scope_fact_is_zero_gain(self, example_evaluator, example_facts):
        index = example_evaluator.fact_scope_index(example_facts.facts)
        state = example_evaluator.initial_state()
        gains = example_evaluator.batch_incremental_gains(index, state)
        assert gains.shape == (len(example_facts.facts),)
        assert np.all(gains >= 0.0)
