"""Unit tests for the user expectation models (repro.core.expectation)."""

import numpy as np
import pytest

from repro.core.expectation import (
    AverageOfAllFactsModel,
    AverageOfScopeFactsModel,
    ClosestRelevantFactModel,
    FarthestRelevantFactModel,
    available_models,
)
from repro.core.model import Fact, Scope


def _fact(assignments, value):
    return Fact(scope=Scope(assignments), value=value, support=1)


@pytest.fixture()
def prior(example_relation):
    return np.zeros(example_relation.num_rows)


@pytest.fixture()
def conflicting_facts():
    """Two facts that both cover North/Winter rows with different values."""
    return [_fact({"region": "North"}, 14.0), _fact({"season": "Winter"}, 16.0)]


class TestClosestModel:
    def test_no_facts_returns_prior(self, example_relation, prior):
        expected = ClosestRelevantFactModel().expectations(example_relation, [], prior)
        assert np.all(expected == 0.0)

    def test_single_fact_applies_within_scope_only(self, example_relation, prior):
        fact = _fact({"region": "North"}, 15.0)
        expected = ClosestRelevantFactModel().expectations(example_relation, [fact], prior)
        north_mask = example_relation.scope_mask(Scope({"region": "North"}))
        assert np.all(expected[north_mask] == 15.0)
        assert np.all(expected[~north_mask] == 0.0)

    def test_conflict_resolved_to_closest_value(self, example_relation, prior, conflicting_facts):
        # North/Winter rows have a true delay of 15: value 14 is closer than 16.
        expected = ClosestRelevantFactModel().expectations(
            example_relation, conflicting_facts, prior
        )
        both_mask = example_relation.scope_mask(Scope({"region": "North", "season": "Winter"}))
        assert np.all(expected[both_mask] == 14.0)

    def test_prior_kept_when_closer_than_facts(self, example_relation):
        # Prior of 10 is closer than the fact value 20 for rows with delay 10.
        prior = np.full(example_relation.num_rows, 10.0)
        fact = _fact({}, 20.0)
        expected = ClosestRelevantFactModel().expectations(example_relation, [fact], prior)
        truth = example_relation.target_values
        assert np.all(expected[truth == 10.0] == 10.0)
        assert np.all(expected[truth == 20.0] == 20.0)


class TestFarthestModel:
    def test_conflict_resolved_to_farthest_value(self, example_relation, prior, conflicting_facts):
        expected = FarthestRelevantFactModel().expectations(
            example_relation, conflicting_facts, prior
        )
        both_mask = example_relation.scope_mask(Scope({"region": "North", "season": "Winter"}))
        # The prior 0 is even farther from 15 than either fact, so it wins.
        assert np.all(expected[both_mask] == 0.0)

    def test_with_nonzero_prior(self, example_relation, conflicting_facts):
        # With a prior equal to the truth (15), both fact values (14 and 16)
        # are equally far; the model must switch away from the prior.
        prior = np.full(example_relation.num_rows, 15.0)
        expected = FarthestRelevantFactModel().expectations(
            example_relation, conflicting_facts, prior
        )
        both_mask = example_relation.scope_mask(Scope({"region": "North", "season": "Winter"}))
        assert np.all(np.isin(expected[both_mask], [14.0, 16.0]))


class TestAverageModels:
    def test_average_of_scope_facts(self, example_relation, prior, conflicting_facts):
        expected = AverageOfScopeFactsModel().expectations(
            example_relation, conflicting_facts, prior
        )
        both_mask = example_relation.scope_mask(Scope({"region": "North", "season": "Winter"}))
        only_north = example_relation.scope_mask(
            Scope({"region": "North"})
        ) & ~example_relation.scope_mask(Scope({"season": "Winter"}))
        assert np.all(expected[both_mask] == pytest.approx(15.0))
        assert np.all(expected[only_north] == 14.0)

    def test_average_of_scope_facts_falls_back_to_prior(self, example_relation, prior):
        fact = _fact({"region": "North"}, 14.0)
        expected = AverageOfScopeFactsModel().expectations(example_relation, [fact], prior)
        outside = ~example_relation.scope_mask(Scope({"region": "North"}))
        assert np.all(expected[outside] == 0.0)

    def test_average_of_all_facts_ignores_relevance(self, example_relation, prior, conflicting_facts):
        expected = AverageOfAllFactsModel().expectations(
            example_relation, conflicting_facts, prior
        )
        assert np.all(expected == pytest.approx(15.0))

    def test_average_of_all_facts_empty(self, example_relation, prior):
        expected = AverageOfAllFactsModel().expectations(example_relation, [], prior)
        assert np.all(expected == 0.0)


class TestRegistry:
    def test_available_models_keys(self):
        models = available_models()
        assert set(models) == {"closest", "farthest", "avg_scope", "avg_all"}
        assert all(model.name == key for key, model in models.items())
