"""Deployment lifecycle: persist, reload, update, and extend the system.

The paper's public deployment ran for months.  This example walks
through the operational pieces a long-running deployment needs on top
of the core algorithms:

1. pre-process the primaries dataset and *persist* the speech store,
2. reload the store into a fresh engine (simulating a restart),
3. append newly arrived poll results and *incrementally* refresh only
   the affected speeches,
4. answer the comparison / extremum questions the paper's logs list as
   unsupported, using the advanced-query extension.

Run with:  python examples/deployment_lifecycle.py
"""

import tempfile
from pathlib import Path

from repro.datasets import load_dataset
from repro.relational import Table
from repro.system import (
    IncrementalMaintainer,
    SummarizationConfig,
    VoiceQueryEngine,
)
from repro.system.templates import SpeechRealizer, TargetPhrasing


def build_config() -> SummarizationConfig:
    return SummarizationConfig.create(
        table="primaries",
        dimensions=("candidate", "state_region", "month"),
        targets=("support_percentage",),
        max_query_length=1,
        max_facts_per_speech=3,
        max_fact_dimensions=1,
        algorithm="G-O",
    )


def main() -> None:
    dataset = load_dataset("primaries", num_rows=800)
    config = build_config()
    realizer = SpeechRealizer(
        target_phrasings={
            "support_percentage": TargetPhrasing(subject="the support", unit="%", decimals=1)
        }
    )

    # 1. Pre-process and persist.
    engine = VoiceQueryEngine(
        config, dataset.table, realizer=realizer, enable_advanced_queries=True,
        target_synonyms={"support_percentage": ["support", "polling", "poll numbers"]},
    )
    report = engine.preprocess()
    artifact = Path(tempfile.mkdtemp()) / "primaries_speeches.json"
    engine.save_speeches(str(artifact))
    print(f"pre-processed {report.speeches_generated} speeches "
          f"in {report.total_seconds:.1f}s and saved them to {artifact}\n")

    # 2. Reload into a fresh engine (simulating a process restart).
    restarted = VoiceQueryEngine(
        config, dataset.table, realizer=realizer, enable_advanced_queries=True,
        target_synonyms={"support_percentage": ["support", "polling", "poll numbers"]},
    )
    loaded = restarted.load_speeches(str(artifact))
    print(f"restarted engine loaded {loaded} speeches from disk")
    print("user : what is the support for Sanders?")
    print(f"voice: {restarted.ask('what is the support for Sanders?').text}\n")

    # 3. New poll results arrive: refresh only the affected speeches.
    new_polls = Table.from_rows(
        "primaries",
        list(dataset.table.column_names),
        [c.ctype for c in dataset.table.columns],
        [
            ("Sanders", "West", "March", "Online", "Likely voters", 38.0),
            ("Sanders", "West", "March", "Live phone", "Likely voters", 36.0),
            ("Biden", "South", "March", "Online", "Likely voters", 41.0),
        ],
    )
    maintainer = IncrementalMaintainer(config, dataset.table, realizer=realizer)
    maintenance = maintainer.apply_appended_rows(new_polls, restarted.store)
    print(
        f"appended {maintenance.new_rows} poll rows: "
        f"{maintenance.rebuilt_speeches} speeches refreshed, "
        f"{maintenance.unchanged_speeches} untouched "
        f"({maintenance.total_seconds * 1000:.0f} ms)"
    )
    print("user : what is the support for Sanders?  (after the update)")
    print(f"voice: {restarted.ask('what is the support for Sanders?').text}\n")

    # 4. Advanced questions the original deployment logged as unsupported.
    for question in (
        "compare the support between Sanders and Biden",
        "which candidate has the highest support",
        "which candidate has the lowest support in the Midwest",
    ):
        response = restarted.ask(question)
        print(f"user : {question}")
        print(f"voice: {response.text}  [{response.kind.value}]")


if __name__ == "__main__":
    main()
