"""CI driver for a sharded voice server (``serve --http --shards N``).

Start the server in one terminal::

    PYTHONPATH=src python -m repro.cli serve --dataset flights --rows 300 \
        --algorithm G-B --http 8934 --shards 2 \
        --failpoint shard.crash:times=1

then run this script in another::

    PYTHONPATH=src python examples/sharded_smoke.py --port 8934

The script exercises the multi-process tier's contract end to end:

1. a concurrent session-less burst — with the ``shard.crash`` failpoint
   armed, one of these asks SIGKILLs its routed shard mid-request and
   the router must fail it over: **zero lost requests**;
2. ``/healthz`` polled back to ``ok`` — proof the supervisor respawned
   the killed shard (and ``router.respawns`` counts it);
3. a session-scoped ask plus a "repeat" that must replay the previous
   answer byte-identically, and ``GET /v1/sessions/<id>`` reporting
   both requests from the *same* shard — consistent-hash affinity
   through the router;
4. aggregated ``/v1/metrics``: totals cover the whole burst, the
   per-shard breakdown lists every shard, and the ``router`` section
   reports the expected topology;
5. with ``--append N --require-digest-parity`` (a server started with
   ``--snapshot-dir``, i.e. mmap-attached shards): N broadcast appends
   drive maintenance swaps, after which ``GET /v1/store/digest`` must
   report every shard serving byte-identical stores at snapshot
   version N — the compact-store parity contract through real
   processes.

Exits non-zero on any violation, which is why CI reuses it as the
sharded smoke driver.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import HttpClient, VoiceApiError, VoiceRequest  # noqa: E402


async def wait_for_server(client: HttpClient, timeout: float) -> dict:
    """Poll /healthz until the server answers (it preprocesses first)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return await client.health()
        except VoiceApiError:
            if time.monotonic() >= deadline:
                raise
            await asyncio.sleep(0.25)


async def wait_for_status(client: HttpClient, status: str, timeout: float) -> dict:
    """Poll /healthz until it reports ``status`` (respawn proof)."""
    deadline = time.monotonic() + timeout
    while True:
        health = await client.health()
        if health.get("status") == status:
            return health
        if time.monotonic() >= deadline:
            raise TimeoutError(f"server never reached {status!r}: {health}")
        await asyncio.sleep(0.1)


async def main_async(args: argparse.Namespace) -> int:
    failures: list[str] = []
    client = HttpClient(args.host, args.port, max_connections=args.concurrency)
    health = await wait_for_server(client, args.startup_timeout)
    print(f"server is up: {health}")
    shards = int(health.get("shards", 0))
    if shards != args.shards:
        failures.append(f"expected {args.shards} shards, healthz reports {shards}")

    # 1. Concurrent burst.  With shard.crash armed the first routed ask
    # kills its shard; the router must answer every request anyway.
    burst = [
        client.ask(VoiceRequest(text=args.question, request_id=f"burst-{index}"))
        for index in range(args.requests)
    ]
    responses = await asyncio.gather(*burst, return_exceptions=True)
    errors = [r for r in responses if isinstance(r, BaseException)]
    if errors:
        failures.append(
            f"{len(errors)}/{args.requests} burst requests lost: {errors[0]!r}"
        )
    else:
        print(f"burst: {args.requests} concurrent requests answered, zero lost")

    # 2. The supervisor must bring the killed shard back.
    health = await wait_for_status(client, "ok", args.respawn_timeout)
    if int(health.get("healthy_shards", 0)) != args.shards:
        failures.append(f"not all shards healthy after respawn: {health}")
    else:
        print(f"respawn: healthz back to ok with {args.shards} healthy shards")

    # 3. Session affinity: ask + repeat on one session, byte-identical,
    # both recorded by the one shard that owns the session.
    session = "sharded-smoke-session"
    first = await client.ask(
        VoiceRequest(text=args.question, session_id=session, request_id="affinity-1")
    )
    replay = await client.ask(VoiceRequest(text="repeat", session_id=session))
    if replay.text != first.text:
        failures.append("repeat did not replay the previous answer verbatim")
    summary = await client.session(session)
    if summary is None or summary.get("requests") != 2:
        failures.append(
            f"owning shard did not record both session requests: {summary}"
        )
    elif "shard" not in summary:
        failures.append(f"session summary carries no owning shard: {summary}")
    else:
        print(
            f"affinity: session {session!r} served both requests from "
            f"shard {summary['shard']}"
        )

    # 4. Aggregated metrics with the per-shard breakdown.
    metrics = await client.metrics()
    router = metrics.get("router") or {}
    per_shard = metrics.get("shards") or {}
    expected = args.requests + 2
    if metrics.get("completed", 0) < expected:
        failures.append(
            f"aggregated completed={metrics.get('completed')} < {expected}"
        )
    if metrics.get("errors", 0):
        failures.append(f"shards counted {metrics['errors']} request errors")
    if router.get("shards") != args.shards:
        failures.append(f"router section reports wrong topology: {router}")
    if args.expect_respawns and not router.get("respawns"):
        failures.append(f"injected crash never respawned a shard: {router}")
    if len(per_shard) != args.shards:
        failures.append(
            f"per-shard breakdown lists {len(per_shard)} shards, "
            f"expected {args.shards}"
        )
    if sum(int(shard.get("completed", 0)) for shard in per_shard.values()) < 1:
        failures.append(f"per-shard breakdown carries no completions: {per_shard}")
    print(
        f"metrics: {metrics.get('completed')} completed across "
        f"{len(per_shard)} shards, router respawns={router.get('respawns')}, "
        f"relay retries={router.get('relay_retries')}"
    )

    # 5. Maintenance swaps + cross-shard byte parity (mmap-attach runs).
    if args.append:
        for index in range(args.append):
            receipt = await client.append(
                [
                    {
                        "airline": "F9",
                        "origin_region": "West",
                        "destination_region": "South",
                        "season": "Winter",
                        "month": "February",
                        "time_of_day": "Evening",
                        "day_type": "Weekday",
                        "cancellation": 0.0,
                        "delay_minutes": 30.0 + index,
                    }
                ]
            )
            if receipt.get("accepted_rows") != 1:
                failures.append(f"append {index} not accepted: {receipt}")
        digest = await client.store_digest()
        print(
            f"digest: snapshot v{digest.get('snapshot_version')}, "
            f"consistent={digest.get('consistent')}, "
            f"shards={digest.get('digests')}"
        )
        if digest.get("snapshot_version") != args.append:
            failures.append(
                f"{args.append} appends should leave snapshot version "
                f"{args.append}, digest endpoint reports {digest}"
            )
        if args.require_digest_parity and not digest.get("consistent"):
            failures.append(
                f"post-swap shard stores are not byte-identical: {digest}"
            )

    await client.aclose()
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--shards", type=int, default=2, help="expected shard count")
    parser.add_argument(
        "--question", default="what is the delay minutes for Winter",
        help="transcript for the data question (flights-dataset default)",
    )
    parser.add_argument("--requests", type=int, default=32, help="concurrent burst size")
    parser.add_argument("--concurrency", type=int, default=8, help="client connections")
    parser.add_argument(
        "--expect-respawns", action="store_true", dest="expect_respawns",
        help="require router.respawns >= 1 (shard.crash failpoint armed)",
    )
    parser.add_argument(
        "--append", type=int, default=0,
        help="POST this many single-row /v1/append batches (one swap each)",
    )
    parser.add_argument(
        "--require-digest-parity", action="store_true",
        dest="require_digest_parity",
        help="after the appends, require GET /v1/store/digest to report "
        "byte-identical stores on every shard",
    )
    parser.add_argument(
        "--startup-timeout", type=float, default=180.0, dest="startup_timeout",
        help="seconds to wait for /healthz while the server pre-processes",
    )
    parser.add_argument(
        "--respawn-timeout", type=float, default=60.0, dest="respawn_timeout",
        help="seconds to wait for healthz to return to ok after a crash",
    )
    args = parser.parse_args(argv)
    return asyncio.run(main_async(args))


if __name__ == "__main__":
    sys.exit(main())
