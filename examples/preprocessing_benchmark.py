"""Pre-processing vs run-time tradeoff across the evaluation datasets.

The paper's headline systems argument (Figure 10): spending minutes in
a pre-processing batch buys near-zero run-time latency, while the prior
sampling-based approach pays its cost at query time.  This example runs
a scaled-down version of that comparison over the Stack Overflow,
Flights and Primaries datasets and prints a side-by-side table.

Run with:  python examples/preprocessing_benchmark.py
"""

from repro.experiments.fig10_latency import latency_advantage, run_figure10
from repro.experiments.runner import format_rows


def main() -> None:
    result = run_figure10(queries_per_dataset=10, max_problems=200)
    print(result.to_text())
    print()
    advantage = latency_advantage(result)
    for dataset, factor in advantage.items():
        print(
            f"dataset {dataset}: answering from pre-generated speeches is "
            f"~{factor:,.0f}x faster at run time than sampling on demand"
        )
    print(
        "\n(The pre-processing cost is amortised over all pre-generated "
        "speeches; see the per-query pre-processing column.)"
    )
    print()
    print(format_rows(
        [
            {
                "dataset": row["dataset"],
                "speeches": row["speeches_pregenerated"],
                "preprocess_ms_per_speech": row["preprocessing_per_query_ms"],
                "runtime_lookup_ms": row["our_runtime_latency_ms"],
                "baseline_query_ms": row["baseline_total_ms"],
            }
            for row in result.rows
        ]
    ))


if __name__ == "__main__":
    main()
