"""Talk to a running voice server over HTTP with :class:`HttpClient`.

Start a server in one terminal::

    PYTHONPATH=src python -m repro.cli serve --dataset flights --rows 300 \
        --algorithm G-B --http 8931

then run this script in another::

    PYTHONPATH=src python examples/http_client_demo.py --port 8931

The script waits for ``GET /healthz`` to answer (the server pre-processes
the dataset before it starts listening), then demonstrates the ``/v1``
contract end to end:

1. a session-scoped data question (``POST /v1/ask`` with a
   ``session_id``),
2. a "repeat" on the same session — the answer must be byte-identical
   to the previous response, exactly like the interactive engine,
3. a burst of concurrent session-less questions,
4. ``GET /v1/sessions/<id>`` and ``GET /v1/metrics``,
5. with ``--append N``, N ``POST /v1/append`` batches of flights-schema
   rows — against a ``serve --data-dir`` server each receipt carries
   the batch's journal seq, making this the crash-test append driver.

It exits non-zero if any step misbehaves, which is why CI reuses it as
the HTTP smoke driver.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import HttpClient, VoiceApiError, VoiceRequest  # noqa: E402


async def wait_for_server(client: HttpClient, timeout: float) -> dict:
    """Poll /healthz until the server answers (it preprocesses first)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return await client.health()
        except VoiceApiError:
            if time.monotonic() >= deadline:
                raise
            await asyncio.sleep(0.25)


async def main_async(args: argparse.Namespace) -> int:
    failures: list[str] = []
    client = HttpClient(args.host, args.port, max_connections=args.concurrency)
    health = await wait_for_server(client, args.startup_timeout)
    print(f"server is up: {health}")

    # 1-2. Session-scoped question, then "repeat" on the same session.
    session = "demo-session"
    first = await client.ask(
        VoiceRequest(text=args.question, session_id=session, request_id="demo-1")
    )
    print(f"user : {args.question}")
    print(f"voice: {first.text}")
    replay = await client.ask(VoiceRequest(text="repeat", session_id=session))
    print(f"user : repeat\nvoice: {replay.text}")
    if replay.text != first.text:
        failures.append("repeat did not replay the previous answer verbatim")

    # 3. Concurrent session-less burst (all through the pooled client).
    burst = [
        client.ask(VoiceRequest(text=args.question, request_id=f"burst-{index}"))
        for index in range(args.requests)
    ]
    responses = await asyncio.gather(*burst, return_exceptions=True)
    errors = [r for r in responses if isinstance(r, BaseException)]
    if errors:
        failures.append(f"{len(errors)}/{args.requests} burst requests failed: {errors[0]!r}")
    else:
        print(f"burst: {args.requests} concurrent requests answered")

    # 4. Introspection endpoints.
    summary = await client.session(session)
    if summary is None or summary["requests"] < 2:
        failures.append(f"session endpoint did not report the session: {summary}")
    else:
        print(f"session {session!r}: {summary['requests']} requests recorded")
    if await client.session("never-seen") is not None:
        failures.append("unknown session id did not 404")
    metrics = await client.metrics()
    print(
        f"metrics: {metrics['completed']} completed, "
        f"p50 {metrics['p50_ms']:.2f} ms, p95 {metrics['p95_ms']:.2f} ms, "
        f"{metrics['errors']} errors, snapshot v{metrics['snapshot_version']}"
    )
    if metrics["errors"]:
        failures.append(f"server counted {metrics['errors']} request errors")

    # 5. Durable appends (--append N batches through POST /v1/append).
    if args.append:
        acked = []
        for index in range(args.append):
            receipt = await client.append(
                [
                    {
                        "airline": "F9",
                        "origin_region": "West",
                        "destination_region": "South",
                        "season": "Winter",
                        "month": "February",
                        "time_of_day": "Evening",
                        "day_type": "Weekday",
                        "cancellation": 0.0,
                        "delay_minutes": 30.0 + index,
                    }
                ]
            )
            if receipt["accepted_rows"] != 1:
                failures.append(f"append {index} not accepted: {receipt}")
            acked.append(receipt["journal_seq"])
        print(f"appended {args.append} batches, journal seqs {acked}")
        seqs = [seq for seq in acked if seq is not None]
        if seqs and seqs != sorted(seqs):
            failures.append(f"journal seqs not monotonic: {acked}")

    await client.aclose()
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--question", default="what is the delay minutes for Winter",
        help="transcript for the data question (flights-dataset default)",
    )
    parser.add_argument("--requests", type=int, default=32, help="concurrent burst size")
    parser.add_argument(
        "--append", type=int, default=0,
        help="also POST this many single-row /v1/append batches "
        "(flights schema; receipts carry journal seqs on a durable server)",
    )
    parser.add_argument("--concurrency", type=int, default=8, help="client connections")
    parser.add_argument(
        "--startup-timeout", type=float, default=120.0, dest="startup_timeout",
        help="seconds to wait for /healthz while the server pre-processes",
    )
    args = parser.parse_args(argv)
    return asyncio.run(main_async(args))


if __name__ == "__main__":
    sys.exit(main())
