"""ACS disability statistics: optimal vs random summaries (Table II style).

The paper's strongest user-study example contrasts two speeches about
visual-impairment prevalence in New York City: the worst-ranked random
speech wastes its facts on near-redundant borough averages while the
best speech leads with the dominant age-group effect.  This example
reproduces that contrast on the synthetic ACS data and then shows what
the optimizing algorithms produce for the same data.

Run with:  python examples/acs_disability.py
"""

from repro.algorithms import ExactSummarizer, GreedySummarizer
from repro.core import SummarizationProblem
from repro.core.priors import ConstantPrior
from repro.datasets import load_dataset
from repro.experiments.speech_pool import build_speech_pool
from repro.facts import FactGenerator
from repro.system.queries import DataQuery
from repro.system.templates import SpeechRealizer, TargetPhrasing


def main() -> None:
    dataset = load_dataset("acs", num_rows=600)
    relation = dataset.relation("visual_impairment")
    realizer = SpeechRealizer(
        target_phrasings={
            "visual_impairment": TargetPhrasing(
                subject="the number of persons per 1000 who identify as visually impaired",
                decimals=0,
            )
        }
    )

    # --- Table II: best vs worst speech from a pool of 100 random speeches.
    pool = build_speech_pool(
        relation, "visual_impairment", pool_size=100, seed=17, realizer=realizer
    )
    print("Worst-ranked random speech "
          f"(scaled utility {pool.worst.scaled_utility:.2f}):")
    print(f"  {pool.worst.text}\n")
    print("Best-ranked random speech "
          f"(scaled utility {pool.best.scaled_utility:.2f}):")
    print(f"  {pool.best.text}\n")

    # --- What the optimizing algorithms produce for the same data.
    generator = FactGenerator(relation, max_extra_dimensions=2)
    facts = generator.generate()
    prior = ConstantPrior(float(relation.target_values.mean()))
    problem = SummarizationProblem(
        relation=relation,
        candidate_facts=facts.facts,
        max_facts=3,
        prior=prior,
        label="visual impairment overall",
    )
    query = DataQuery.create("visual_impairment", {})

    for algorithm in (GreedySummarizer(), ExactSummarizer()):
        result = algorithm.summarize(problem)
        print(f"[{result.algorithm}] scaled utility {result.scaled_utility:.2f} "
              f"({result.statistics.elapsed_seconds * 1000:.0f} ms, "
              f"{len(facts.facts)} candidate facts)")
        print(f"  {realizer.realize(query, result.speech)}\n")


if __name__ == "__main__":
    main()
