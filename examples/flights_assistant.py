"""Voice assistant over flight data: the end-to-end system of Figure 2.

This example mirrors the paper's public Google Assistant deployment for
flight statistics: a configuration names the dimensions and the target
(cancellation probability), the engine pre-generates speeches for all
queries with up to two predicates, and a simulated dialogue then sends
natural-language requests ("cancellations in Winter?") through the
parser, the speech store, and the speech realizer.

Run with:  python examples/flights_assistant.py
"""

from repro.datasets import load_dataset
from repro.system import SummarizationConfig, VoiceQueryEngine
from repro.system.templates import SpeechRealizer, TargetPhrasing


def build_engine(rows: int = 800) -> VoiceQueryEngine:
    """Configure and pre-process the flights deployment."""
    dataset = load_dataset("flights", num_rows=rows)
    config = SummarizationConfig.create(
        table="flights",
        dimensions=("origin_region", "season", "month", "time_of_day"),
        targets=("cancellation", "delay_minutes"),
        max_query_length=2,
        max_facts_per_speech=3,
        max_fact_dimensions=1,
        algorithm="G-O",
    )
    realizer = SpeechRealizer(
        target_phrasings={
            "cancellation": TargetPhrasing(
                subject="the cancellation probability", unit="%", scale=100.0, decimals=1
            ),
            "delay_minutes": TargetPhrasing(
                subject="the average delay", unit=" minutes", decimals=0
            ),
        }
    )
    return VoiceQueryEngine(
        config,
        dataset.table,
        target_synonyms={
            "cancellation": ["cancellations", "cancelled flights", "cancel"],
            "delay_minutes": ["delay", "delays", "late"],
        },
        realizer=realizer,
    )


def main() -> None:
    engine = build_engine()
    print("Pre-processing speeches (this is the batch step of Figure 2)...")
    report = engine.preprocess(max_problems=600)
    print(
        f"  generated {report.speeches_generated} speeches in "
        f"{report.total_seconds:.1f}s "
        f"({report.per_query_seconds * 1000:.1f} ms per speech, "
        f"avg scaled utility {report.average_scaled_utility:.2f})\n"
    )

    dialogue = [
        "help",
        "cancellations in Winter?",
        "what about delays in the Northeast in Summer",
        "repeat that please",
        "which airline has the highest cancellation rate",
        "delays in the evening",
    ]
    for utterance in dialogue:
        response = engine.ask(utterance)
        print(f"user : {utterance}")
        print(f"voice: {response.text}")
        print(f"       ({response.kind.value}, {response.latency_seconds * 1000:.2f} ms)\n")


if __name__ == "__main__":
    main()
