"""Quickstart: summarize the paper's running example with every algorithm.

The running example (Figure 1 of the paper) describes average flight
delays as a function of region and season.  This script builds that
tiny relation, enumerates candidate facts, and asks the exact, greedy
and pruned-greedy algorithms for the best two-fact speech, printing the
selected facts, their utility, and the rendered voice output.

Run with:  python examples/quickstart.py
"""

from repro.algorithms import (
    ExactSummarizer,
    GreedySummarizer,
    OptimizedGreedySummarizer,
    PrunedGreedySummarizer,
)
from repro.core import SummarizationProblem, SummarizationRelation
from repro.core.priors import ZeroPrior
from repro.facts import FactGenerator
from repro.relational import ColumnType, Table
from repro.system.queries import DataQuery
from repro.system.templates import SpeechRealizer, TargetPhrasing


def build_running_example() -> SummarizationRelation:
    """The delays-by-region-and-season relation of Figure 1."""
    regions = ["East", "South", "West", "North"]
    seasons = ["Spring", "Summer", "Fall", "Winter"]
    rows = []
    for region in regions:
        for season in seasons:
            if region == "North" or season == "Winter":
                delay = 15.0
            elif region == "South" and season == "Summer":
                delay = 20.0
            else:
                delay = 10.0
            rows.append((region, season, delay))
    table = Table.from_rows(
        "flight_delays",
        ["region", "season", "delay"],
        [ColumnType.CATEGORICAL, ColumnType.CATEGORICAL, ColumnType.NUMERIC],
        rows,
    )
    return SummarizationRelation(table, ["region", "season"], "delay")


def main() -> None:
    relation = build_running_example()

    # Candidate facts: averages for every region, season, and combination.
    generator = FactGenerator(relation, max_extra_dimensions=2)
    facts = generator.generate()
    print(f"Candidate facts: {facts.count}")

    # Users expect no delays by default (the prior of Example 3).
    problem = SummarizationProblem(
        relation=relation,
        candidate_facts=facts.facts,
        max_facts=2,
        prior=ZeroPrior(),
        label="running example",
    )

    realizer = SpeechRealizer(
        target_phrasings={
            "delay": TargetPhrasing(subject="the average delay", unit=" minutes", decimals=0)
        }
    )
    query = DataQuery.create("delay", {})

    algorithms = [
        ExactSummarizer(),
        GreedySummarizer(),
        PrunedGreedySummarizer(),
        OptimizedGreedySummarizer(),
    ]
    for algorithm in algorithms:
        result = algorithm.summarize(problem)
        print(f"\n[{result.algorithm}] utility={result.utility:.1f} "
              f"(scaled {result.scaled_utility:.2f}, "
              f"{result.statistics.elapsed_seconds * 1000:.1f} ms)")
        for fact in result.speech:
            scope = fact.scope.assignments or {"scope": "all flights"}
            print(f"  fact: {scope} -> {fact.value:.1f} minutes")
        print(f"  voice output: {realizer.realize(query, result.speech)}")


if __name__ == "__main__":
    main()
