"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``.  This
file exists so the package can be installed in editable mode in offline
environments whose setuptools/pip combination lacks PEP 660 support
(``pip install -e . --no-build-isolation`` falls back to the legacy
``setup.py develop`` path when needed).
"""

from setuptools import setup

setup()
