"""Benchmark: pre-processing pipeline — serial vs. pool, fact generation.

Builds a synthetic dataset and times the full pre-processing batch
(problem generation + summarization + speech realization for every
enumerated query)

* serially (``workers=0``, the in-process loop),
* on a ``multiprocessing`` pool for each requested worker count,

verifying that every parallel run produces a store byte-identical to
the serial one (via the persistence serialisation).  It also times
candidate-fact generation with the vectorized group enumeration
against the per-row Python reference path on the same relation.

Results are emitted as JSON (stdout, and optionally a file).

Usage::

    python benchmarks/bench_preprocessing.py             # full size
    python benchmarks/bench_preprocessing.py --quick     # CI smoke
    python benchmarks/bench_preprocessing.py --workers 2 4 8
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.model import SummarizationRelation  # noqa: E402
from repro.facts.generation import FactGenerator  # noqa: E402
from repro.relational.column import Column  # noqa: E402
from repro.relational.table import Table  # noqa: E402
from repro.system.config import SummarizationConfig  # noqa: E402
from repro.system.persistence import store_to_dict  # noqa: E402
from repro.system.preprocessor import Preprocessor  # noqa: E402
from repro.system.problem_generator import ProblemGenerator  # noqa: E402

DIMENSIONS = ["d1", "d2", "d3"]


def build_table(num_rows: int, values_per_dimension: int, seed: int = 23) -> Table:
    """A synthetic relation with three dimensions and a continuous target."""
    rng = np.random.default_rng(seed)
    columns = [
        Column.categorical(
            dim,
            [f"{dim}_v{v}" for v in rng.integers(0, values_per_dimension, size=num_rows)],
        )
        for dim in DIMENSIONS
    ]
    columns.append(Column.numeric("target", rng.normal(100.0, 25.0, size=num_rows)))
    return Table("preprocessing_bench", columns)


def bench_pipeline(
    config: SummarizationConfig, table: Table, worker_counts: list[int]
) -> dict:
    """Serial vs. pool wall-clock for the whole pre-processing batch."""
    serial_generator = ProblemGenerator(config, table)
    preprocessor = Preprocessor(config)
    store, report = preprocessor.run(serial_generator, workers=0)
    serial_payload = json.dumps(store_to_dict(store), sort_keys=True)

    out = {
        "queries_considered": report.queries_considered,
        "speeches_generated": report.speeches_generated,
        "serial_seconds": report.total_seconds,
        "parallel": [],
    }
    for workers in worker_counts:
        generator = ProblemGenerator(config, table)
        parallel_store, parallel_report = preprocessor.run(generator, workers=workers)
        payload = json.dumps(store_to_dict(parallel_store), sort_keys=True)
        out["parallel"].append(
            {
                "workers": workers,
                "seconds": parallel_report.total_seconds,
                "speedup_vs_serial": report.total_seconds / parallel_report.total_seconds,
                "store_identical_to_serial": payload == serial_payload,
            }
        )
    return out


def bench_fact_generation(table: Table, repeats: int) -> dict:
    """Vectorized vs. per-row reference candidate-fact enumeration."""
    relation = SummarizationRelation(table, DIMENSIONS, "target")
    timings = {}
    for label, vectorized in (("vectorized", True), ("reference", False)):
        generator = FactGenerator(relation, max_extra_dimensions=2, vectorized=vectorized)
        best = float("inf")
        count = 0
        # First run warms the relation's shared grouping caches so both
        # paths are timed on equal footing.
        for _ in range(repeats + 1):
            start = time.perf_counter()
            count = generator.generate().count
            best = min(best, time.perf_counter() - start)
        timings[label] = {"seconds": best, "facts": count}
    timings["speedup"] = timings["reference"]["seconds"] / timings["vectorized"]["seconds"]
    return timings


def run(num_rows: int, values_per_dimension: int, worker_counts: list[int], repeats: int) -> dict:
    table = build_table(num_rows, values_per_dimension)
    config = SummarizationConfig.create(
        table="preprocessing_bench",
        dimensions=DIMENSIONS,
        targets=("target",),
        max_query_length=1,
        max_facts_per_speech=3,
        max_fact_dimensions=2,
        algorithm="G-B",
    )
    return {
        "problem": {
            "rows": num_rows,
            "values_per_dimension": values_per_dimension,
            "dimensions": len(DIMENSIONS),
            "cpu_count": os.cpu_count(),
        },
        "pipeline": bench_pipeline(config, table, worker_counts),
        "fact_generation": bench_fact_generation(table, repeats),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument(
        "--values-per-dimension", type=int, default=12,
        help="domain size per dimension (3 dims)",
    )
    parser.add_argument(
        "--workers", type=int, nargs="*", default=[2, 4], help="pool sizes to time"
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny problem for CI smoke runs (800 rows, 4 values/dim, workers=2)",
    )
    parser.add_argument("--output", default=None, help="also write the JSON to a file")
    args = parser.parse_args(argv)

    if args.quick:
        report = run(num_rows=800, values_per_dimension=4, worker_counts=[2], repeats=1)
    else:
        report = run(
            num_rows=args.rows,
            values_per_dimension=args.values_per_dimension,
            worker_counts=args.workers,
            repeats=args.repeats,
        )

    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n")

    if not all(p["store_identical_to_serial"] for p in report["pipeline"]["parallel"]):
        print("ERROR: parallel store differs from the serial store", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
