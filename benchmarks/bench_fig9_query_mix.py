"""Benchmark: regenerate Figure 9 (query complexity and query type).

Expected shape (paper): most data-access queries restrict exactly one
dimension, and retrieval queries dominate comparisons and extrema.
"""

from repro.experiments.fig9_query_mix import dominant_complexity, run_figure9


def test_fig9_query_mix(benchmark, record_result):
    result = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    record_result(result)

    assert dominant_complexity(result) == "1 predicates"

    shapes = {row["category"]: row["count"] for row in result.rows if row["chart"] == "(b) type"}
    assert shapes["retrieval"] > shapes["comparison"]
    assert shapes["retrieval"] > shapes["extremum"]
