"""Benchmark: regenerate Figure 4 (scaling speech length and fact dimensions).

Expected shape (paper): cost grows gracefully in the speech length and
steeply in the number of dimensions per fact; G-O performs at most the
work of G-P.
"""

from repro.experiments.fig4_scaling import run_figure4, scaling_series


def test_fig4_scaling(benchmark, record_result):
    result = benchmark.pedantic(
        run_figure4,
        kwargs={"queries_per_scenario": 2},
        rounds=1,
        iterations=1,
    )
    record_result(result)

    # Cost grows in the fact-dimension limit for every scenario (G-P curve).
    for scenario, points in scaling_series(result, "fact_dimensions", "G-P").items():
        values = [cost for _, cost in points]
        assert values == sorted(values), f"cost should grow with fact dims in {scenario}"

    # Cost grows (weakly) in the speech length as well.
    for scenario, points in scaling_series(result, "speech_length", "G-P").items():
        values = [cost for _, cost in points]
        assert values[0] <= values[-1]

    # The optimizer never does more gain evaluations than the naive plan.
    go_work = sum(r["fact_evaluations"] for r in result.rows if r["algorithm"] == "G-O")
    gp_work = sum(r["fact_evaluations"] for r in result.rows if r["algorithm"] == "G-P")
    assert go_work <= gp_work * 1.05
