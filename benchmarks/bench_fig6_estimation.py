"""Benchmark: regenerate Figure 6 (estimates after worst vs best speech).

Expected shape (paper): worker estimates based on the best-ranked
speech track the correct values more closely than estimates based on
the worst-ranked speech.
"""

from repro.experiments.fig6_estimation import mean_errors, run_figure6


def test_fig6_estimation(benchmark, record_result):
    result = benchmark.pedantic(
        run_figure6,
        kwargs={"workers_per_point": 20, "pool_size": 100},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert len(result.rows) == 15  # 5 boroughs x 3 age groups
    errors = mean_errors(result)
    assert errors["best"] < errors["worst"]
