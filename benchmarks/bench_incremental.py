"""Benchmark: incremental maintenance — discovery, rebuild, pool reuse.

Simulates the ROADMAP serving scenario: a pre-processed speech store
kept in sync with an append-only table.  Three sections:

* ``discovery`` — affected-query detection for one update batch, the
  seed's per-(query, row) ``contains_row`` scan (reimplemented here as
  the reference) against the membership-set fast path now in
  ``repro.system.updates``; both must find the identical query list.
* ``maintenance`` — one full maintenance pass three ways: legacy
  (reference discovery + serial rebuild), the current serial path, and
  the worker-pool path per requested worker count.  Every variant must
  produce byte-identical stores and equal report counts.
* ``pool_reuse`` — a sequence of maintenance passes run once with a
  fresh pool forked per pass and once on a single persistent
  :class:`WorkerPool`; the amortisation ratio is the fresh total over
  the persistent total, and the spawn counters show the fork saving.

Results are emitted as JSON (stdout, and optionally a file).

Usage::

    python benchmarks/bench_incremental.py             # full size
    python benchmarks/bench_incremental.py --quick     # CI smoke
    python benchmarks/bench_incremental.py --workers 2 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.relational.column import Column  # noqa: E402
from repro.relational.table import Table  # noqa: E402
from repro.system.config import SummarizationConfig  # noqa: E402
from repro.system.persistence import store_from_dict, store_to_dict  # noqa: E402
from repro.system.preprocessor import Preprocessor  # noqa: E402
from repro.system.problem_generator import ProblemGenerator  # noqa: E402
from repro.system.updates import IncrementalMaintainer  # noqa: E402
from repro.system.worker_pool import WorkerPool  # noqa: E402

DIMENSIONS = ["d1", "d2", "d3"]


def build_rows(num_rows: int, values_per_dimension: int, seed: int) -> list[tuple]:
    rng = np.random.default_rng(seed)
    dims = [
        [f"{dim}_v{v}" for v in rng.integers(0, values_per_dimension, size=num_rows)]
        for dim in DIMENSIONS
    ]
    target = rng.normal(100.0, 25.0, size=num_rows)
    return list(zip(*dims, (float(v) for v in target)))


def make_table(rows: list[tuple]) -> Table:
    columns = [
        Column.categorical(dim, [row[i] for row in rows])
        for i, dim in enumerate(DIMENSIONS)
    ]
    columns.append(Column.numeric("target", [row[-1] for row in rows]))
    return Table("incremental_bench", columns)


def reference_affected_queries(
    config: SummarizationConfig, table: Table, new_rows: Table
):
    """The seed's discovery loop: every query probes every new row."""
    updated = table.concat(new_rows)
    generator = ProblemGenerator(config, updated)
    new_row_dicts = list(new_rows.iter_rows())
    affected = []
    for query in generator.enumerate_queries():
        scope = query.scope()
        if any(scope.contains_row(row) for row in new_row_dicts):
            affected.append(query)
    return affected


def copy_store(store):
    return store_from_dict(store_to_dict(store))[0]


def store_payload(store) -> str:
    return json.dumps(store_to_dict(store), sort_keys=True)


def bench_discovery(
    config: SummarizationConfig, base: Table, batch: Table, repeats: int
) -> dict:
    maintainer = IncrementalMaintainer(config, base)
    reference_best = float("inf")
    fast_best = float("inf")
    reference = fast = None
    for _ in range(repeats):
        start = time.perf_counter()
        reference = reference_affected_queries(config, base, batch)
        reference_best = min(reference_best, time.perf_counter() - start)
        start = time.perf_counter()
        fast = maintainer.affected_queries(batch)
        fast_best = min(fast_best, time.perf_counter() - start)
    return {
        "queries_enumerated": ProblemGenerator(
            config, base.concat(batch)
        ).count_queries(),
        "new_rows": batch.num_rows,
        "affected_queries": len(fast),
        "reference_seconds": reference_best,
        "vectorized_seconds": fast_best,
        "speedup": reference_best / fast_best,
        "identical_to_reference": fast == reference,
    }


def bench_maintenance(
    config: SummarizationConfig,
    base: Table,
    batch: Table,
    worker_counts: list[int],
) -> dict:
    base_store, _ = Preprocessor(config).run(ProblemGenerator(config, base))

    # Legacy pass = the seed's reference discovery plus a serial
    # rebuild.  The serial maintain() below repeats its own (fast)
    # discovery, which is a negligible share of its total, so the sum
    # approximates the seed's wall clock without keeping dead code in
    # the library.
    store = copy_store(base_store)
    start = time.perf_counter()
    reference_affected_queries(config, base, batch)
    discovery_seconds = time.perf_counter() - start
    serial_report = IncrementalMaintainer(config, base).maintain(batch, store)
    legacy_seconds = discovery_seconds + serial_report.total_seconds
    serial_payload = store_payload(store)

    out = {
        "base_speeches": len(base_store),
        "affected_queries": serial_report.affected_queries,
        "rebuilt_speeches": serial_report.rebuilt_speeches,
        "legacy_seconds": legacy_seconds,
        "serial_seconds": serial_report.total_seconds,
        "serial_speedup_vs_legacy": legacy_seconds / serial_report.total_seconds,
        "parallel": [],
    }
    for workers in worker_counts:
        store = copy_store(base_store)
        with WorkerPool(workers) as pool:
            report = IncrementalMaintainer(config, base).maintain(
                batch, store, pool=pool
            )
        identical = (
            store_payload(store) == serial_payload
            and report.rebuilt_speeches == serial_report.rebuilt_speeches
            and report.affected_queries == serial_report.affected_queries
        )
        out["parallel"].append(
            {
                "workers": workers,
                "seconds": report.total_seconds,
                "speedup_vs_legacy": legacy_seconds / report.total_seconds,
                "speedup_vs_serial": serial_report.total_seconds
                / report.total_seconds,
                "identical_to_serial": identical,
            }
        )
    return out


def bench_pool_reuse(
    config: SummarizationConfig,
    base: Table,
    batches: list[Table],
    workers: int,
) -> dict:
    base_store, _ = Preprocessor(config).run(ProblemGenerator(config, base))

    def run_passes(pool: WorkerPool | None) -> tuple[float, str]:
        store = copy_store(base_store)
        maintainer = IncrementalMaintainer(config, base)
        start = time.perf_counter()
        for batch in batches:
            maintainer.maintain(batch, store, workers=workers, pool=pool)
        return time.perf_counter() - start, store_payload(store)

    fresh_seconds, fresh_payload = run_passes(None)
    with WorkerPool(workers) as pool:
        kept_seconds, kept_payload = run_passes(pool)
        kept_spawns = pool.spawn_count
    return {
        "passes": len(batches),
        "rows_per_pass": batches[0].num_rows if batches else 0,
        "workers": workers,
        "fresh_pool_seconds": fresh_seconds,
        "persistent_pool_seconds": kept_seconds,
        "amortisation": fresh_seconds / kept_seconds,
        "fresh_pool_spawns": len(batches),
        "persistent_pool_spawns": kept_spawns,
        "stores_identical": fresh_payload == kept_payload,
    }


def run(
    num_rows: int,
    values_per_dimension: int,
    append_rows: int,
    passes: int,
    worker_counts: list[int],
    repeats: int,
) -> dict:
    total_appended = append_rows * passes
    rows = build_rows(num_rows + total_appended, values_per_dimension, seed=23)
    base = make_table(rows[:num_rows])
    batches = [
        make_table(rows[num_rows + i * append_rows : num_rows + (i + 1) * append_rows])
        for i in range(passes)
    ]
    config = SummarizationConfig.create(
        table="incremental_bench",
        dimensions=DIMENSIONS,
        targets=("target",),
        max_query_length=2,
        max_facts_per_speech=3,
        max_fact_dimensions=1,
        algorithm="G-B",
    )
    return {
        "problem": {
            "base_rows": num_rows,
            "values_per_dimension": values_per_dimension,
            "dimensions": len(DIMENSIONS),
            "append_rows": append_rows,
            "passes": passes,
            "cpu_count": os.cpu_count(),
        },
        "discovery": bench_discovery(config, base, batches[0], repeats),
        "maintenance": bench_maintenance(config, base, batches[0], worker_counts),
        "pool_reuse": bench_pool_reuse(
            config, base, batches, workers=max(worker_counts)
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=4_000, help="base table rows")
    parser.add_argument(
        "--values-per-dimension", type=int, default=24,
        help="domain size per dimension (3 dims)",
    )
    parser.add_argument(
        "--append-rows", type=int, default=60, help="appended rows per pass"
    )
    parser.add_argument(
        "--passes", type=int, default=4, help="maintenance passes for pool reuse"
    )
    parser.add_argument(
        "--workers", type=int, nargs="*", default=[2, 4], help="pool sizes to time"
    )
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--quick", action="store_true",
        help="small problem for CI smoke runs (1200 rows, 12 values/dim, "
        "workers=2; sized so each timed section runs >10ms, best-of-3)",
    )
    parser.add_argument("--output", default=None, help="also write the JSON to a file")
    args = parser.parse_args(argv)

    if args.quick:
        report = run(
            num_rows=1_200,
            values_per_dimension=12,
            append_rows=30,
            passes=2,
            worker_counts=[2],
            repeats=3,
        )
    else:
        report = run(
            num_rows=args.rows,
            values_per_dimension=args.values_per_dimension,
            append_rows=args.append_rows,
            passes=args.passes,
            worker_counts=args.workers,
            repeats=args.repeats,
        )

    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n")

    ok = (
        report["discovery"]["identical_to_reference"]
        and all(p["identical_to_serial"] for p in report["maintenance"]["parallel"])
        and report["pool_reuse"]["stores_identical"]
    )
    if not ok:
        print("ERROR: maintenance paths diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
