"""Benchmark: regenerate Table II (worst vs best ACS speech texts).

Expected shape (paper): the best-ranked speech leads with the dominant
age-group effect while the worst-ranked speech has much lower utility.
"""

from repro.experiments.table2_speeches import run_table2


def test_table2_speeches(benchmark, record_result):
    result = benchmark.pedantic(
        run_table2, kwargs={"pool_size": 100}, rounds=1, iterations=1
    )
    record_result(result)
    rows = {row["speech"]: row for row in result.rows}
    assert set(rows) == {"Worst", "Best"}
    assert rows["Best"]["scaled_utility"] > rows["Worst"]["scaled_utility"]
    # The best speech mentions an age group (the dominant effect in the data).
    assert "age group" in rows["Best"]["text"].lower()
