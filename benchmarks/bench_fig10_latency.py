"""Benchmark: regenerate Figure 10 (latency / processing time vs baseline).

Expected shape (paper): our run-time latency (a store lookup) is orders
of magnitude below the sampling baseline's latency, and the baseline's
first-sentence latency is below its total processing time.
"""

from repro.experiments.fig10_latency import latency_advantage, run_figure10


def test_fig10_latency(benchmark, record_result):
    result = benchmark.pedantic(
        run_figure10,
        kwargs={"queries_per_dataset": 10, "max_problems": 200},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert {row["dataset"] for row in result.rows} == {"S", "F", "P"}

    advantage = latency_advantage(result)
    for dataset, factor in advantage.items():
        assert factor > 10, f"expected large latency advantage for {dataset}"

    for row in result.rows:
        assert row["baseline_latency_ms"] <= row["baseline_total_ms"] + 1e-6
        assert row["our_runtime_latency_ms"] < row["preprocessing_per_query_ms"]
