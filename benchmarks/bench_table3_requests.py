"""Benchmark: regenerate Table III (request classification per deployment).

Expected shape (paper): help requests are common, repeats are rare, and
supported queries outnumber unsupported ones for the primaries and
flights deployments.
"""

from repro.experiments.table3_requests import run_table3


def test_table3_requests(benchmark, record_result):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    record_result(result)
    assert len(result.rows) == 3
    for row in result.rows:
        total = row["help"] + row["repeat"] + row["s_query"] + row["u_query"] + row["other"]
        assert total == 50  # each deployment log has 50 requests
    by_deployment = {row["deployment"]: row for row in result.rows}
    assert by_deployment["Primaries"]["s_query"] > by_deployment["Primaries"]["u_query"]
    assert by_deployment["Flights"]["s_query"] > by_deployment["Flights"]["u_query"]
