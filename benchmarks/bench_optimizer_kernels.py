"""Benchmark: vectorized optimizer kernel vs. the per-fact reference path.

Builds a synthetic summarization problem (default: 10k rows, ~1.2k
candidate facts over four dimensions) and times

* greedy summarization via the per-fact reference path (the seed
  implementation: one ``incremental_gain`` call per candidate per
  iteration),
* greedy summarization via the batch :class:`FactScopeIndex` kernel,
* lazy greedy ("G-L", stale-bound heap) on the same problem,
* candidate-fact generation per-query vs. from the shared data cube.

Results are emitted as JSON (stdout, and optionally a file) including
the speedup factors and a check that all greedy variants selected the
identical speech — the kernel is an execution strategy, not a model
change.

Usage::

    python benchmarks/bench_optimizer_kernels.py            # full size
    python benchmarks/bench_optimizer_kernels.py --quick    # CI smoke
    python benchmarks/bench_optimizer_kernels.py --output results.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.algorithms.greedy import GreedySummarizer  # noqa: E402
from repro.algorithms.lazy_greedy import LazyGreedySummarizer  # noqa: E402
from repro.core.model import SummarizationRelation  # noqa: E402
from repro.core.problem import SummarizationProblem  # noqa: E402
from repro.facts.cube import CubeFactGenerator  # noqa: E402
from repro.facts.generation import FactGenerator  # noqa: E402
from repro.relational.column import Column  # noqa: E402
from repro.relational.table import Table  # noqa: E402


def build_problem(
    num_rows: int, values_per_dimension: int, max_facts: int, seed: int = 17
) -> SummarizationProblem:
    """A synthetic problem with four dimensions and a continuous target."""
    rng = np.random.default_rng(seed)
    dimensions = ["d1", "d2", "d3", "d4"]
    columns = [
        Column.categorical(
            dim,
            [f"{dim}_v{v}" for v in rng.integers(0, values_per_dimension, size=num_rows)],
        )
        for dim in dimensions
    ]
    columns.append(Column.numeric("target", rng.normal(100.0, 25.0, size=num_rows)))
    table = Table("kernel_bench", columns)
    relation = SummarizationRelation(table, dimensions, "target")
    facts = FactGenerator(relation, max_extra_dimensions=2).generate().facts
    return SummarizationProblem(
        relation=relation, candidate_facts=facts, max_facts=max_facts
    )


def time_summarizer(summarizer, problem, repeats: int) -> tuple[float, object, object]:
    """Best-of-``repeats`` wall time, plus the last result's speech/stats."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = summarizer.summarize(problem)
        best = min(best, time.perf_counter() - start)
    return best, result.speech, result.statistics


def time_fact_generation(problem, repeats: int) -> dict:
    """Per-query fact generation vs. shared-cube build + slice."""
    relation = problem.relation
    per_query = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        FactGenerator(relation, max_extra_dimensions=2).generate()
        per_query = min(per_query, time.perf_counter() - start)
    cube_build = float("inf")
    cube_slice = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        generator = CubeFactGenerator(
            relation, max_extra_dimensions=2, max_base_dimensions=0
        )
        cube_build = min(cube_build, time.perf_counter() - start)
        start = time.perf_counter()
        generator.generate()
        cube_slice = min(cube_slice, time.perf_counter() - start)
    return {
        "per_query_seconds": per_query,
        "cube_build_seconds": cube_build,
        "cube_slice_seconds": cube_slice,
        "generation_speedup_after_build": (
            per_query / cube_slice if cube_slice > 0 else float("inf")
        ),
    }


def run(num_rows: int, values_per_dimension: int, max_facts: int, repeats: int) -> dict:
    problem = build_problem(num_rows, values_per_dimension, max_facts)

    reference_seconds, reference_speech, reference_stats = time_summarizer(
        GreedySummarizer(use_kernel=False), problem, repeats
    )
    kernel_seconds, kernel_speech, kernel_stats = time_summarizer(
        GreedySummarizer(use_kernel=True), problem, repeats
    )
    lazy_seconds, lazy_speech, lazy_stats = time_summarizer(
        LazyGreedySummarizer(), problem, repeats
    )

    return {
        "problem": {
            "rows": problem.num_rows,
            "candidate_facts": problem.num_candidates,
            "max_facts": problem.max_facts,
        },
        "greedy_reference": {
            "seconds": reference_seconds,
            "fact_evaluations": reference_stats.fact_evaluations,
        },
        "greedy_kernel": {
            "seconds": kernel_seconds,
            "fact_evaluations": kernel_stats.fact_evaluations,
            "speedup_vs_reference": reference_seconds / kernel_seconds,
        },
        "lazy_greedy": {
            "seconds": lazy_seconds,
            "fact_evaluations": lazy_stats.fact_evaluations,
            "speedup_vs_reference": reference_seconds / lazy_seconds,
        },
        "fact_generation": time_fact_generation(problem, repeats),
        "speeches_identical": bool(
            kernel_speech == reference_speech and lazy_speech == reference_speech
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=10_000)
    parser.add_argument(
        "--values-per-dimension", type=int, default=14,
        help="domain size per dimension (4 dims; 14 yields ~1.2k candidates)",
    )
    parser.add_argument("--max-facts", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny problem for CI smoke runs (500 rows, 5 values/dim, 1 repeat)",
    )
    parser.add_argument("--output", default=None, help="also write the JSON to a file")
    args = parser.parse_args(argv)

    if args.quick:
        report = run(num_rows=500, values_per_dimension=5, max_facts=3, repeats=1)
    else:
        report = run(
            num_rows=args.rows,
            values_per_dimension=args.values_per_dimension,
            max_facts=args.max_facts,
            repeats=args.repeats,
        )

    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n")

    if not report["speeches_identical"]:
        print("ERROR: kernel/lazy speeches differ from the reference path", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
