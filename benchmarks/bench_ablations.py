"""Benchmark: ablations of the design choices called out in DESIGN.md."""

from repro.experiments.ablations import (
    run_exact_pruning_ablation,
    run_greedy_ratio_ablation,
    run_pruning_plan_ablation,
)


def test_ablation_exact_pruning(benchmark, record_result):
    result = benchmark.pedantic(run_exact_pruning_ablation, rounds=1, iterations=1)
    record_result(result)
    for scenario in {row["scenario"] for row in result.rows}:
        rows = {r["variant"]: r for r in result.rows if r["scenario"] == scenario}
        # Bound pruning keeps (weakly) fewer partial speeches alive and never
        # changes the result quality.
        assert rows["with_pruning"]["partial_speeches"] <= rows["without_pruning"]["partial_speeches"]
        assert abs(
            rows["with_pruning"]["avg_scaled_utility"]
            - rows["without_pruning"]["avg_scaled_utility"]
        ) < 1e-9


def test_ablation_pruning_plans(benchmark, record_result):
    result = benchmark.pedantic(run_pruning_plan_ablation, rounds=1, iterations=1)
    record_result(result)
    for scenario in {row["scenario"] for row in result.rows}:
        rows = {r["algorithm"]: r for r in result.rows if r["scenario"] == scenario}
        # All greedy variants return speeches of identical quality.
        qualities = {round(r["avg_scaled_utility"], 6) for r in rows.values()}
        assert len(qualities) == 1
        # Pruning never increases the number of fact-gain evaluations.
        assert rows["G-P"]["fact_evaluations"] <= rows["G-B"]["fact_evaluations"]
        assert rows["G-O"]["fact_evaluations"] <= rows["G-B"]["fact_evaluations"]


def test_ablation_greedy_ratio(benchmark, record_result):
    result = benchmark.pedantic(run_greedy_ratio_ablation, rounds=1, iterations=1)
    record_result(result)
    ratios = [row["ratio"] for row in result.rows]
    assert ratios
    # The (1 - 1/e) guarantee holds for every instance; in practice the
    # ratio is far higher (paper: >= 98% on average).
    assert min(ratios) >= 1 - 1 / 2.718281828 - 1e-9
    assert sum(ratios) / len(ratios) >= 0.95
