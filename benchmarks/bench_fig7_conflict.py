"""Benchmark: regenerate Figure 7 (conflict-resolution models).

Expected shape (paper): the closest-relevant-value model predicts
worker answers with the lowest error on both datasets.
"""

from repro.experiments.fig7_conflict import best_models, run_figure7


def test_fig7_conflict(benchmark, record_result):
    result = benchmark.pedantic(
        run_figure7,
        kwargs={"workers_per_combination": 20},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert len(result.rows) == 8  # 2 datasets x 4 models
    winners = best_models(result)
    assert winners["ACS"] == "Closest"
    assert winners["Flights"] == "Closest"
