"""Benchmark: regenerate Figure 3 (algorithm comparison per scenario).

Expected shape (paper): exact optimization is far slower than the
greedy variants while greedy utility stays within a few percent of the
optimum; pruning reduces the number of fact-gain evaluations.
"""

from repro.experiments.fig3_algorithms import run_figure3, summarize_figure3
from repro.experiments.scenarios import SMALL_SCALE


def test_fig3_algorithms(benchmark, record_result):
    result = benchmark.pedantic(
        run_figure3,
        kwargs={"scale": SMALL_SCALE},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    summary = summarize_figure3(result)

    # Every scenario ran all four algorithms.
    scenarios = {row["scenario"] for row in result.rows}
    assert len(scenarios) == 8
    assert len(result.rows) == len(scenarios) * 4

    # Exact optimization costs more time than base greedy in total.
    assert summary["total_seconds_E"] > summary["total_seconds_G-B"]
    # Greedy utility is close to optimal (paper: >= 98%; guarantee: 63%).
    assert summary["min_greedy_utility_ratio"] >= 0.9
