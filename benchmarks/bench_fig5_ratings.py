"""Benchmark: regenerate Figure 5 (worker preferences vs quality model).

Expected shape (paper): average ratings and pairwise wins increase from
the worst-ranked to the best-ranked speech.
"""

from repro.experiments.fig5_ratings import quality_rating_correlation, run_figure5


def test_fig5_ratings(benchmark, record_result):
    result = benchmark.pedantic(
        run_figure5,
        kwargs={"workers": 50, "pool_size": 100},
        rounds=1,
        iterations=1,
    )
    record_result(result)

    # Ratings are consistent with the model ranking for most adjectives.
    assert quality_rating_correlation(result) >= 0.75

    # The best speech wins more comparisons than the worst one, per dataset.
    for dataset in {row["dataset"] for row in result.rows}:
        rows = {r["speech"]: r for r in result.rows if r["dataset"] == dataset}
        assert rows["Best"]["wins"] > rows["Worst"]["wins"]
