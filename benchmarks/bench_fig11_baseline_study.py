"""Benchmark: regenerate Figure 11 (worker preferences vs sampling baseline).

Expected shape (paper): our precise-average speeches are preferred over
the baseline's range speeches, with gains on "Precise" and
"Informative".
"""

from repro.experiments.fig11_baseline_study import overall_winner, run_figure11


def test_fig11_baseline_study(benchmark, record_result):
    result = benchmark.pedantic(
        run_figure11, kwargs={"workers": 50}, rounds=1, iterations=1
    )
    record_result(result)
    assert overall_winner(result) == "This"

    # Average "Precise" rating of our speeches exceeds the baseline's.
    ours = [row["Precise"] for row in result.rows if row["approach"] == "This"]
    baseline = [row["Precise"] for row in result.rows if row["approach"] == "Baseline"]
    assert sum(ours) / len(ours) > sum(baseline) / len(baseline)
