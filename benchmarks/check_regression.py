"""CI benchmark regression guard.

Re-runs every benchmark's ``--quick`` smoke and compares its throughput
metrics against the committed baselines in ``benchmarks/results/quick/``.
A metric that drops more than ``--tolerance`` (default 30%) below its
baseline fails the check, and any smoke whose own self-verification
exits non-zero (store/speech divergence) fails immediately.  A gated
metric present in the fresh run but missing from the committed
baseline is printed as skipped (regenerate with ``--update-baselines``)
rather than crashing; one missing from the *fresh* run fails.

Most gated metrics are *ratios* — speedups of one code path over
another measured in the same process — because they are comparatively
stable across machines, unlike absolute wall-clock numbers, which
differ between the container that committed the baselines and whatever
runner CI lands on.  A metric may instead declare
``"direction": "lower_is_better"``, which flips the gate into a
*ceiling*: the measured value fails when it grows more than the
tolerance above its baseline.  That is reserved for machine-independent
absolutes such as ``compact.bytes_per_speech`` (arena bytes are
deterministic for a given workload, so a bloated encoding is a real
regression, not runner noise).  Non-gated context numbers (absolute
seconds, the pool-reuse amortisation, which depends on core count) are
still captured in the fresh JSON written to ``--fresh-dir`` for the
workflow to upload as artifacts.

Usage::

    python benchmarks/check_regression.py                  # gate CI
    python benchmarks/check_regression.py --tolerance 0.5
    python benchmarks/check_regression.py --update-baselines
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
BASELINE_DIR = BENCH_DIR / "results" / "quick"

#: Gated throughput metrics per benchmark: dotted paths into the quick
#: JSON (integer segments index into lists).  All are same-process
#: speedup ratios.  A metric may widen the default ``--tolerance`` when
#: its quick measurement is short enough (milliseconds) that scheduler
#: noise on a shared runner moves the ratio; the floor still catches a
#: real regression, which collapses such ratios toward 1.
SPECS: list[dict] = [
    {
        "name": "optimizer_kernels",
        "metrics": [
            {"path": "greedy_kernel.speedup_vs_reference"},
            {"path": "lazy_greedy.speedup_vs_reference"},
        ],
    },
    {
        "name": "preprocessing",
        "metrics": [{"path": "fact_generation.speedup"}],
    },
    {
        "name": "serving",
        "metrics": [
            {"path": "sweep.0.speedup", "tolerance": 0.5},
            {"path": "sweep.1.speedup", "tolerance": 0.5},
            # Arena bytes per speech in the columnar store at the
            # largest quick size.  Deterministic for a given workload
            # (no wall clock involved), so it is gated as an absolute
            # with a ceiling: an encoding change that bloats the arenas
            # by >30% fails even if every speedup ratio still passes.
            {"path": "compact.bytes_per_speech", "direction": "lower_is_better"},
            # Deep-traversed dict-store bytes / compact arena bytes.
            # Guards the headline claim that the columnar layout is
            # several times smaller than the dict store it mirrors.
            {"path": "compact.compression_ratio"},
        ],
    },
    {
        "name": "incremental",
        "metrics": [{"path": "discovery.speedup", "tolerance": 0.5}],
    },
    {
        # throughput_ratio = qps while a background maintenance pass
        # runs / qps serving alone.  Noise moves it tens of percent;
        # the regression it guards (serving blocking on maintenance)
        # collapses it toward stream/maintenance-duration, ~0.1.  The
        # smoke also self-verifies store parity and zero request errors.
        # http.throughput_ratio = end-to-end qps through the public
        # HTTP front-end (HttpClient -> VoiceHttpServer over real
        # sockets) / in-process qps on the same request stream — guards
        # the envelope + transport layer staying cheap relative to the
        # engine; a serialization-heavy regression collapses it.
        "name": "serving_service",
        "metrics": [
            {"path": "throughput_ratio", "tolerance": 0.5},
            {"path": "http.throughput_ratio", "tolerance": 0.5},
            # qps with the write-ahead journal on / qps with it off, on
            # the identical stream-plus-appends workload.  Guards the
            # durability layer staying off the request path: a journal
            # write leaking into request latency (or an fsync sneaking
            # into the default flush-only mode) collapses it.  The
            # smoke also self-verifies cold-recovery store parity.
            {"path": "durability.throughput_ratio", "tolerance": 0.5},
            # 2-shard HTTP qps through the router / single-process HTTP
            # qps, both driven by external client processes.  On multi-
            # core runners this is the "sharding buys real throughput"
            # claim; on single-core runners (where multi-process scaling
            # is physically unavailable) it tracks the router's relay
            # tax instead.  A router regression — per-request JSON
            # parsing sneaking in, lost keep-alive pooling, a serialized
            # relay — collapses it on either kind of machine.  The smoke
            # also self-verifies session affinity and post-barrier
            # cross-shard byte parity.
            {"path": "sharded.throughput_ratio", "tolerance": 0.5},
            # Pickled-store spawn template bytes / mmap-attach template
            # bytes.  Guards the zero-copy claim: shards spawned in
            # attach mode must receive a store-free template several
            # times smaller than a full pickled engine.  Template sizes
            # are deterministic for the quick workload, so the ratio is
            # noise-free; the default tolerance still allows drift from
            # unrelated engine-state growth.
            {"path": "sharded.spawn.payload_ratio"},
        ],
    },
]


def metric_value(payload: dict, path: str) -> float | None:
    """The value at a dotted path, or None when the path is absent."""
    node = payload
    for segment in path.split("."):
        try:
            node = node[int(segment)] if segment.isdigit() else node[segment]
        except (KeyError, IndexError, TypeError):
            return None
    return float(node)


def run_quick(name: str, output: Path) -> bool:
    """Run one benchmark's --quick smoke; False on self-check failure."""
    script = BENCH_DIR / f"bench_{name}.py"
    output.parent.mkdir(parents=True, exist_ok=True)
    result = subprocess.run(
        [sys.executable, str(script), "--quick", "--output", str(output)],
        stdout=subprocess.DEVNULL,
    )
    return result.returncode == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop below baseline (default 0.30)",
    )
    parser.add_argument(
        "--fresh-dir",
        default=str(BENCH_DIR / "results" / "ci"),
        help="directory for the freshly measured quick JSON",
    )
    parser.add_argument("--only", default=None, help="run a single benchmark by name")
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="rewrite the committed baselines from this machine's run",
    )
    args = parser.parse_args(argv)

    fresh_dir = Path(args.fresh_dir)
    if args.update_baselines:
        fresh_dir = BASELINE_DIR
    known = [spec["name"] for spec in SPECS]
    if args.only is not None and args.only not in known:
        print(
            f"unknown benchmark {args.only!r}; known: {', '.join(known)}",
            file=sys.stderr,
        )
        return 2
    failures: list[str] = []
    for spec in SPECS:
        name = spec["name"]
        if args.only is not None and name != args.only:
            continue
        fresh_path = fresh_dir / f"{name}.json"
        if not run_quick(name, fresh_path):
            failures.append(f"{name}: --quick smoke failed its self-verification")
            continue
        if args.update_baselines:
            print(f"{name}: baseline rewritten at {fresh_path}")
            continue
        baseline_path = BASELINE_DIR / f"{name}.json"
        if not baseline_path.exists():
            failures.append(f"{name}: no committed baseline at {baseline_path}")
            continue
        baseline = json.loads(baseline_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        for metric in spec["metrics"]:
            path = metric["path"]
            tolerance = max(args.tolerance, metric.get("tolerance", 0.0))
            expected = metric_value(baseline, path)
            measured = metric_value(fresh, path)
            if measured is None:
                # The fresh run must produce every gated metric — a
                # silently vanished metric is itself a regression.
                failures.append(f"{name}.{path}: missing from the fresh run")
                continue
            if expected is None:
                # A metric newer than the committed baseline: report it
                # visibly as skipped instead of crashing, so a PR that
                # adds a gate without regenerating baselines is loud but
                # not broken.
                print(
                    f"{name}.{path}: skipped — measured {measured:.2f} but "
                    "metric is missing from the committed baseline "
                    "(regenerate with --update-baselines)"
                )
                continue
            if metric.get("direction") == "lower_is_better":
                ceiling = expected * (1.0 + tolerance)
                status = "ok" if measured <= ceiling else "REGRESSION"
                print(
                    f"{name}.{path}: baseline {expected:.2f}, measured "
                    f"{measured:.2f}, ceiling {ceiling:.2f} -> {status}"
                )
                if measured > ceiling:
                    failures.append(
                        f"{name}.{path}: {measured:.2f} > {ceiling:.2f} "
                        f"(baseline {expected:.2f} + {tolerance:.0%})"
                    )
                continue
            floor = expected * (1.0 - tolerance)
            status = "ok" if measured >= floor else "REGRESSION"
            line = (
                f"{name}.{path}: baseline {expected:.2f}, measured "
                f"{measured:.2f}, floor {floor:.2f} -> {status}"
            )
            print(line)
            if measured < floor:
                detail = (
                    f"{name}.{path}: {measured:.2f} < {floor:.2f} "
                    f"(baseline {expected:.2f} - {tolerance:.0%})"
                )
                failures.append(detail)
    if failures:
        print("\nbenchmark regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if not args.update_baselines:
        print("\nbenchmark regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
