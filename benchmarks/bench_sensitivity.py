"""Benchmark: sensitivity of the optimized speeches to model assumptions."""

from repro.experiments.sensitivity import (
    run_expectation_model_sensitivity,
    run_prior_sensitivity,
)


def test_prior_sensitivity(benchmark, record_result):
    result = benchmark.pedantic(run_prior_sensitivity, rounds=1, iterations=1)
    record_result(result)
    assert result.rows
    for row in result.rows:
        assert 0.0 <= row["scaled_utility"] <= 1.0 + 1e-9
        assert 0 <= row["facts_shared_with_reference"] <= 3
    # The paper's prior (global average) is reported for every scenario.
    assert {row["prior"] for row in result.rows} == {
        "global_average", "zero", "wrong_constant",
    }


def test_expectation_model_sensitivity(benchmark, record_result):
    result = benchmark.pedantic(run_expectation_model_sensitivity, rounds=1, iterations=1)
    record_result(result)
    by_scenario: dict = {}
    for row in result.rows:
        by_scenario.setdefault(row["scenario"], {})[row["expectation_model"]] = row[
            "scaled_utility"
        ]
    for scenario, utilities in by_scenario.items():
        # The closest model (used for optimization) always dominates the
        # farthest (adversarial) model and yields positive utility.  Averaging
        # listeners may land anywhere in between — or occasionally above,
        # because an average of fact values is not confined to the candidate
        # value set — so no ordering is asserted for them.
        assert utilities["closest"] > 0.0
        assert utilities["closest"] >= utilities["farthest"] - 1e-9
        assert utilities["avg_scope"] >= utilities["farthest"] - 1e-9
