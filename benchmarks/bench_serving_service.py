"""Benchmark: serving-service throughput with and without maintenance.

Runs the asyncio :class:`repro.serving.service.VoiceService` over a
synthesized request stream against the flights dataset and measures
sustained qps and tail latency (p50/p95/p99) in two phases:

* ``serve_only`` — requests only, no background work;
* ``http`` — the same request stream end-to-end through the public
  API: an :class:`repro.api.clients.HttpClient` speaking to a
  :class:`repro.api.http_server.VoiceHttpServer` over real sockets
  (keep-alive connection pool), so the measured latency prices in
  envelope encoding and HTTP framing on both sides;
* ``serve_with_maintenance`` — the in-process request stream while
  held-out rows are appended through the background maintenance
  scheduler (store-snapshot swaps mid-stream, serving never pauses);
* ``sharded`` — the HTTP workload against the multi-process tier at
  1, 2 and 4 shards.  The measured process runs only the server; the
  request stream comes from *spawned client worker processes*, so
  neither client-side encoding nor shard work shares the server's
  core.  The 1-shard rung is the plain single-process
  ``VoiceService`` behind the HTTP front-end (no router), making
  ``sharded.throughput_ratio`` = 2-shard qps / single-process qps the
  "sharding buys real throughput" claim.  The phase self-verifies
  session affinity through the router, and — after a broadcast append
  through the 2-shard manager — that every shard serves the same
  snapshot version with a byte-identical store (the version barrier);
* ``durability`` — the same stream-plus-maintenance workload with the
  write-ahead journal and checkpoints enabled (``data_dir`` set): every
  append is journalled before its ack.  The phase also times a cold
  recovery of the resulting data directory over both paths (newest
  checkpoint + journal suffix, and pure journal replay) and requires
  each recovered store to be byte-identical to the live run's final
  store.

The run self-verifies the serving contract: no request errors on any
phase (HTTP included), at least one snapshot swap, requests completing
*while* maintenance is in flight, and — the store-parity check — the
post-swap store must be byte-identical to running serial ``maintain``
on the exact batches the scheduler's jobs consumed, in order.  Any
violation exits non-zero.

Four regression metrics are gated, all same-machine ratios that are
comparatively stable across runners: ``throughput_ratio`` (qps with
maintenance / qps without — the "serving continues" claim),
``http.throughput_ratio`` (HTTP qps / in-process qps — the "envelope +
transport layer stays cheap" claim), ``durability.throughput_ratio``
(qps with the journal on / qps with it off — the "durability stays
cheap" claim) and ``sharded.throughput_ratio`` (2-shard HTTP qps /
single-process HTTP qps under external client processes — the
"sharding buys real throughput" claim, required >= 1.6x on runners
with at least :data:`MIN_SCALING_CORES` cores; on smaller machines
multi-process scaling is physically unavailable, so the phase instead
floors the relay tax and keeps the correctness probes gated).

Usage::

    python benchmarks/bench_serving_service.py           # full run
    python benchmarks/bench_serving_service.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import functools
import json
import multiprocessing
import os
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import (  # noqa: E402
    HttpClient,
    ServingConfig,
    VoiceHttpServer,
    VoiceRequest,
)
from repro.datasets import load_dataset  # noqa: E402
from repro.reliability import FAILPOINTS  # noqa: E402
from repro.serving import ShardManager, VoiceService  # noqa: E402
from repro.system.worker_pool import WorkerPool  # noqa: E402
from repro.serving.workload import (  # noqa: E402
    drive_client,
    drive_requests,
    holdout_split,
    serving_questions,
    split_batches,
)
from repro.storage import recover_state  # noqa: E402
from repro.system.config import SummarizationConfig  # noqa: E402
from repro.system.engine import VoiceQueryEngine  # noqa: E402
from repro.system.persistence import (  # noqa: E402
    canonical_store_payload,
    store_to_dict,
)
from repro.system.updates import IncrementalMaintainer  # noqa: E402

SERVING = ServingConfig(concurrency=8, max_queue_depth=128)

#: The fault-recovery phase's chaos: one worker process crash during a
#: pool-parallel maintenance pass, and one maintenance failure after
#: the rows were already appended (exercising rollback + retry).
FAULT_SPECS = ("worker.crash:times=1", "maintain.raise:times=1")


def build_engine(rows: int, append_rows: int):
    dataset = load_dataset("flights", num_rows=rows)
    spec = dataset.spec
    config = SummarizationConfig.create(
        table=spec.key,
        dimensions=spec.dimensions,
        targets=spec.targets,
        max_query_length=1,
        algorithm="G-B",
    )
    base, held_out = holdout_split(dataset.table, append_rows)
    engine = VoiceQueryEngine(config, base)
    engine.preprocess()
    return engine, config, base, held_out


def replay_payload(config, base, jobs) -> str:
    """Serial maintenance on the jobs' exact batches; canonical payload."""
    reference = VoiceQueryEngine(config, base)
    reference.preprocess()
    maintainer = IncrementalMaintainer(
        config, base, summarizer=reference.summarizer, realizer=reference.realizer
    )
    for job in jobs:
        maintainer.maintain(job.new_rows, reference.store, workers=0)
    return json.dumps(store_to_dict(reference.store), sort_keys=True)


def run(rows: int, requests: int, append_rows: int, passes: int) -> dict:
    engine, config, base, held_out = build_engine(rows, append_rows)
    questions = serving_questions(engine.store, requests)
    batches = split_batches(held_out, passes)
    append_at = {
        (index + 1) * (len(questions) // (len(batches) + 1)): batch
        for index, batch in enumerate(batches)
    }

    outstanding = SERVING.max_queue_depth // 2

    async def bench():
        async with VoiceService(engine, SERVING) as service:
            # Warm-up: populate realizer/parse caches outside measurement.
            await drive_requests(
                service,
                questions[: min(64, len(questions))],
                max_outstanding=outstanding,
            )

            service.metrics.reset()
            start = time.perf_counter()
            serve_only, _ = await drive_requests(
                service, questions, max_outstanding=outstanding
            )
            serve_only["wall_seconds"] = time.perf_counter() - start

            # End-to-end over the public HTTP API: same questions, same
            # process, but every request crosses envelope encoding, a
            # real socket and the server's HTTP parsing.
            service.metrics.reset()
            async with VoiceHttpServer(service) as server:
                async with HttpClient(
                    server.host, server.port, max_connections=SERVING.concurrency
                ) as client:
                    http = await drive_client(
                        client, questions, max_outstanding=outstanding
                    )

            service.metrics.reset()
            start = time.perf_counter()
            with_maintenance, completed_during = await drive_requests(
                service, questions, append_at, max_outstanding=outstanding
            )
            with_maintenance["wall_seconds"] = time.perf_counter() - start
            jobs = list(service.scheduler.jobs)
            final_store = service.registry.current.store
        return serve_only, http, with_maintenance, completed_during, jobs, final_store

    serve_only, http, with_maintenance, completed_during, jobs, final_store = (
        asyncio.run(bench())
    )
    http["throughput_ratio"] = http["qps"] / serve_only["qps"] if serve_only["qps"] else 0.0

    with_maintenance["snapshot_swaps"] = len(
        [job for job in jobs if job.status == "completed"]
    )
    with_maintenance["completed_during_maintenance"] = completed_during
    with_maintenance["maintenance_seconds"] = sum(job.seconds for job in jobs)
    with_maintenance["jobs"] = [
        {
            "index": job.index,
            "status": job.status,
            "batches": job.batches,
            "rows": job.new_rows.num_rows,
            "rebuilt_speeches": job.report.rebuilt_speeches if job.report else None,
            "seconds": job.seconds,
        }
        for job in jobs
    ]

    store_parity = (
        json.dumps(store_to_dict(final_store), sort_keys=True)
        == replay_payload(config, base, jobs)
    )
    return {
        "workload": {
            "dataset": "flights",
            "rows": rows,
            "requests": requests,
            "append_rows": append_rows,
            "maintenance_passes": len(batches),
            "serving_config": SERVING.to_dict(),
            "speeches": len(engine.store),
        },
        "serve_only": serve_only,
        "http": http,
        "serve_with_maintenance": with_maintenance,
        "throughput_ratio": with_maintenance["qps"] / serve_only["qps"],
        "p99_ratio": (
            with_maintenance["p99_ms"] / serve_only["p99_ms"]
            if serve_only["p99_ms"]
            else 0.0
        ),
        "store_parity": store_parity,
    }


#: Client processes (and keep-alive connections each) that drive the
#: sharded phase.  Spawned, not threaded: the measured process must run
#: only the server, or client-side encoding would share its core and
#: flatten the scaling curve.
CLIENT_PROCS = 4
CLIENT_CONNECTIONS = 8

#: Cores needed before the 2-shard >= 1.6x single-process claim is
#: enforced: router, two shards and at least one client each need a
#: core of their own, or the rungs just time-share one CPU and the
#: relay hop can only cost throughput (total CPU per request is
#: strictly higher through the router).  Below this the phase still
#: runs — correctness probes and the floor on the relay tax stay
#: gated — and the report records why the scaling claim was skipped.
MIN_SCALING_CORES = 4

#: On runners without enough cores for real parallelism the ratio
#: still may not collapse below this: the router's relay must stay
#: cheap even when it buys nothing.
MIN_RELAY_RATIO = 0.4


def _sharded_client_worker(host, port, questions, conns, pipe) -> None:
    """Spawned client: wait for ``go``, drive the stream, report back.

    The ready/go handshake keeps interpreter start-up and import time
    out of the measured window — the parent starts the clock only
    after every worker reported ready.
    """
    pipe.send("ready")
    pipe.recv()  # the go signal

    async def drive():
        async with HttpClient(host, port, max_connections=conns) as client:
            return await drive_client(client, questions, max_outstanding=conns * 2)

    pipe.send(asyncio.run(drive()))
    pipe.close()


def _external_http_qps(host: str, port: int, questions: list[str]) -> dict:
    """Aggregate qps of spawned client workers against one server.

    Blocking — run it in an executor so the server's event loop keeps
    serving while the clients hammer it.  The wall clock spans go to
    last summary, so qps prices in every request of every worker.
    """
    ctx = multiprocessing.get_context("spawn")
    workers, pipes = [], []
    for chunk in (questions[index::CLIENT_PROCS] for index in range(CLIENT_PROCS)):
        parent_pipe, child_pipe = ctx.Pipe()
        worker = ctx.Process(
            target=_sharded_client_worker,
            args=(host, port, chunk, CLIENT_CONNECTIONS, child_pipe),
            daemon=True,
        )
        worker.start()
        child_pipe.close()
        workers.append(worker)
        pipes.append(parent_pipe)
    try:
        for pipe in pipes:
            if pipe.recv() != "ready":  # pragma: no cover - defensive
                raise RuntimeError("sharded client worker failed to start")
        start = time.perf_counter()
        for pipe in pipes:
            pipe.send("go")
        summaries = [pipe.recv() for pipe in pipes]
        wall = time.perf_counter() - start
    finally:
        for worker in workers:
            worker.join(timeout=30)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.kill()
    completed = sum(summary["completed"] for summary in summaries)
    aggregated = {
        "completed": completed,
        "errors": sum(summary["errors"] for summary in summaries),
        "wall_seconds": wall,
        "qps": completed / wall if wall > 0 else 0.0,
    }
    for key in ("p50_ms", "p95_ms", "p99_ms"):
        weighted = sum(s[key] * s["completed"] for s in summaries)
        aggregated[key] = weighted / completed if completed else 0.0
    return aggregated


def _process_rss_bytes(pid: int | None) -> int | None:
    """One process's resident set, from ``/proc`` (None off-Linux)."""
    if pid is None:
        return None
    try:
        with open(f"/proc/{pid}/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def run_sharded(rows: int, requests: int, append_rows: int, passes: int) -> dict:
    """HTTP qps at 1/2/4 shards plus the sharded correctness probes.

    The parent engine is never mutated: shards work on pickled copies
    and the broadcast append lands only in the shard processes and the
    single-process reference, so each rung starts from identical state.
    """
    del passes  # the broadcast append goes out as one batch
    engine, config, base, held_out = build_engine(rows, append_rows)
    questions = serving_questions(engine.store, requests)
    warmup = questions[: min(128, len(questions))]
    phases: dict[str, dict] = {}
    checks: dict = {}

    async def measure(backend) -> dict:
        async with VoiceHttpServer(backend) as server:
            # Warm parse/realizer caches (round-robin reaches every
            # shard) and the router's connection pools from the parent,
            # outside the measured window.
            async with HttpClient(
                server.host, server.port, max_connections=CLIENT_CONNECTIONS
            ) as client:
                await drive_client(client, warmup, max_outstanding=CLIENT_CONNECTIONS)
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                None,
                functools.partial(
                    _external_http_qps, server.host, server.port, questions
                ),
            )

    async def single_process() -> dict:
        async with VoiceService(engine, SERVING) as service:
            return await measure(service)

    async def sharded(shard_count: int) -> dict:
        serving = SERVING.replace(shards=shard_count)
        async with ShardManager(engine, serving) as manager:
            summary = await measure(manager)
            if shard_count != 2:
                return summary
            # Correctness probes ride on the gated 2-shard rung.
            first = await manager.submit(
                VoiceRequest(text=questions[0], session_id="bench-affinity")
            )
            again = await manager.submit(
                VoiceRequest(text="repeat", session_id="bench-affinity")
            )
            described = await manager.describe_session("bench-affinity")
            checks["session_affinity"] = (
                again.text == first.text
                and described is not None
                and described.get("requests") == 2
            )
            batch = manager.build_append_table(held_out.to_dicts())
            await manager.request_append(batch)
            digests = await manager.store_digests()
            checks["snapshot_version"] = manager.version
            checks["barrier_consistent"] = digests["consistent"]
            checks["shard_digests"] = sorted(set(digests["digests"].values()))
            return summary

    async def spawn_probe(snapshot_dir: str | None) -> dict:
        """2-shard spawn cost: payload shipped, wall time, resident set.

        With ``snapshot_dir`` the shards mmap-attach the frozen store
        (the pickle template is store-free); without it each shard
        unpickles a private store copy.  The attach run also swaps one
        append through the barrier and records the digests, so the
        mmap path's byte parity is checked on the same rung it is
        priced on.
        """
        serving = SERVING.replace(shards=2, snapshot_dir=snapshot_dir)
        async with ShardManager(engine, serving) as manager:
            stats = manager.spawn_stats()
            spawn_seconds = stats["spawn_seconds"]
            rss = [_process_rss_bytes(pid) for pid in manager.shard_pids()]
            probe = {
                "mode": stats["mode"],
                "template_bytes": stats["template_bytes"],
                "spawn_seconds_mean": sum(spawn_seconds) / len(spawn_seconds),
                "aggregate_shard_rss_bytes": sum(r for r in rss if r is not None),
            }
            if snapshot_dir is not None:
                probe["snapshot_bytes"] = stats.get("snapshot_bytes", 0)
                batch = manager.build_append_table(held_out.to_dicts())
                await manager.request_append(batch)
                digests = await manager.store_digests()
                probe["digest_consistent"] = digests["consistent"]
                probe["digests"] = sorted(set(digests["digests"].values()))
            return probe

    phases["1"] = asyncio.run(single_process())
    phases["2"] = asyncio.run(sharded(2))
    phases["4"] = asyncio.run(sharded(4))
    spawn_pickle = asyncio.run(spawn_probe(None))
    with tempfile.TemporaryDirectory() as snapshot_dir:
        spawn_attach = asyncio.run(spawn_probe(snapshot_dir))

    # Byte-parity oracle for the broadcast append: a single-process
    # service consuming the identical batch must reach the same store.
    async def reference_digest() -> str:
        reference = VoiceQueryEngine(config, base)
        reference.preprocess()
        async with VoiceService(reference) as service:
            service.request_append(held_out)
            await service.scheduler.quiesce()
            return service.store_digest()["digest"]

    oracle = asyncio.run(reference_digest())
    checks["store_parity"] = (
        checks.get("barrier_consistent", False)
        and checks.get("shard_digests") == [oracle]
    )
    checks["mmap_store_parity"] = (
        spawn_attach.get("digest_consistent", False)
        and spawn_attach.get("digests") == [oracle]
    )
    checks["spawn"] = {
        "pickle": spawn_pickle,
        "attach": spawn_attach,
        # Pickled-store payload / store-free template payload: how much
        # per-shard spawn traffic the snapshot file absorbs.
        "payload_ratio": (
            spawn_pickle["template_bytes"] / spawn_attach["template_bytes"]
            if spawn_attach["template_bytes"]
            else 0.0
        ),
    }

    cores = os.cpu_count() or 1
    report = {
        "client_procs": CLIENT_PROCS,
        "connections_per_proc": CLIENT_CONNECTIONS,
        "cpu_cores": cores,
        "scaling_claim": (
            "gated"
            if cores >= MIN_SCALING_CORES
            else f"skipped: {cores} CPU core(s) < {MIN_SCALING_CORES}"
        ),
        "phases": phases,
        "shard_qps": {count: phase["qps"] for count, phase in phases.items()},
        "throughput_ratio": (
            phases["2"]["qps"] / phases["1"]["qps"] if phases["1"]["qps"] else 0.0
        ),
        "scaling_4x": (
            phases["4"]["qps"] / phases["1"]["qps"] if phases["1"]["qps"] else 0.0
        ),
    }
    report.update(checks)
    return report


def run_durability(
    rows: int, requests: int, append_rows: int, passes: int, baseline_qps: float
) -> dict:
    """The maintenance workload with the journal on, plus cold recovery.

    ``throughput_ratio`` prices the write-ahead journal: qps of the
    identical stream-plus-appends workload with ``data_dir`` set /
    ``serve_with_maintenance``'s qps without it.  After the service
    stops cleanly (final checkpoint written), the data directory is
    recovered cold on both paths — checkpoint + journal suffix, and
    pure journal replay from the pre-processed base — each timed and
    required to be byte-identical to the live run's final store.
    """
    import tempfile

    engine, config, base, held_out = build_engine(rows, append_rows)
    questions = serving_questions(engine.store, requests)
    batches = split_batches(held_out, passes)
    append_at = {
        (index + 1) * (len(questions) // (len(batches) + 1)): batch
        for index, batch in enumerate(batches)
    }
    outstanding = SERVING.max_queue_depth // 2

    with tempfile.TemporaryDirectory(prefix="repro-durability-") as data_dir:
        serving = SERVING.replace(data_dir=data_dir, checkpoint_every_swaps=2)

        async def bench():
            async with VoiceService(engine, serving) as service:
                await drive_requests(
                    service,
                    questions[: min(64, len(questions))],
                    max_outstanding=outstanding,
                )
                service.metrics.reset()
                start = time.perf_counter()
                summary, completed_during = await drive_requests(
                    service, questions, append_at, max_outstanding=outstanding
                )
                summary["wall_seconds"] = time.perf_counter() - start
                await service.scheduler.quiesce()
                jobs = list(service.scheduler.jobs)
                stats = service.durability.stats()
                payload = canonical_store_payload(service.registry.current.store)
            return summary, completed_during, jobs, stats, payload

        summary, completed_during, jobs, stats, live_payload = asyncio.run(bench())

        # Cold recovery: a fresh process rebuilds the base engine (the
        # deterministic pre-processing a restart would run) and recovers
        # the data directory over both paths.
        reference = VoiceQueryEngine(config, base)
        reference.preprocess()

        def recover(use_checkpoint: bool):
            start = time.perf_counter()
            recovered = recover_state(
                data_dir,
                config,
                base_store=reference.store,
                base_table=reference.table,
                summarizer=reference.summarizer,
                realizer=reference.realizer,
                use_checkpoint=use_checkpoint,
            )
            return recovered, time.perf_counter() - start

        from_checkpoint, checkpoint_seconds = recover(use_checkpoint=True)
        from_journal, journal_seconds = recover(use_checkpoint=False)

    summary["throughput_ratio"] = (
        summary["qps"] / baseline_qps if baseline_qps else 0.0
    )
    summary["completed_during_maintenance"] = completed_during
    summary["snapshot_swaps"] = len(
        [job for job in jobs if job.status == "completed"]
    )
    summary["journal_bytes"] = stats["journal_bytes"]
    summary["journalled_batches"] = stats["next_seq"] - 1
    summary["checkpoints_written"] = stats["checkpoints_written"]
    summary["checkpoint_failures"] = stats["checkpoint_failures"]
    summary["recovery"] = {
        "checkpoint_seconds": checkpoint_seconds,
        "checkpoint_replayed_records": from_checkpoint.replayed_records,
        "journal_replay_seconds": journal_seconds,
        "journal_replayed_records": from_journal.replayed_records,
    }
    summary["store_parity"] = (
        canonical_store_payload(from_checkpoint.store) == live_payload
        and canonical_store_payload(from_journal.store) == live_payload
    )
    return summary


def run_fault_recovery(rows: int, requests: int, append_rows: int, passes: int) -> dict:
    """Serve + maintain with injected faults; the recovery contract.

    A full benchmark pass with the :data:`FAULT_SPECS` failpoints armed
    (fixed seed, so the chaos replays identically): the worker pool
    loses a process mid-maintenance and the first maintenance attempt
    fails after appending.  The phase is not regression-gated on
    throughput — its gates are correctness: zero lost requests, at
    least one successful retry, and the post-swap store byte-identical
    to serial maintenance on the *completed* jobs' exact batches.
    """
    engine, config, base, held_out = build_engine(rows, append_rows)
    questions = serving_questions(engine.store, requests)
    batches = split_batches(held_out, passes)
    append_at = {
        (index + 1) * (len(questions) // (len(batches) + 1)): batch
        for index, batch in enumerate(batches)
    }
    serving = SERVING.replace(
        maintenance_workers=2,  # the crash needs a pool to crash in
        maintenance_retry_limit=3,
        maintenance_backoff_base=0.05,
        maintenance_backoff_cap=0.2,
    )
    pool = WorkerPool(2)

    async def bench():
        async with VoiceService(engine, serving, pool=pool) as service:
            start = time.perf_counter()
            summary, completed_during = await drive_requests(
                service, questions, append_at,
                max_outstanding=serving.max_queue_depth // 2,
            )
            await service.scheduler.quiesce()  # let the retry land
            wall = time.perf_counter() - start
            return (
                summary, completed_during, wall,
                list(service.scheduler.jobs), service.reliability(),
                service.registry.current.store,
            )

    try:
        # Armed only for the serving run — pre-processing above was
        # fault-free, like the no-fault phases it is compared against.
        with FAILPOINTS.active(FAULT_SPECS, seed=0):
            summary, completed_during, wall, jobs, reliability, final_store = (
                asyncio.run(bench())
            )
            fired = FAILPOINTS.report()
    finally:
        pool.close()

    completed_jobs = [job for job in jobs if job.status == "completed"]
    summary["wall_seconds"] = wall
    summary["completed_during_maintenance"] = completed_during
    summary["failpoints"] = fired
    summary["reliability"] = reliability
    # Extra time paid to recover: every failed attempt, plus the
    # retry attempts that finally published.
    summary["recovery_seconds"] = sum(
        job.seconds for job in jobs if job.status != "completed" or job.attempt > 1
    )
    summary["jobs"] = [
        {
            "index": job.index,
            "status": job.status,
            "attempt": job.attempt,
            "rows": job.new_rows.num_rows,
            "dropped_rows": job.dropped_rows,
            "seconds": job.seconds,
        }
        for job in jobs
    ]
    summary["store_parity"] = (
        json.dumps(store_to_dict(final_store), sort_keys=True)
        == replay_payload(config, base, completed_jobs)
    )
    return summary


def verify(report: dict) -> list[str]:
    """Self-checks; any failure makes the run exit non-zero."""
    problems = []
    maintenance = report["serve_with_maintenance"]
    if not report["store_parity"]:
        problems.append(
            "post-swap store differs from serial maintenance on the same batches"
        )
    for phase in ("serve_only", "serve_with_maintenance"):
        if report[phase]["errors"]:
            problems.append(f"{phase}: {report[phase]['errors']} request errors")
        if report[phase]["rejected"]:
            problems.append(f"{phase}: {report[phase]['rejected']} rejected requests")
    if report["http"]["errors"]:
        problems.append(f"http: {report['http']['errors']} client-side request errors")
    if report["http"]["completed"] != report["workload"]["requests"]:
        problems.append(
            f"http: only {report['http']['completed']} of "
            f"{report['workload']['requests']} requests completed"
        )
    if maintenance["snapshot_swaps"] < 1:
        problems.append("no maintenance job completed (no snapshot swap)")
    failed = [job for job in maintenance["jobs"] if job["status"] != "completed"]
    if failed:
        problems.append(f"{len(failed)} maintenance jobs did not complete")

    sharded = report["sharded"]
    for count, phase in sharded["phases"].items():
        if phase["errors"]:
            problems.append(
                f"sharded[{count}]: {phase['errors']} client-side request errors"
            )
        if phase["completed"] != report["workload"]["requests"]:
            problems.append(
                f"sharded[{count}]: only {phase['completed']} of "
                f"{report['workload']['requests']} requests completed"
            )
    if not sharded["session_affinity"]:
        problems.append(
            "sharded: session requests did not stay on one shard "
            "(repeat/describe through the router failed)"
        )
    if not sharded["store_parity"]:
        problems.append(
            "sharded: post-barrier shard stores are not byte-identical to "
            "the single-process reference"
        )
    if sharded["snapshot_version"] != 1:
        problems.append(
            "sharded: broadcast append did not advance every shard to "
            f"version 1 (router saw {sharded['snapshot_version']})"
        )
    if not sharded["mmap_store_parity"]:
        problems.append(
            "sharded: mmap-attach shards are not byte-identical to the "
            "single-process reference after the swap"
        )
    spawn = sharded["spawn"]
    if spawn["attach"]["template_bytes"] >= spawn["pickle"]["template_bytes"]:
        problems.append(
            "sharded: the mmap-attach spawn template "
            f"({spawn['attach']['template_bytes']} bytes) is not smaller "
            f"than the pickled-store template ({spawn['pickle']['template_bytes']})"
        )
    if sharded["scaling_claim"] == "gated":
        if sharded["throughput_ratio"] < 1.6:
            problems.append(
                f"sharded: 2-shard qps is only {sharded['throughput_ratio']:.2f}x "
                "the single-process qps (claim requires >= 1.6x)"
            )
    elif sharded["throughput_ratio"] < MIN_RELAY_RATIO:
        problems.append(
            f"sharded: relay tax too high — 2-shard qps fell to "
            f"{sharded['throughput_ratio']:.2f}x single-process on a "
            f"{sharded['cpu_cores']}-core runner (floor {MIN_RELAY_RATIO})"
        )

    durability = report["durability"]
    if not durability["store_parity"]:
        problems.append(
            "durability: a cold-recovered store differs from the live run's "
            "final store"
        )
    if durability["errors"] or durability["rejected"]:
        problems.append(
            f"durability: {durability['errors']} errors, "
            f"{durability['rejected']} rejected requests with the journal on"
        )
    if durability["snapshot_swaps"] < 1:
        problems.append("durability: no maintenance job completed")
    if durability["checkpoints_written"] < 1 or durability["checkpoint_failures"]:
        problems.append(
            f"durability: {durability['checkpoints_written']} checkpoints "
            f"written, {durability['checkpoint_failures']} failed"
        )
    if durability["recovery"]["checkpoint_replayed_records"]:
        problems.append(
            "durability: the clean-stop checkpoint did not cover the journal "
            f"({durability['recovery']['checkpoint_replayed_records']} records "
            "replayed)"
        )

    chaos = report["fault_recovery"]
    lost = (
        chaos["errors"]
        + chaos["rejected"]
        + (report["workload"]["requests"] - chaos["completed"])
    )
    if lost:
        problems.append(f"fault_recovery: {lost} requests lost under injected faults")
    if chaos["reliability"]["maintenance_retry_successes"] < 1:
        problems.append("fault_recovery: no maintenance retry succeeded")
    if chaos["reliability"]["maintenance_dropped_rows"]:
        problems.append(
            f"fault_recovery: {chaos['reliability']['maintenance_dropped_rows']} "
            "appended rows dropped"
        )
    if chaos["reliability"]["worker_respawns"] < 1:
        problems.append("fault_recovery: the injected worker crash never happened")
    if not chaos["store_parity"]:
        problems.append(
            "fault_recovery: post-recovery store differs from serial maintenance "
            "on the completed jobs' batches"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=1200)
    parser.add_argument("--requests", type=int, default=4000)
    parser.add_argument("--append-rows", type=int, default=120, dest="append_rows")
    parser.add_argument(
        "--passes", type=int, default=2, help="background maintenance passes"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload for CI smoke runs",
    )
    parser.add_argument("--output", default=None, help="also write the JSON to a file")
    args = parser.parse_args(argv)

    if args.quick:
        workload = dict(rows=300, requests=2000, append_rows=30, passes=2)
    else:
        workload = dict(
            rows=args.rows,
            requests=args.requests,
            append_rows=args.append_rows,
            passes=args.passes,
        )
    report = run(**workload)
    report["sharded"] = run_sharded(**workload)
    report["durability"] = run_durability(
        **workload, baseline_qps=report["serve_with_maintenance"]["qps"]
    )
    report["fault_recovery"] = run_fault_recovery(**workload)

    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n")

    problems = verify(report)
    if problems:
        for problem in problems:
            print(f"ERROR: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
