"""Benchmark: serving-service throughput with and without maintenance.

Runs the asyncio :class:`repro.serving.service.VoiceService` over a
synthesized request stream against the flights dataset and measures
sustained qps and tail latency (p50/p95/p99) in two phases:

* ``serve_only`` — requests only, no background work;
* ``http`` — the same request stream end-to-end through the public
  API: an :class:`repro.api.clients.HttpClient` speaking to a
  :class:`repro.api.http_server.VoiceHttpServer` over real sockets
  (keep-alive connection pool), so the measured latency prices in
  envelope encoding and HTTP framing on both sides;
* ``serve_with_maintenance`` — the in-process request stream while
  held-out rows are appended through the background maintenance
  scheduler (store-snapshot swaps mid-stream, serving never pauses);
* ``durability`` — the same stream-plus-maintenance workload with the
  write-ahead journal and checkpoints enabled (``data_dir`` set): every
  append is journalled before its ack.  The phase also times a cold
  recovery of the resulting data directory over both paths (newest
  checkpoint + journal suffix, and pure journal replay) and requires
  each recovered store to be byte-identical to the live run's final
  store.

The run self-verifies the serving contract: no request errors on any
phase (HTTP included), at least one snapshot swap, requests completing
*while* maintenance is in flight, and — the store-parity check — the
post-swap store must be byte-identical to running serial ``maintain``
on the exact batches the scheduler's jobs consumed, in order.  Any
violation exits non-zero.

Three regression metrics are gated, all same-process ratios that are
comparatively stable across machines: ``throughput_ratio`` (qps with
maintenance / qps without — the "serving continues" claim),
``http.throughput_ratio`` (HTTP qps / in-process qps — the "envelope +
transport layer stays cheap" claim) and ``durability.throughput_ratio``
(qps with the journal on / qps with it off — the "durability stays
cheap" claim).

Usage::

    python benchmarks/bench_serving_service.py           # full run
    python benchmarks/bench_serving_service.py --quick   # CI smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import HttpClient, ServingConfig, VoiceHttpServer  # noqa: E402
from repro.datasets import load_dataset  # noqa: E402
from repro.reliability import FAILPOINTS  # noqa: E402
from repro.serving import VoiceService  # noqa: E402
from repro.system.worker_pool import WorkerPool  # noqa: E402
from repro.serving.workload import (  # noqa: E402
    drive_client,
    drive_requests,
    holdout_split,
    serving_questions,
    split_batches,
)
from repro.storage import recover_state  # noqa: E402
from repro.system.config import SummarizationConfig  # noqa: E402
from repro.system.engine import VoiceQueryEngine  # noqa: E402
from repro.system.persistence import (  # noqa: E402
    canonical_store_payload,
    store_to_dict,
)
from repro.system.updates import IncrementalMaintainer  # noqa: E402

SERVING = ServingConfig(concurrency=8, max_queue_depth=128)

#: The fault-recovery phase's chaos: one worker process crash during a
#: pool-parallel maintenance pass, and one maintenance failure after
#: the rows were already appended (exercising rollback + retry).
FAULT_SPECS = ("worker.crash:times=1", "maintain.raise:times=1")


def build_engine(rows: int, append_rows: int):
    dataset = load_dataset("flights", num_rows=rows)
    spec = dataset.spec
    config = SummarizationConfig.create(
        table=spec.key,
        dimensions=spec.dimensions,
        targets=spec.targets,
        max_query_length=1,
        algorithm="G-B",
    )
    base, held_out = holdout_split(dataset.table, append_rows)
    engine = VoiceQueryEngine(config, base)
    engine.preprocess()
    return engine, config, base, held_out


def replay_payload(config, base, jobs) -> str:
    """Serial maintenance on the jobs' exact batches; canonical payload."""
    reference = VoiceQueryEngine(config, base)
    reference.preprocess()
    maintainer = IncrementalMaintainer(
        config, base, summarizer=reference.summarizer, realizer=reference.realizer
    )
    for job in jobs:
        maintainer.maintain(job.new_rows, reference.store, workers=0)
    return json.dumps(store_to_dict(reference.store), sort_keys=True)


def run(rows: int, requests: int, append_rows: int, passes: int) -> dict:
    engine, config, base, held_out = build_engine(rows, append_rows)
    questions = serving_questions(engine.store, requests)
    batches = split_batches(held_out, passes)
    append_at = {
        (index + 1) * (len(questions) // (len(batches) + 1)): batch
        for index, batch in enumerate(batches)
    }

    outstanding = SERVING.max_queue_depth // 2

    async def bench():
        async with VoiceService(engine, SERVING) as service:
            # Warm-up: populate realizer/parse caches outside measurement.
            await drive_requests(
                service,
                questions[: min(64, len(questions))],
                max_outstanding=outstanding,
            )

            service.metrics.reset()
            start = time.perf_counter()
            serve_only, _ = await drive_requests(
                service, questions, max_outstanding=outstanding
            )
            serve_only["wall_seconds"] = time.perf_counter() - start

            # End-to-end over the public HTTP API: same questions, same
            # process, but every request crosses envelope encoding, a
            # real socket and the server's HTTP parsing.
            service.metrics.reset()
            async with VoiceHttpServer(service) as server:
                async with HttpClient(
                    server.host, server.port, max_connections=SERVING.concurrency
                ) as client:
                    http = await drive_client(
                        client, questions, max_outstanding=outstanding
                    )

            service.metrics.reset()
            start = time.perf_counter()
            with_maintenance, completed_during = await drive_requests(
                service, questions, append_at, max_outstanding=outstanding
            )
            with_maintenance["wall_seconds"] = time.perf_counter() - start
            jobs = list(service.scheduler.jobs)
            final_store = service.registry.current.store
        return serve_only, http, with_maintenance, completed_during, jobs, final_store

    serve_only, http, with_maintenance, completed_during, jobs, final_store = (
        asyncio.run(bench())
    )
    http["throughput_ratio"] = http["qps"] / serve_only["qps"] if serve_only["qps"] else 0.0

    with_maintenance["snapshot_swaps"] = len(
        [job for job in jobs if job.status == "completed"]
    )
    with_maintenance["completed_during_maintenance"] = completed_during
    with_maintenance["maintenance_seconds"] = sum(job.seconds for job in jobs)
    with_maintenance["jobs"] = [
        {
            "index": job.index,
            "status": job.status,
            "batches": job.batches,
            "rows": job.new_rows.num_rows,
            "rebuilt_speeches": job.report.rebuilt_speeches if job.report else None,
            "seconds": job.seconds,
        }
        for job in jobs
    ]

    store_parity = (
        json.dumps(store_to_dict(final_store), sort_keys=True)
        == replay_payload(config, base, jobs)
    )
    return {
        "workload": {
            "dataset": "flights",
            "rows": rows,
            "requests": requests,
            "append_rows": append_rows,
            "maintenance_passes": len(batches),
            "serving_config": SERVING.to_dict(),
            "speeches": len(engine.store),
        },
        "serve_only": serve_only,
        "http": http,
        "serve_with_maintenance": with_maintenance,
        "throughput_ratio": with_maintenance["qps"] / serve_only["qps"],
        "p99_ratio": (
            with_maintenance["p99_ms"] / serve_only["p99_ms"]
            if serve_only["p99_ms"]
            else 0.0
        ),
        "store_parity": store_parity,
    }


def run_durability(
    rows: int, requests: int, append_rows: int, passes: int, baseline_qps: float
) -> dict:
    """The maintenance workload with the journal on, plus cold recovery.

    ``throughput_ratio`` prices the write-ahead journal: qps of the
    identical stream-plus-appends workload with ``data_dir`` set /
    ``serve_with_maintenance``'s qps without it.  After the service
    stops cleanly (final checkpoint written), the data directory is
    recovered cold on both paths — checkpoint + journal suffix, and
    pure journal replay from the pre-processed base — each timed and
    required to be byte-identical to the live run's final store.
    """
    import tempfile

    engine, config, base, held_out = build_engine(rows, append_rows)
    questions = serving_questions(engine.store, requests)
    batches = split_batches(held_out, passes)
    append_at = {
        (index + 1) * (len(questions) // (len(batches) + 1)): batch
        for index, batch in enumerate(batches)
    }
    outstanding = SERVING.max_queue_depth // 2

    with tempfile.TemporaryDirectory(prefix="repro-durability-") as data_dir:
        serving = SERVING.replace(data_dir=data_dir, checkpoint_every_swaps=2)

        async def bench():
            async with VoiceService(engine, serving) as service:
                await drive_requests(
                    service,
                    questions[: min(64, len(questions))],
                    max_outstanding=outstanding,
                )
                service.metrics.reset()
                start = time.perf_counter()
                summary, completed_during = await drive_requests(
                    service, questions, append_at, max_outstanding=outstanding
                )
                summary["wall_seconds"] = time.perf_counter() - start
                await service.scheduler.quiesce()
                jobs = list(service.scheduler.jobs)
                stats = service.durability.stats()
                payload = canonical_store_payload(service.registry.current.store)
            return summary, completed_during, jobs, stats, payload

        summary, completed_during, jobs, stats, live_payload = asyncio.run(bench())

        # Cold recovery: a fresh process rebuilds the base engine (the
        # deterministic pre-processing a restart would run) and recovers
        # the data directory over both paths.
        reference = VoiceQueryEngine(config, base)
        reference.preprocess()

        def recover(use_checkpoint: bool):
            start = time.perf_counter()
            recovered = recover_state(
                data_dir,
                config,
                base_store=reference.store,
                base_table=reference.table,
                summarizer=reference.summarizer,
                realizer=reference.realizer,
                use_checkpoint=use_checkpoint,
            )
            return recovered, time.perf_counter() - start

        from_checkpoint, checkpoint_seconds = recover(use_checkpoint=True)
        from_journal, journal_seconds = recover(use_checkpoint=False)

    summary["throughput_ratio"] = (
        summary["qps"] / baseline_qps if baseline_qps else 0.0
    )
    summary["completed_during_maintenance"] = completed_during
    summary["snapshot_swaps"] = len(
        [job for job in jobs if job.status == "completed"]
    )
    summary["journal_bytes"] = stats["journal_bytes"]
    summary["journalled_batches"] = stats["next_seq"] - 1
    summary["checkpoints_written"] = stats["checkpoints_written"]
    summary["checkpoint_failures"] = stats["checkpoint_failures"]
    summary["recovery"] = {
        "checkpoint_seconds": checkpoint_seconds,
        "checkpoint_replayed_records": from_checkpoint.replayed_records,
        "journal_replay_seconds": journal_seconds,
        "journal_replayed_records": from_journal.replayed_records,
    }
    summary["store_parity"] = (
        canonical_store_payload(from_checkpoint.store) == live_payload
        and canonical_store_payload(from_journal.store) == live_payload
    )
    return summary


def run_fault_recovery(rows: int, requests: int, append_rows: int, passes: int) -> dict:
    """Serve + maintain with injected faults; the recovery contract.

    A full benchmark pass with the :data:`FAULT_SPECS` failpoints armed
    (fixed seed, so the chaos replays identically): the worker pool
    loses a process mid-maintenance and the first maintenance attempt
    fails after appending.  The phase is not regression-gated on
    throughput — its gates are correctness: zero lost requests, at
    least one successful retry, and the post-swap store byte-identical
    to serial maintenance on the *completed* jobs' exact batches.
    """
    engine, config, base, held_out = build_engine(rows, append_rows)
    questions = serving_questions(engine.store, requests)
    batches = split_batches(held_out, passes)
    append_at = {
        (index + 1) * (len(questions) // (len(batches) + 1)): batch
        for index, batch in enumerate(batches)
    }
    serving = SERVING.replace(
        maintenance_workers=2,  # the crash needs a pool to crash in
        maintenance_retry_limit=3,
        maintenance_backoff_base=0.05,
        maintenance_backoff_cap=0.2,
    )
    pool = WorkerPool(2)

    async def bench():
        async with VoiceService(engine, serving, pool=pool) as service:
            start = time.perf_counter()
            summary, completed_during = await drive_requests(
                service, questions, append_at,
                max_outstanding=serving.max_queue_depth // 2,
            )
            await service.scheduler.quiesce()  # let the retry land
            wall = time.perf_counter() - start
            return (
                summary, completed_during, wall,
                list(service.scheduler.jobs), service.reliability(),
                service.registry.current.store,
            )

    try:
        # Armed only for the serving run — pre-processing above was
        # fault-free, like the no-fault phases it is compared against.
        with FAILPOINTS.active(FAULT_SPECS, seed=0):
            summary, completed_during, wall, jobs, reliability, final_store = (
                asyncio.run(bench())
            )
            fired = FAILPOINTS.report()
    finally:
        pool.close()

    completed_jobs = [job for job in jobs if job.status == "completed"]
    summary["wall_seconds"] = wall
    summary["completed_during_maintenance"] = completed_during
    summary["failpoints"] = fired
    summary["reliability"] = reliability
    # Extra time paid to recover: every failed attempt, plus the
    # retry attempts that finally published.
    summary["recovery_seconds"] = sum(
        job.seconds for job in jobs if job.status != "completed" or job.attempt > 1
    )
    summary["jobs"] = [
        {
            "index": job.index,
            "status": job.status,
            "attempt": job.attempt,
            "rows": job.new_rows.num_rows,
            "dropped_rows": job.dropped_rows,
            "seconds": job.seconds,
        }
        for job in jobs
    ]
    summary["store_parity"] = (
        json.dumps(store_to_dict(final_store), sort_keys=True)
        == replay_payload(config, base, completed_jobs)
    )
    return summary


def verify(report: dict) -> list[str]:
    """Self-checks; any failure makes the run exit non-zero."""
    problems = []
    maintenance = report["serve_with_maintenance"]
    if not report["store_parity"]:
        problems.append(
            "post-swap store differs from serial maintenance on the same batches"
        )
    for phase in ("serve_only", "serve_with_maintenance"):
        if report[phase]["errors"]:
            problems.append(f"{phase}: {report[phase]['errors']} request errors")
        if report[phase]["rejected"]:
            problems.append(f"{phase}: {report[phase]['rejected']} rejected requests")
    if report["http"]["errors"]:
        problems.append(f"http: {report['http']['errors']} client-side request errors")
    if report["http"]["completed"] != report["workload"]["requests"]:
        problems.append(
            f"http: only {report['http']['completed']} of "
            f"{report['workload']['requests']} requests completed"
        )
    if maintenance["snapshot_swaps"] < 1:
        problems.append("no maintenance job completed (no snapshot swap)")
    failed = [job for job in maintenance["jobs"] if job["status"] != "completed"]
    if failed:
        problems.append(f"{len(failed)} maintenance jobs did not complete")

    durability = report["durability"]
    if not durability["store_parity"]:
        problems.append(
            "durability: a cold-recovered store differs from the live run's "
            "final store"
        )
    if durability["errors"] or durability["rejected"]:
        problems.append(
            f"durability: {durability['errors']} errors, "
            f"{durability['rejected']} rejected requests with the journal on"
        )
    if durability["snapshot_swaps"] < 1:
        problems.append("durability: no maintenance job completed")
    if durability["checkpoints_written"] < 1 or durability["checkpoint_failures"]:
        problems.append(
            f"durability: {durability['checkpoints_written']} checkpoints "
            f"written, {durability['checkpoint_failures']} failed"
        )
    if durability["recovery"]["checkpoint_replayed_records"]:
        problems.append(
            "durability: the clean-stop checkpoint did not cover the journal "
            f"({durability['recovery']['checkpoint_replayed_records']} records "
            "replayed)"
        )

    chaos = report["fault_recovery"]
    lost = (
        chaos["errors"]
        + chaos["rejected"]
        + (report["workload"]["requests"] - chaos["completed"])
    )
    if lost:
        problems.append(f"fault_recovery: {lost} requests lost under injected faults")
    if chaos["reliability"]["maintenance_retry_successes"] < 1:
        problems.append("fault_recovery: no maintenance retry succeeded")
    if chaos["reliability"]["maintenance_dropped_rows"]:
        problems.append(
            f"fault_recovery: {chaos['reliability']['maintenance_dropped_rows']} "
            "appended rows dropped"
        )
    if chaos["reliability"]["worker_respawns"] < 1:
        problems.append("fault_recovery: the injected worker crash never happened")
    if not chaos["store_parity"]:
        problems.append(
            "fault_recovery: post-recovery store differs from serial maintenance "
            "on the completed jobs' batches"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=1200)
    parser.add_argument("--requests", type=int, default=4000)
    parser.add_argument("--append-rows", type=int, default=120, dest="append_rows")
    parser.add_argument(
        "--passes", type=int, default=2, help="background maintenance passes"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload for CI smoke runs",
    )
    parser.add_argument("--output", default=None, help="also write the JSON to a file")
    args = parser.parse_args(argv)

    if args.quick:
        workload = dict(rows=300, requests=2000, append_rows=30, passes=2)
    else:
        workload = dict(
            rows=args.rows,
            requests=args.requests,
            append_rows=args.append_rows,
            passes=args.passes,
        )
    report = run(**workload)
    report["durability"] = run_durability(
        **workload, baseline_qps=report["serve_with_maintenance"]["qps"]
    )
    report["fault_recovery"] = run_fault_recovery(**workload)

    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n")

    problems = verify(report)
    if problems:
        for problem in problems:
            print(f"ERROR: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
