"""Benchmark: regenerate Table I (dataset overview)."""

from repro.experiments.table1_datasets import run_table1


def test_table1_datasets(benchmark, record_result):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    record_result(result)
    assert len(result.rows) == 4
    by_name = {row["dataset"]: row for row in result.rows}
    # The synthetic replicas preserve the dimension/target structure of Table I.
    assert by_name["ACS NY"]["synthetic_dims"] == 3
    assert by_name["Stack Overflow"]["synthetic_dims"] == 7
    assert by_name["Flights"]["synthetic_dims"] == 6
    assert by_name["Primaries"]["synthetic_dims"] == 5
