"""Benchmark: regenerate the Section VIII-E ML-baseline comparison.

Expected shape (paper): ML-generated speeches are rated consistently
lower than ours, and their failure modes are redundancy and overly
narrow scopes.
"""

from repro.experiments.ml_baseline_study import run_ml_baseline


def test_ml_baseline(benchmark, record_result):
    result = benchmark.pedantic(
        run_ml_baseline, kwargs={"workers": 30}, rounds=1, iterations=1
    )
    record_result(result)
    assert result.rows, "the ML study should produce per-adjective rows"
    for row in result.rows:
        assert row["our_rating"] > row["ml_rating"], (
            f"our approach should out-rate the ML baseline on {row['adjective']}"
        )
