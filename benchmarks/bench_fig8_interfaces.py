"""Benchmark: regenerate Figure 8 (voice vs visual interface study).

Expected shape (paper): a majority of participants answer faster with
the voice interface; usability ratings of the two interfaces are
comparable.
"""

from repro.experiments.fig8_interfaces import run_figure8


def test_fig8_interfaces(benchmark, record_result):
    result = benchmark.pedantic(
        run_figure8,
        kwargs={"participants": 10, "questions_per_interface": 3, "max_problems": 300},
        rounds=1,
        iterations=1,
    )
    record_result(result)
    assert len(result.rows) == 10

    faster_with_voice = sum(
        1 for row in result.rows if row["vocal_time_s"] < row["visual_time_s"]
    )
    assert faster_with_voice >= 5  # majority faster with voice

    mean_vocal = sum(row["vocal_rating"] for row in result.rows) / len(result.rows)
    mean_visual = sum(row["visual_rating"] for row in result.rows) / len(result.rows)
    assert abs(mean_vocal - mean_visual) < 3.0  # comparable usability
