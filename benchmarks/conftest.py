"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Besides
the timing collected by pytest-benchmark, each benchmark writes the
regenerated rows/series to ``benchmarks/results/<name>.txt`` so the
numbers are inspectable without re-running anything (and feed
EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

# Allow running the benchmarks without installing the package first.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture()
def record_result():
    """Persist an ExperimentResult's text report under benchmarks/results/."""

    def _record(result) -> None:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"{result.name}.txt"
        path.write_text(result.to_text() + "\n")
        # Also echo to stdout so `pytest -s` shows the regenerated rows.
        print()
        print(result.to_text())

    return _record
