"""Benchmark: run-time lookup throughput vs. speech-store size.

Fills speech stores of increasing size with synthetic pre-generated
speeches and measures ``best_match`` throughput (queries per second)
for

* the inverted-index lookup (production path: postings intersection
  over the query's own predicates), and
* the index-free linear scan over the target's bucket (the seed
  implementation, kept as ``SpeechStore.linear_best_match``).

The lookup workload mixes exact hits, containing-subset hits and
misses.  The point of the plot is the scaling shape: the indexed path
should stay ~flat as the store grows while the linear scan degrades
linearly.  Results are emitted as JSON (stdout, and optionally a file);
the run fails if the two paths ever disagree on a lookup.

Usage::

    python benchmarks/bench_serving.py             # full sweep
    python benchmarks/bench_serving.py --quick     # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from itertools import combinations, product
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.model import Fact, Scope, Speech  # noqa: E402
from repro.system.queries import DataQuery  # noqa: E402
from repro.system.speech_store import SpeechStore, StoredSpeech  # noqa: E402

NUM_DIMENSIONS = 6
VALUES_PER_DIMENSION = 14
TARGET = "target"


def _vocabulary() -> dict[str, list[str]]:
    return {
        f"dim{d}": [f"dim{d}_v{v}" for v in range(VALUES_PER_DIMENSION)]
        for d in range(NUM_DIMENSIONS)
    }


def build_store(num_speeches: int, seed: int = 31) -> SpeechStore:
    """A store with ``num_speeches`` speeches over stored lengths 0-3."""
    vocabulary = _vocabulary()
    dimensions = list(vocabulary)
    keys: list[dict[str, str]] = [{}]
    for length in (1, 2, 3):
        for dims in combinations(dimensions, length):
            for values in product(*(vocabulary[d] for d in dims)):
                keys.append(dict(zip(dims, values)))
    if num_speeches > len(keys):
        raise SystemExit(
            f"store size {num_speeches} exceeds the {len(keys)} enumerable keys"
        )
    rng = np.random.default_rng(seed)
    rng.shuffle(keys)

    store = SpeechStore()
    for predicates in keys[:num_speeches]:
        query = DataQuery.create(TARGET, predicates)
        fact = Fact(scope=Scope(predicates), value=1.0, support=1)
        store.add(
            StoredSpeech(query=query, speech=Speech([fact]), text=query.describe())
        )
    return store


def build_lookups(num_lookups: int, seed: int = 47) -> list[DataQuery]:
    """Random run-time queries of length 0-3 over the same vocabulary."""
    vocabulary = _vocabulary()
    dimensions = list(vocabulary)
    rng = np.random.default_rng(seed)
    lookups = []
    for _ in range(num_lookups):
        length = int(rng.integers(0, 4))
        dims = rng.choice(dimensions, size=length, replace=False)
        predicates = {d: vocabulary[d][int(rng.integers(0, VALUES_PER_DIMENSION))] for d in dims}
        lookups.append(DataQuery.create(TARGET, predicates))
    return lookups


def time_lookups(store: SpeechStore, lookups: list[DataQuery], indexed: bool) -> float:
    lookup = store.best_match if indexed else store.linear_best_match
    start = time.perf_counter()
    for query in lookups:
        lookup(query)
    return time.perf_counter() - start


def run(store_sizes: list[int], num_lookups: int) -> dict:
    lookups = build_lookups(num_lookups)
    results = []
    agreement = True
    for size in store_sizes:
        store = build_store(size)
        for query in lookups[: min(200, num_lookups)]:
            indexed = store.best_match(query)
            linear = store.linear_best_match(query)
            if (indexed is None) != (linear is None) or (
                indexed is not None
                and (
                    indexed.stored is not linear.stored
                    or indexed.exact != linear.exact
                    or indexed.overlap != linear.overlap
                )
            ):
                agreement = False
        indexed_seconds = time_lookups(store, lookups, indexed=True)
        linear_seconds = time_lookups(store, lookups, indexed=False)
        results.append(
            {
                "store_size": size,
                "indexed_qps": num_lookups / indexed_seconds,
                "linear_qps": num_lookups / linear_seconds,
                "indexed_microseconds_per_lookup": indexed_seconds / num_lookups * 1e6,
                "linear_microseconds_per_lookup": linear_seconds / num_lookups * 1e6,
                "speedup": linear_seconds / indexed_seconds,
            }
        )
    return {
        "workload": {
            "dimensions": NUM_DIMENSIONS,
            "values_per_dimension": VALUES_PER_DIMENSION,
            "lookups": num_lookups,
        },
        "sweep": results,
        "paths_agree": agreement,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="*", default=[250, 1000, 4000, 16000],
        help="store sizes to sweep",
    )
    parser.add_argument("--lookups", type=int, default=4000)
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny sweep for CI smoke runs (sizes 100/400, 400 lookups)",
    )
    parser.add_argument("--output", default=None, help="also write the JSON to a file")
    args = parser.parse_args(argv)

    if args.quick:
        report = run(store_sizes=[100, 400], num_lookups=400)
    else:
        report = run(store_sizes=args.sizes, num_lookups=args.lookups)

    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n")

    if not report["paths_agree"]:
        print("ERROR: indexed best_match disagrees with the linear scan", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
