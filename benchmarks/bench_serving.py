"""Benchmark: run-time lookup throughput vs. speech-store size.

Fills speech stores of increasing size with synthetic pre-generated
speeches and measures ``best_match`` throughput (queries per second)
for

* the inverted-index lookup (production path: postings intersection
  over the query's own predicates), and
* the index-free linear scan over the target's bucket (the seed
  implementation, kept as ``SpeechStore.linear_best_match``).

The lookup workload mixes exact hits, containing-subset hits and
misses.  The point of the plot is the scaling shape: the indexed path
should stay ~flat as the store grows while the linear scan degrades
linearly.  Results are emitted as JSON (stdout, and optionally a file);
the run fails if the two paths ever disagree on a lookup.

The ``compact`` phase additionally prices the columnar
:class:`repro.store.CompactSpeechStore` against the dict store it
mirrors: bytes per speech (deep-traversed object bytes vs. the compact
arena bytes vs. the frozen file), freeze/attach wall time, and lookup
latency on the identical query stream — with every sampled lookup
verified byte-identical between the two implementations.  The full
sweep sizes this phase at 10^5-10^6 speeches (a wider synthetic
vocabulary than the scaling sweep, which needs only ~16k keys).

Usage::

    python benchmarks/bench_serving.py             # full sweep
    python benchmarks/bench_serving.py --quick     # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from itertools import combinations, product
from pathlib import Path

import numpy as np

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.model import Fact, Scope, Speech  # noqa: E402
from repro.system.queries import DataQuery  # noqa: E402
from repro.system.speech_store import SpeechStore, StoredSpeech  # noqa: E402

NUM_DIMENSIONS = 6
VALUES_PER_DIMENSION = 14
TARGET = "target"

#: Vocabulary for the ``compact`` phase: 8 dims x 32 values enumerate
#: ~1.86M keys at lengths 0-3, enough for the 10^6-speech rung.
COMPACT_DIMENSIONS = 8
COMPACT_VALUES = 32


def _vocabulary(
    dims: int = NUM_DIMENSIONS, values: int = VALUES_PER_DIMENSION
) -> dict[str, list[str]]:
    return {
        f"dim{d}": [f"dim{d}_v{v}" for v in range(values)] for d in range(dims)
    }


def build_store(
    num_speeches: int,
    seed: int = 31,
    dims: int = NUM_DIMENSIONS,
    values: int = VALUES_PER_DIMENSION,
) -> SpeechStore:
    """A store with ``num_speeches`` speeches over stored lengths 0-3."""
    vocabulary = _vocabulary(dims, values)
    dimensions = list(vocabulary)
    keys: list[dict[str, str]] = [{}]
    for length in (1, 2, 3):
        for dims in combinations(dimensions, length):
            for values in product(*(vocabulary[d] for d in dims)):
                keys.append(dict(zip(dims, values)))
    if num_speeches > len(keys):
        raise SystemExit(
            f"store size {num_speeches} exceeds the {len(keys)} enumerable keys"
        )
    rng = np.random.default_rng(seed)
    rng.shuffle(keys)

    store = SpeechStore()
    for predicates in keys[:num_speeches]:
        query = DataQuery.create(TARGET, predicates)
        fact = Fact(scope=Scope(predicates), value=1.0, support=1)
        store.add(
            StoredSpeech(query=query, speech=Speech([fact]), text=query.describe())
        )
    return store


def build_lookups(
    num_lookups: int,
    seed: int = 47,
    dims: int = NUM_DIMENSIONS,
    values: int = VALUES_PER_DIMENSION,
) -> list[DataQuery]:
    """Random run-time queries of length 0-3 over the same vocabulary."""
    vocabulary = _vocabulary(dims, values)
    dimensions = list(vocabulary)
    rng = np.random.default_rng(seed)
    lookups = []
    for _ in range(num_lookups):
        length = int(rng.integers(0, 4))
        chosen = rng.choice(dimensions, size=length, replace=False)
        predicates = {d: vocabulary[d][int(rng.integers(0, values))] for d in chosen}
        lookups.append(DataQuery.create(TARGET, predicates))
    return lookups


def dict_store_bytes(store: SpeechStore) -> int:
    """Deep ``sys.getsizeof`` over the dict store's object graph.

    Deterministic for a given interpreter (unlike an RSS delta), and
    counts every unique object once — index dicts, id lists, stored
    speeches, queries, facts, scopes and strings.
    """
    seen: set[int] = set()
    total = 0
    stack: list = [
        store._id_of_key,
        store._by_id,
        store._by_target,
        store._postings,
        store._by_target_length,
    ]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        total += sys.getsizeof(obj)
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        elif not isinstance(obj, (str, bytes, int, float, bool, type(None))):
            attrs = getattr(obj, "__dict__", None)
            if attrs is not None:
                stack.append(attrs)
            for klass in type(obj).__mro__:
                for slot in getattr(klass, "__slots__", ()):
                    try:
                        stack.append(getattr(obj, slot))
                    except AttributeError:
                        pass
    return total


def time_lookups(store: SpeechStore, lookups: list[DataQuery], indexed: bool) -> float:
    lookup = store.best_match if indexed else store.linear_best_match
    start = time.perf_counter()
    for query in lookups:
        lookup(query)
    return time.perf_counter() - start


def run(store_sizes: list[int], num_lookups: int) -> dict:
    lookups = build_lookups(num_lookups)
    results = []
    agreement = True
    for size in store_sizes:
        store = build_store(size)
        for query in lookups[: min(200, num_lookups)]:
            indexed = store.best_match(query)
            linear = store.linear_best_match(query)
            if (indexed is None) != (linear is None) or (
                indexed is not None
                and (
                    indexed.stored is not linear.stored
                    or indexed.exact != linear.exact
                    or indexed.overlap != linear.overlap
                )
            ):
                agreement = False
        indexed_seconds = time_lookups(store, lookups, indexed=True)
        linear_seconds = time_lookups(store, lookups, indexed=False)
        results.append(
            {
                "store_size": size,
                "indexed_qps": num_lookups / indexed_seconds,
                "linear_qps": num_lookups / linear_seconds,
                "indexed_microseconds_per_lookup": indexed_seconds / num_lookups * 1e6,
                "linear_microseconds_per_lookup": linear_seconds / num_lookups * 1e6,
                "speedup": linear_seconds / indexed_seconds,
            }
        )
    return {
        "workload": {
            "dimensions": NUM_DIMENSIONS,
            "values_per_dimension": VALUES_PER_DIMENSION,
            "lookups": num_lookups,
        },
        "sweep": results,
        "paths_agree": agreement,
    }


def run_compact(store_sizes: list[int], num_lookups: int) -> dict:
    """Price the compact store against the dict store it mirrors."""
    import tempfile

    from repro.store import CompactSpeechStore, attach, freeze

    dims, values = COMPACT_DIMENSIONS, COMPACT_VALUES
    lookups = build_lookups(num_lookups, dims=dims, values=values)
    sweep = []
    agreement = True
    for size in store_sizes:
        store = build_store(size, dims=dims, values=values)
        dict_bytes = dict_store_bytes(store)

        start = time.perf_counter()
        compact = CompactSpeechStore.from_store(store)
        build_seconds = time.perf_counter() - start

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "store.snap"
            start = time.perf_counter()
            freeze(compact, path)
            freeze_seconds = time.perf_counter() - start
            file_bytes = path.stat().st_size
            start = time.perf_counter()
            attached = attach(path)
            attach_seconds = time.perf_counter() - start

            for query in lookups[: min(400, num_lookups)]:
                dict_best = store.best_match(query)
                compact_best = attached.best_match(query)
                if (dict_best is None) != (compact_best is None) or (
                    dict_best is not None
                    and (
                        compact_best.stored != dict_best.stored
                        or compact_best.exact != dict_best.exact
                    )
                ):
                    agreement = False

            dict_seconds = time_lookups(store, lookups, indexed=True)
            start = time.perf_counter()
            for query in lookups:
                attached.best_match(query)
            compact_seconds = time.perf_counter() - start

        sweep.append(
            {
                "store_size": size,
                "dict_bytes_per_speech": dict_bytes / size,
                "compact_bytes_per_speech": compact.nbytes / size,
                "file_bytes_per_speech": file_bytes / size,
                "compression_ratio": dict_bytes / compact.nbytes,
                "build_seconds": build_seconds,
                "freeze_seconds": freeze_seconds,
                "attach_seconds": attach_seconds,
                "dict_microseconds_per_lookup": dict_seconds / num_lookups * 1e6,
                "compact_microseconds_per_lookup": compact_seconds
                / num_lookups
                * 1e6,
                "lookup_ratio": dict_seconds / compact_seconds,
            }
        )
    largest = sweep[-1]
    return {
        "workload": {
            "dimensions": dims,
            "values_per_dimension": values,
            "lookups": num_lookups,
        },
        "sweep": sweep,
        # Headline metrics at the largest size, for the regression gate:
        # arena bytes per speech is deterministic for a given workload.
        "bytes_per_speech": largest["compact_bytes_per_speech"],
        "compression_ratio": largest["compression_ratio"],
        "lookup_ratio": largest["lookup_ratio"],
        "paths_agree": agreement,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="*", default=[250, 1000, 4000, 16000],
        help="store sizes to sweep",
    )
    parser.add_argument(
        "--compact-sizes", type=int, nargs="*", default=[100_000, 1_000_000],
        help="store sizes for the compact-store phase",
    )
    parser.add_argument("--lookups", type=int, default=4000)
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny sweep for CI smoke runs (sizes 100/400, 400 lookups)",
    )
    parser.add_argument("--output", default=None, help="also write the JSON to a file")
    args = parser.parse_args(argv)

    if args.quick:
        report = run(store_sizes=[100, 400], num_lookups=400)
        report["compact"] = run_compact(store_sizes=[2000, 8000], num_lookups=400)
    else:
        report = run(store_sizes=args.sizes, num_lookups=args.lookups)
        report["compact"] = run_compact(
            store_sizes=args.compact_sizes, num_lookups=args.lookups
        )

    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n")

    if not report["paths_agree"]:
        print("ERROR: indexed best_match disagrees with the linear scan", file=sys.stderr)
        return 1
    if not report["compact"]["paths_agree"]:
        print(
            "ERROR: compact best_match disagrees with the dict store",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
