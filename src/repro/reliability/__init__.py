"""Reliability layer: deterministic fault injection for chaos testing.

The serving stack (worker pool, maintenance scheduler, request loop,
HTTP front-end) recovers from worker crashes, failed maintenance passes,
slow offloads and dropped connections.  Proving that requires *causing*
those faults on demand, deterministically, in tests, benchmarks and CI
smokes — which is what :mod:`repro.reliability.faults` provides.
"""

from repro.reliability.faults import (
    FailpointRule,
    FailpointRegistry,
    InjectedFault,
    FAILPOINTS,
)

__all__ = [
    "FAILPOINTS",
    "FailpointRegistry",
    "FailpointRule",
    "InjectedFault",
]
