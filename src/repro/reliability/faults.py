"""Deterministic failpoint injection: named fault sites for chaos tests.

A *failpoint* is a named site in the serving stack where a fault can be
injected on demand: a worker process crash, a stalled context
broadcast, a maintenance pass that raises, a realization offload that
is slow or fails, an HTTP connection dropped mid-response.  Production
code calls :func:`trigger` (or the :func:`fires` / :func:`inject`
helpers) at each site; with no configuration installed the call is a
dict probe that returns None, so the sites cost nothing in normal
operation.

Activation is **seed-deterministic**: a rule decides per *hit* (the
k-th time its site is reached) using only its counters and a
``random.Random`` seeded from ``(seed, site)``, so the same
configuration against the same workload injects the same faults —
chaos runs are replayable, and CI can assert exact recovery behavior.

Rules are written as compact specs, the same format the CLI's
``--failpoint`` flag and :class:`repro.api.config.ServingConfig` accept::

    worker.crash                      # fire once, on the first hit
    maintain.raise:times=2            # fire on the first two hits
    serve.offload_slow:sleep=0.2,times=0   # sleep 200 ms on every hit
    http.drop:after=5,every=3,times=4 # skip 5 hits, then every 3rd, 4x
    worker.crash:p=0.5,seed=7         # each hit fires with prob. 0.5

Keys: ``times`` (max fires; 0 = unlimited; default 1), ``after`` (skip
the first N hits), ``every`` (of the eligible hits, fire each N-th),
``sleep`` (seconds, for sleeping sites), ``p`` (per-hit probability,
resolved with the deterministic RNG), ``mode`` (``raise``, ``sleep`` or
``kill`` — how :func:`inject` applies the rule; sites with
caller-handled actions such as the worker crash ignore it).

The well-known sites
--------------------
``worker.crash``
    Evaluated by the :class:`repro.system.worker_pool.WorkerPool`
    parent at chunk dispatch; a firing hit makes the receiving worker
    process ``os._exit`` instead of computing — a hard crash
    mid-stream.  (Parent-side evaluation keeps the rule's counters in
    one process, so "crash exactly twice" means exactly twice even
    across respawns.)
``worker.broadcast_stall``
    Evaluated per worker at context broadcast; the worker sleeps
    ``sleep`` seconds before installing the context, delaying every
    chunk queued behind it.
``maintain.raise``
    Raised inside the maintenance scheduler's job body — the job fails
    after appending rows, exercising rollback, retry and the breaker.
``serve.offload_slow`` / ``serve.offload_raise``
    Applied inside the service's offload executor: the offloaded
    request sleeps past its deadline, or fails outright.
``http.drop``
    Evaluated by the HTTP server after handling a request; a firing
    hit closes the connection without writing the response.
``journal.write`` / ``journal.sync``
    The write-ahead journal's durability boundary: ``journal.write``
    fires *before* a record is written (a raising rule is a clean
    journal failure — nothing persisted, the append never acked) and
    ``journal.sync`` fires *after* the record is flushed but before the
    caller is acked (a killing rule is the torn-ack crash: the record
    is durable, the client never heard back, and recovery must replay
    it).
``swap.commit``
    Fires in the maintenance scheduler immediately before the snapshot
    swap publishes a finished build — the pre-swap crash site.
``checkpoint.save``
    Fires inside :class:`repro.storage.checkpoint.CheckpointManager`
    after the temporary checkpoint files are written but before the
    atomic rename — a killing rule leaves a half-written checkpoint
    that recovery must ignore.
``recover.replay``
    Fires once per journal record replayed during startup recovery.
``shard.crash``
    Evaluated by the :class:`repro.serving.sharding.ShardManager`
    router before forwarding a request; a firing hit SIGKILLs the
    routed shard process, and the request must fail over to a healthy
    shard while the supervisor respawns the dead one.  (Router-side
    evaluation keeps the counters in one process, like
    ``worker.crash``.)

Besides ``raise`` and ``sleep`` rules support ``mode=kill``: the
process dies with SIGKILL at the site — no cleanup, no atexit, exactly
the crash the durability layer must survive.  Kill rules are meant for
subprocess crash tests (the parent observes exit status -9).
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

#: Canonical site names (any string is accepted; these are the sites
#: wired into the serving stack).
WORKER_CRASH = "worker.crash"
WORKER_BROADCAST_STALL = "worker.broadcast_stall"
MAINTAIN_RAISE = "maintain.raise"
OFFLOAD_SLOW = "serve.offload_slow"
OFFLOAD_RAISE = "serve.offload_raise"
HTTP_DROP = "http.drop"
JOURNAL_WRITE = "journal.write"
JOURNAL_SYNC = "journal.sync"
SWAP_COMMIT = "swap.commit"
CHECKPOINT_SAVE = "checkpoint.save"
RECOVER_REPLAY = "recover.replay"
SHARD_CRASH = "shard.crash"

#: Default sleep for sleeping sites when the spec gives no ``sleep=``.
DEFAULT_SLEEP_SECONDS = 0.1


class InjectedFault(RuntimeError):
    """An error raised by a firing failpoint (never by real code)."""

    def __init__(self, site: str, fire_index: int):
        super().__init__(f"injected fault at failpoint {site!r} (fire #{fire_index})")
        self.site = site
        self.fire_index = fire_index


@dataclass
class FailpointRule:
    """One site's activation rule plus its runtime counters."""

    site: str
    mode: str = "raise"
    times: int = 1  # max fires; 0 = unlimited
    after: int = 0  # hits skipped before the rule becomes eligible
    every: int = 1  # of the eligible hits, fire each N-th
    sleep: float = DEFAULT_SLEEP_SECONDS
    probability: float = 1.0
    seed: int = 0
    hits: int = 0
    fired: int = 0
    _rng: random.Random = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.mode not in ("raise", "sleep", "kill"):
            raise ValueError(f"failpoint {self.site!r}: unknown mode {self.mode!r}")
        if self.times < 0 or self.after < 0 or self.every < 1:
            raise ValueError(
                f"failpoint {self.site!r}: times/after must be >= 0, every >= 1"
            )
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(
                f"failpoint {self.site!r}: probability must be in [0, 1]"
            )
        if self._rng is None:
            # Seeded from (seed, site) so two sites sharing a seed still
            # draw independent, reproducible sequences.
            self._rng = random.Random(f"{self.seed}:{self.site}")

    def decide(self) -> bool:
        """Record one hit; True when the fault fires on this hit."""
        self.hits += 1
        if self.times and self.fired >= self.times:
            return False
        eligible = self.hits - self.after
        if eligible < 1 or (eligible - 1) % self.every != 0:
            return False
        if self.probability < 1.0 and self._rng.random() >= self.probability:
            return False
        self.fired += 1
        return True

    def apply(self) -> None:
        """Raise, sleep or kill according to ``mode`` (for :func:`inject`)."""
        if self.mode == "sleep":
            time.sleep(self.sleep)
        elif self.mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        else:
            raise InjectedFault(self.site, self.fired)


def parse_rule(spec: str, seed: int = 0) -> FailpointRule:
    """Parse one ``site[:key=value,...]`` spec into a rule."""
    site, _, options = spec.strip().partition(":")
    site = site.strip()
    if not site:
        raise ValueError(f"failpoint spec {spec!r} has no site name")
    kwargs: dict = {"seed": seed}
    for option in filter(None, (part.strip() for part in options.split(","))):
        key, separator, value = option.partition("=")
        if not separator:
            raise ValueError(f"failpoint spec {spec!r}: option {option!r} is not key=value")
        key = key.strip()
        value = value.strip()
        try:
            if key in ("times", "after", "every", "seed"):
                kwargs[key] = int(value)
            elif key in ("sleep", "p", "probability"):
                kwargs["probability" if key == "p" else key] = float(value)
            elif key == "mode":
                kwargs[key] = value
            else:
                raise ValueError(f"unknown option {key!r}")
        except ValueError as exc:
            raise ValueError(f"failpoint spec {spec!r}: {exc}") from exc
    return FailpointRule(site=site, **kwargs)


class FailpointRegistry:
    """Thread-safe registry of active failpoint rules (one per site).

    A process normally uses the module-level :data:`FAILPOINTS`
    instance; separate registries exist only for isolated tests.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rules: dict[str, FailpointRule] = {}
        self._specs: tuple[str, ...] = ()
        self._seed = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(self, specs: Iterable[str], seed: int = 0) -> None:
        """Replace the active rules with the parsed ``specs``."""
        specs = tuple(specs)
        rules = {}
        for spec in specs:
            rule = parse_rule(spec, seed=seed)
            if rule.site in rules:
                raise ValueError(f"duplicate failpoint for site {rule.site!r}")
            rules[rule.site] = rule
        with self._lock:
            self._rules = rules
            self._specs = specs
            self._seed = seed

    def ensure(self, specs: Sequence[str], seed: int = 0) -> None:
        """Configure unless the same (specs, seed) are already active.

        Lets the CLI install failpoints before pre-processing and the
        service re-assert the same configuration at start without
        resetting mid-run counters.
        """
        with self._lock:
            if self._specs == tuple(specs) and self._seed == seed:
                return
        self.configure(specs, seed=seed)

    def clear(self) -> None:
        """Deactivate every failpoint."""
        self.configure(())

    @contextmanager
    def active(self, specs: Iterable[str], seed: int = 0) -> Iterator["FailpointRegistry"]:
        """Context manager installing ``specs`` and clearing on exit."""
        self.configure(specs, seed=seed)
        try:
            yield self
        finally:
            self.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def configured(self) -> bool:
        """True when any failpoint rule is installed."""
        return bool(self._rules)

    @property
    def specs(self) -> tuple[str, ...]:
        """The spec strings behind the active rules."""
        return self._specs

    def report(self) -> dict[str, dict[str, int]]:
        """Hit/fire counters per active site (for tests and metrics)."""
        with self._lock:
            return {
                site: {"hits": rule.hits, "fired": rule.fired}
                for site, rule in sorted(self._rules.items())
            }

    # ------------------------------------------------------------------
    # Site API
    # ------------------------------------------------------------------
    def trigger(self, site: str) -> FailpointRule | None:
        """Record a hit at ``site``; the rule when the fault fires, else None."""
        if not self._rules:
            return None
        with self._lock:
            rule = self._rules.get(site)
            if rule is None or not rule.decide():
                return None
            return rule

    def fires(self, site: str) -> bool:
        """True when a hit at ``site`` fires (for caller-handled actions)."""
        return self.trigger(site) is not None

    def inject(self, site: str) -> bool:
        """Trigger and apply: raise (mode ``raise``) or sleep (``sleep``).

        Returns True when a sleeping fault fired, False when nothing
        fired; raises :class:`InjectedFault` for a firing raise rule.
        """
        rule = self.trigger(site)
        if rule is None:
            return False
        rule.apply()
        return True


#: The process-wide registry every wired-in site consults.
FAILPOINTS = FailpointRegistry()
