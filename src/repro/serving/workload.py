"""Serving workload synthesis and the shared request driver.

The CLI ``serve`` smoke and the serving benchmark need realistic
request streams: transcripts the parser maps back onto the store's
queries.  Questions are synthesized from the stored queries themselves
— "what is the <target> for <value> and <value>" — so most requests are
exact store hits (the paper's dominant case), with a configurable share
of *miss* questions built by crossing predicate values of different
stored queries, which exercise the subset-matching/offload path.

:func:`drive_requests` drives a :class:`VoiceService` directly;
:func:`drive_client` drives any :class:`repro.api.clients.VoiceClient`
(the HTTP end-to-end benchmark scenario) and reports client-observed
latency.  :func:`drive_requests` is the one async driver both
service-level consumers use:
client-side pacing within the service's queue bounds, append triggers
at submission indices, failures folded into the service metrics rather
than raised mid-stream, and the summary sampled the moment the last
request completes (before any shutdown work pollutes the clock).
"""

from __future__ import annotations

import asyncio
import time

from repro.relational.table import Table
from repro.system.queries import DataQuery
from repro.system.speech_store import SpeechStore


def holdout_split(table: Table, append_rows: int) -> tuple[Table, Table]:
    """Split a table into a base slice and held-out append rows.

    The table's last ``append_rows`` rows (clamped so the base keeps at
    least two rows) become the simulated update batch.  Shared by the
    ``maintain``/``serve`` CLI commands and the serving benchmark.
    """
    held_out = max(1, min(append_rows, table.num_rows - 2))
    base_count = table.num_rows - held_out
    base = table.mask([index < base_count for index in range(table.num_rows)])
    new_rows = table.mask([index >= base_count for index in range(table.num_rows)])
    return base, new_rows


def split_batches(rows: Table, parts: int) -> list[Table]:
    """Split a table into up to ``parts`` contiguous non-empty batches.

    Shared by the CLI ``serve`` driver and the serving benchmark to
    slice held-out rows into maintenance append batches.
    """
    if parts < 1 or rows.num_rows == 0:
        return []
    parts = min(parts, rows.num_rows)
    size = -(-rows.num_rows // parts)
    return [
        rows.mask([start <= index < start + size for index in range(rows.num_rows)])
        for start in range(0, rows.num_rows, size)
    ]


def question_for_query(query: DataQuery) -> str:
    """A transcript the lexicon parser maps back to ``query``.

    Assumes the query's predicate values are unambiguous in the
    dataset's value lexicon (true for the bundled synthetic datasets).
    """
    target_phrase = query.target.replace("_", " ")
    if not query.predicates:
        return f"what is the {target_phrase}"
    values = " and ".join(str(value) for _, value in query.predicates)
    return f"what is the {target_phrase} for {values}"


def _miss_queries(queries: list[DataQuery]) -> list[DataQuery]:
    """Two-predicate queries crossing values of distinct stored queries.

    Crossing single-predicate queries on different dimensions yields
    subsets that are usually *not* stored exactly (stores built with
    ``max_query_length`` 1 never store them), so their questions take
    the subset-matching path instead of the exact-probe fast path.
    """
    singles: dict[str, list[DataQuery]] = {}
    for query in queries:
        if query.length == 1:
            singles.setdefault(query.target, []).append(query)
    misses = []
    for target, candidates in singles.items():
        for first in candidates:
            for second in candidates:
                first_col = first.predicates[0][0]
                second_col, second_val = second.predicates[0]
                if first_col == second_col:
                    continue
                predicates = dict(first.predicate_map)
                predicates[second_col] = second_val
                misses.append(DataQuery.create(target, predicates))
    return misses


def serving_questions(
    store: SpeechStore, count: int, miss_every: int = 4
) -> list[str]:
    """``count`` transcripts cycling over the store's queries.

    Every ``miss_every``-th question (when crossable predicate pairs
    exist) targets a subset that is typically not stored exactly,
    exercising the non-exact lookup path; the rest are exact hits in
    store insertion order.
    """
    queries = [stored.query for stored in store]
    if not queries:
        raise ValueError("cannot synthesize a workload from an empty store")
    misses = _miss_queries(queries)
    questions = []
    hit_index = miss_index = 0
    for position in range(count):
        if misses and miss_every and position % miss_every == miss_every - 1:
            questions.append(question_for_query(misses[miss_index % len(misses)]))
            miss_index += 1
        else:
            questions.append(question_for_query(queries[hit_index % len(queries)]))
            hit_index += 1
    return questions


async def drive_requests(
    service,
    questions: list[str],
    append_at: dict[int, object] | None = None,
    max_outstanding: int = 32,
    tick: int = 32,
) -> tuple[dict, int]:
    """Submit every question, triggering appends at the given indices.

    ``append_at`` maps a submission index to one append batch (or a
    list of batches) handed to ``service.request_append`` just before
    that submission.  A client-side semaphore keeps at most
    ``max_outstanding`` requests outstanding, so a well-paced driver
    never trips the service's own admission control; every ``tick``
    submissions the loop yields so workers and maintenance interleave.

    Request failures are not raised here — they surface through the
    service metrics (``errors``/``rejected``) for the caller to gate
    on.  Returns ``(summary, completed_during_maintenance)``: the
    metrics summary sampled the moment the last request completed
    (before the trailing maintenance drain, so qps and percentiles
    cover exactly the request window), and the number of requests
    completed after the first append was requested — the direct
    evidence that serving continued during maintenance.
    """
    batches_at: dict[int, list] = {}
    for index, batch in (append_at or {}).items():
        batches_at[index] = list(batch) if isinstance(batch, list) else [batch]
    limiter = asyncio.Semaphore(max(1, max_outstanding))
    completed_at_first_append = None

    async def one(text: str):
        async with limiter:
            return await service.submit(text)

    tasks = []
    for index, text in enumerate(questions):
        for batch in batches_at.get(index, ()):
            if completed_at_first_append is None:
                completed_at_first_append = service.metrics.completed
            service.request_append(batch)
        tasks.append(asyncio.ensure_future(one(text)))
        if tick and index % tick == 0:
            await asyncio.sleep(0)
    await asyncio.gather(*tasks, return_exceptions=True)
    summary = service.metrics.summary()
    completed_during = 0
    if batches_at:
        completed_during = service.metrics.completed - (
            completed_at_first_append or 0
        )
        await service.scheduler.quiesce()
    return summary, completed_during


async def drive_client(
    client,
    questions: list[str],
    max_outstanding: int = 32,
    tick: int = 32,
) -> dict:
    """Submit every question through a :class:`repro.api.clients.VoiceClient`.

    The transport-side counterpart of :func:`drive_requests`: the same
    client-side pacing, but observed *from the caller's side of the
    transport*, so the returned summary prices in everything between
    the client and the engine (for ``HttpClient``: envelope encoding,
    the socket round-trip and server-side HTTP parsing).  Failures are
    counted, not raised.  Returns a summary dict with ``completed``,
    ``errors``, ``wall_seconds``, ``qps`` and client-observed
    ``p50_ms``/``p95_ms``/``p99_ms``.
    """
    from repro.serving.service import ServiceMetrics

    limiter = asyncio.Semaphore(max(1, max_outstanding))
    latencies: list[float] = []
    errors = 0

    async def one(text: str) -> None:
        nonlocal errors
        async with limiter:
            started = time.perf_counter()
            try:
                await client.ask(text)
            except Exception:
                errors += 1
                return
            latencies.append(time.perf_counter() - started)

    started = time.perf_counter()
    tasks = []
    for index, text in enumerate(questions):
        tasks.append(asyncio.ensure_future(one(text)))
        if tick and index % tick == 0:
            await asyncio.sleep(0)
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - started
    ordered = sorted(latencies)
    return {
        "completed": len(latencies),
        "errors": errors,
        "wall_seconds": wall,
        "qps": len(latencies) / wall if wall > 0 else 0.0,
        "p50_ms": ServiceMetrics._percentile(ordered, 0.50) * 1000.0,
        "p95_ms": ServiceMetrics._percentile(ordered, 0.95) * 1000.0,
        "p99_ms": ServiceMetrics._percentile(ordered, 0.99) * 1000.0,
    }
