"""Serving layer: run the voice engine as a long-lived concurrent service.

The paper's headline result is near-zero run-time latency because all
optimization happens during pre-processing (Figure 10).  This package
turns that property into a deployable service:

* :mod:`repro.serving.snapshots` — immutable :class:`StoreSnapshot`
  handles over :class:`repro.system.speech_store.SpeechStore` with an
  atomic swap, so serving always reads a consistent store while
  maintenance builds the next one;
* :mod:`repro.serving.scheduler` — a re-entrant background job queue
  that coalesces appended-row batches and runs incremental maintenance
  on the shared worker pool without pausing serving;
* :mod:`repro.serving.service` — the asyncio request loop
  (:class:`VoiceService`) with admission control, a bounded executor
  for heavyweight requests, and per-request/aggregate metrics;
* :mod:`repro.serving.sharding` — the multi-process tier:
  :class:`ShardManager` spawns N engine processes behind an asyncio
  router with consistent-hash session affinity, broadcast snapshot
  swaps with a version barrier, aggregated metrics and crash-respawn
  supervision.
"""

from repro.serving.scheduler import MaintenanceJob, MaintenanceScheduler
from repro.serving.service import (
    ServiceMetrics,
    ServiceOverloadedError,
    VoiceService,
)
from repro.serving.sharding import ConsistentHashRing, ShardManager
from repro.serving.snapshots import SnapshotRegistry, StoreSnapshot

__all__ = [
    "ConsistentHashRing",
    "MaintenanceJob",
    "MaintenanceScheduler",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "ShardManager",
    "SnapshotRegistry",
    "StoreSnapshot",
    "VoiceService",
]
