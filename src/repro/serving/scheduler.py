"""Re-entrant background maintenance scheduler for the serving service.

ROADMAP named the missing piece after PR 3's worker pool: "an async job
queue with re-entrant scheduling so one deployment can interleave
maintenance passes with live serving".  This module is that queue.

The scheduler accepts appended-row batches at any time
(:meth:`MaintenanceScheduler.request_append` is re-entrant: calling it
while a maintenance job is running simply queues more work) and runs at
most one maintenance job at a time on a dedicated thread, so the
asyncio request loop keeps serving while
:meth:`repro.system.updates.IncrementalMaintainer.maintain` crunches —
optionally fanning re-summarization out over a shared
:class:`repro.system.worker_pool.WorkerPool` (the CLI's ``--pool keep``
pool).  Batches that arrive while a job is in flight are *coalesced*:
the next job concatenates every queued batch into one append, paying
one affected-query discovery and one store swap for all of them.

Each job builds against a clone of the current snapshot
(:meth:`StoreSnapshot.begin_build`), so serving reads are never
disturbed, and publishes the maintained store with one atomic
:meth:`SnapshotRegistry.swap` on completion.  Because jobs are
serialized and each starts from the previous swap, the final store is
identical to running ``maintain`` serially on the same job batches in
the same order — the parity the serving benchmark and property tests
verify byte-for-byte.

Shutdown is clean mid-job: :meth:`stop` lets the in-flight job finish
(it owns a half-built clone nobody else sees) and either drains or
cancels the still-queued batches.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import reduce
from typing import Sequence

from repro.relational.table import Table
from repro.serving.snapshots import SnapshotRegistry
from repro.system.updates import IncrementalMaintainer, MaintenanceReport
from repro.system.worker_pool import WorkerPool


@dataclass
class MaintenanceJob:
    """Record of one maintenance job the scheduler ran (or cancelled).

    Attributes
    ----------
    index:
        1-based sequence number in scheduling order.
    batches:
        How many :meth:`request_append` batches were coalesced into it.
    new_rows:
        The coalesced append table the job consumed (kept so parity
        checks can replay the exact batches serially).
    status:
        ``completed``, ``failed`` or ``cancelled``.
    report:
        The maintainer's report (completed jobs only).
    snapshot_version:
        Version of the snapshot the job published (completed jobs only).
    error:
        Repr of the exception (failed jobs only).
    seconds:
        Wall-clock time of the job including the snapshot swap.
    """

    index: int
    batches: int
    new_rows: Table
    status: str
    report: MaintenanceReport | None = None
    snapshot_version: int | None = None
    error: str | None = None
    seconds: float = 0.0


class MaintenanceScheduler:
    """Runs incremental maintenance in the background, swapping snapshots.

    Parameters
    ----------
    maintainer:
        The incremental maintainer; its table advances with every job.
    registry:
        Snapshot registry shared with the request path.
    pool:
        Optional shared :class:`WorkerPool` for the re-summarization
        fan-out (one deployment-lifetime pool, warmed up at service
        start).  None runs each job serially in the scheduler thread.
    workers:
        Per-job worker count when no shared pool is given (forwarded to
        ``maintain(workers=...)``); ignored when ``pool`` is set.
    on_swap:
        Optional callback invoked after each successful snapshot swap
        with the maintainer's updated table.  Runs on the maintenance
        executor thread (it may do O(table) work, e.g. rebuilding a
        parser lexicon) — implementations must restrict themselves to
        atomic attribute swaps visible to the event loop.

    The scheduler is asyncio-native: construct and drive it from one
    event loop (:meth:`start`, :meth:`request_append`, :meth:`stop`).
    Only the maintenance computation itself leaves the loop, onto a
    dedicated single-thread executor.
    """

    def __init__(
        self,
        maintainer: IncrementalMaintainer,
        registry: SnapshotRegistry,
        pool: WorkerPool | None = None,
        workers: int = 0,
        on_swap=None,
    ):
        self._maintainer = maintainer
        self._registry = registry
        self._pool = pool
        self._workers = int(workers)
        self._on_swap = on_swap
        self._pending: list[Table] = []
        self._jobs: list[MaintenanceJob] = []
        self._job_counter = 0
        self._active_job: MaintenanceJob | None = None
        self._task: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None
        self._closing = False
        self._executor: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def jobs(self) -> Sequence[MaintenanceJob]:
        """Finished (completed/failed/cancelled) jobs in scheduling order."""
        return tuple(self._jobs)

    @property
    def active_job(self) -> MaintenanceJob | None:
        """The job currently maintaining, if any."""
        return self._active_job

    @property
    def pending_batches(self) -> int:
        """Appended-row batches queued but not yet picked up by a job."""
        return len(self._pending)

    @property
    def running(self) -> bool:
        """True between :meth:`start` and the end of :meth:`stop`."""
        return self._task is not None and not self._task.done()

    @property
    def table(self) -> Table:
        """The maintainer's current table (advances with every job)."""
        return self._maintainer.table

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the scheduler's worker task on the running event loop."""
        if self.running:
            raise RuntimeError("maintenance scheduler already started")
        self._closing = False
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="maintenance"
        )
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="maintenance-scheduler"
        )

    async def stop(self, drain: bool = True) -> None:
        """Stop the scheduler, finishing the in-flight job first.

        ``drain=True`` runs every still-queued batch before stopping
        (one final coalesced job); ``drain=False`` cancels the queued
        batches (recorded as ``cancelled`` jobs) and only waits for the
        job already in flight.  Either way the last published snapshot
        is complete — a job is never abandoned half-applied.
        """
        if self._task is None:
            return
        self._closing = True
        cancelled: list[Table] = []
        if not drain and self._pending:
            cancelled, self._pending = self._pending, []
        self._wake.set()
        await self._task
        self._task = None
        if cancelled:
            # Recorded only after the worker exited, so the in-flight
            # job (which finished first) keeps its earlier index and
            # position in the job log.
            self._jobs.append(
                MaintenanceJob(
                    index=self._next_index(),
                    batches=len(cancelled),
                    new_rows=_concat(cancelled),
                    status="cancelled",
                )
            )
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Job submission
    # ------------------------------------------------------------------
    def request_append(self, new_rows: Table) -> None:
        """Queue appended rows for background maintenance (re-entrant).

        Returns immediately; the rows are folded into the next job.
        Batches queued while a job is running are coalesced into one
        follow-up job.  Empty batches are ignored.
        """
        if self._task is None or self._closing:
            raise RuntimeError("maintenance scheduler is not accepting appends")
        if new_rows.num_rows == 0:
            return
        self._pending.append(new_rows)
        self._idle.clear()
        self._wake.set()

    async def quiesce(self) -> None:
        """Wait until every queued batch has been maintained and swapped."""
        if self._idle is not None:
            await self._idle.wait()

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._pending:
                batches, self._pending = self._pending, []
                await self._run_job(loop, batches)
            if not self._pending:
                self._idle.set()
            if self._closing:
                return

    def _next_index(self) -> int:
        """The next unique job index (allocation order, never reused)."""
        self._job_counter += 1
        return self._job_counter

    async def _run_job(self, loop: asyncio.AbstractEventLoop, batches: list[Table]) -> None:
        job = MaintenanceJob(
            index=self._next_index(),
            batches=len(batches),
            new_rows=_concat(batches),
            status="running",
        )
        self._active_job = job
        start = time.perf_counter()
        table_before = self._maintainer.table
        try:
            build, job.report = await loop.run_in_executor(
                self._executor, self._maintain, job.new_rows
            )
            job.snapshot_version = self._registry.swap(build).version
            job.status = "completed"
            if self._on_swap is not None:
                await loop.run_in_executor(
                    self._executor, self._on_swap, self._maintainer.table
                )
        except Exception as exc:
            job.status = "failed"
            job.error = repr(exc)
            # maintain() appends rows before re-summarizing; undo so
            # the maintainer stays consistent with the last snapshot
            # that actually published (the failed build is discarded).
            self._maintainer.rollback_table(table_before)
        finally:
            job.seconds = time.perf_counter() - start
            self._active_job = None
            self._jobs.append(job)

    def _maintain(self, new_rows: Table):
        """One maintenance pass (runs entirely on the scheduler thread).

        Clones the current snapshot here too — the clone is O(store)
        and only reads the immutable published snapshot, so doing it
        off the event loop keeps request serving unstalled however
        large the store grows.
        """
        build = self._registry.current.begin_build()
        report = self._maintainer.maintain(
            new_rows, build, workers=self._workers, pool=self._pool
        )
        return build, report


def _concat(batches: list[Table]) -> Table:
    """Concatenate append batches in arrival order."""
    return reduce(lambda left, right: left.concat(right), batches)
