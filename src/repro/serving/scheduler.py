"""Re-entrant background maintenance scheduler for the serving service.

ROADMAP named the missing piece after PR 3's worker pool: "an async job
queue with re-entrant scheduling so one deployment can interleave
maintenance passes with live serving".  This module is that queue.

The scheduler accepts appended-row batches at any time
(:meth:`MaintenanceScheduler.request_append` is re-entrant: calling it
while a maintenance job is running simply queues more work) and runs at
most one maintenance job at a time on a dedicated thread, so the
asyncio request loop keeps serving while
:meth:`repro.system.updates.IncrementalMaintainer.maintain` crunches —
optionally fanning re-summarization out over a shared
:class:`repro.system.worker_pool.WorkerPool` (the CLI's ``--pool keep``
pool).  Batches that arrive while a job is in flight are *coalesced*:
the next job concatenates every queued batch into one append, paying
one affected-query discovery and one store swap for all of them.

Each job builds against a clone of the current snapshot
(:meth:`StoreSnapshot.begin_build`), so serving reads are never
disturbed, and publishes the maintained store with one atomic
:meth:`SnapshotRegistry.swap` on completion.  Because jobs are
serialized and each starts from the previous swap, the final store is
identical to running ``maintain`` serially on the same job batches in
the same order — the parity the serving benchmark and property tests
verify byte-for-byte.

Failures are survived, not just recorded.  A failed job rolls the
maintainer back (the half-applied append would otherwise corrupt the
next pass), then its exact coalesced payload is **retried** with capped
exponential backoff and deterministic jitter, strictly before any
batches that arrived later — so the sequence of *published* appends is
the same as a no-fault run.  Only after ``retry_limit`` retries are the
rows declared lost: the final job records them in ``dropped_rows``
(previously they vanished silently) and the total is surfaced through
the service metrics.  A **circuit breaker** opens after
``breaker_threshold`` consecutive failures: new appends are rejected
with :class:`repro.api.errors.MaintenanceUnavailableError` until a
cooldown elapses and a half-open probe job succeeds.

Shutdown is clean mid-job: :meth:`stop` lets the in-flight job finish
(it owns a half-built clone nobody else sees) and either drains or
cancels the still-queued batches.  Draining runs pending retries
immediately (their backoff wait is skipped, their attempt budget is
not).

With a :class:`repro.storage.recovery.DurabilityCoordinator` attached,
accepted batches additionally survive *process death*: every batch is
journaled **before** :meth:`request_append` returns (the ack implies
durability), marked applied after its snapshot swap commits, and
marked dropped when retries are exhausted — so a restart replays
exactly the accepted-but-unapplied batches.  Batches cancelled by
``stop(drain=False)`` stay unapplied in the journal and are recovered
on the next start: with durability on, a no-drain shutdown defers the
work instead of discarding it.
"""

from __future__ import annotations

import asyncio
import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import reduce
from typing import Sequence

from repro.api.errors import MaintenanceUnavailableError
from repro.relational.table import Table
from repro.reliability import faults
from repro.serving.snapshots import SnapshotRegistry
from repro.storage.recovery import DurabilityCoordinator
from repro.system.updates import IncrementalMaintainer, MaintenanceReport
from repro.system.worker_pool import WorkerPool

#: Default retries per failed payload (on top of its first attempt).
DEFAULT_RETRY_LIMIT = 3

#: Default backoff: base * 2**(attempt-1), capped, plus <= 10% jitter.
DEFAULT_BACKOFF_BASE_SECONDS = 0.05
DEFAULT_BACKOFF_CAP_SECONDS = 2.0

#: Default consecutive failures before the circuit breaker opens.
DEFAULT_BREAKER_THRESHOLD = 5

#: Default seconds the breaker stays open before a half-open probe.
DEFAULT_BREAKER_COOLDOWN_SECONDS = 1.0


@dataclass
class MaintenanceJob:
    """Record of one maintenance job the scheduler ran (or cancelled).

    Attributes
    ----------
    index:
        1-based sequence number in scheduling order.
    batches:
        How many :meth:`request_append` batches were coalesced into it.
    new_rows:
        The coalesced append table the job consumed (kept so parity
        checks can replay the exact batches serially).
    status:
        ``completed``, ``failed`` or ``cancelled``.
    report:
        The maintainer's report (completed jobs only).
    snapshot_version:
        Version of the snapshot the job published (completed jobs only).
    error:
        Repr of the exception (failed jobs only).
    seconds:
        Wall-clock time of the job including the snapshot swap.
    attempt:
        1 for a payload's first job; retries of the same payload count
        up from 2 (each attempt is its own job record).
    dropped_rows:
        Rows permanently lost with this job — non-zero only on the
        final failed attempt of a payload whose retries were exhausted
        (or a retry payload cancelled by ``stop(drain=False)``).
        Before the retry layer these rows vanished silently in
        ``rollback_table``; now every lost row is accounted for here
        and in the service metrics.
    journal_seqs:
        Write-ahead journal seqs of the job's batches (empty without a
        durability coordinator).
    """

    index: int
    batches: int
    new_rows: Table
    status: str
    report: MaintenanceReport | None = None
    snapshot_version: int | None = None
    error: str | None = None
    seconds: float = 0.0
    attempt: int = 1
    dropped_rows: int = 0
    journal_seqs: tuple[int, ...] = ()


class MaintenanceScheduler:
    """Runs incremental maintenance in the background, swapping snapshots.

    Parameters
    ----------
    maintainer:
        The incremental maintainer; its table advances with every job.
    registry:
        Snapshot registry shared with the request path.
    pool:
        Optional shared :class:`WorkerPool` for the re-summarization
        fan-out (one deployment-lifetime pool, warmed up at service
        start).  None runs each job serially in the scheduler thread.
    workers:
        Per-job worker count when no shared pool is given (forwarded to
        ``maintain(workers=...)``); ignored when ``pool`` is set.
    on_swap:
        Optional callback invoked after each successful snapshot swap
        with the maintainer's updated table.  Runs on the maintenance
        executor thread (it may do O(table) work, e.g. rebuilding a
        parser lexicon) — implementations must restrict themselves to
        atomic attribute swaps visible to the event loop.
    retry_limit:
        Retries granted to a failed payload beyond its first attempt
        before its rows are declared dropped.
    backoff_base / backoff_cap:
        Exponential backoff between retries of the same payload:
        ``min(cap, base * 2**(attempt-1))`` seconds, plus up to 10%
        deterministic jitter.
    breaker_threshold:
        Consecutive job failures that open the circuit breaker.
    breaker_cooldown:
        Seconds the breaker stays open before allowing a half-open
        probe append.
    retry_seed:
        Seed of the jitter RNG, so chaos runs back off identically.
    durability:
        Optional :class:`DurabilityCoordinator`.  When set, every
        accepted batch is journaled before :meth:`request_append`
        returns its seq, applied seqs are committed (and checkpoints
        taken) after each swap, and exhausted payloads are marked
        dropped — the scheduler's ack becomes a durable promise.

    The scheduler is asyncio-native: construct and drive it from one
    event loop (:meth:`start`, :meth:`request_append`, :meth:`stop`).
    Only the maintenance computation itself leaves the loop, onto a
    dedicated single-thread executor.
    """

    def __init__(
        self,
        maintainer: IncrementalMaintainer,
        registry: SnapshotRegistry,
        pool: WorkerPool | None = None,
        workers: int = 0,
        on_swap=None,
        retry_limit: int = DEFAULT_RETRY_LIMIT,
        backoff_base: float = DEFAULT_BACKOFF_BASE_SECONDS,
        backoff_cap: float = DEFAULT_BACKOFF_CAP_SECONDS,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown: float = DEFAULT_BREAKER_COOLDOWN_SECONDS,
        retry_seed: int = 0,
        durability: DurabilityCoordinator | None = None,
    ):
        if retry_limit < 0:
            raise ValueError(f"retry_limit must be >= 0, got {retry_limit}")
        if backoff_base < 0 or backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        if breaker_threshold < 1:
            raise ValueError(f"breaker_threshold must be >= 1, got {breaker_threshold}")
        if breaker_cooldown < 0:
            raise ValueError(f"breaker_cooldown must be >= 0, got {breaker_cooldown}")
        self._maintainer = maintainer
        self._registry = registry
        self._pool = pool
        self._workers = int(workers)
        self._on_swap = on_swap
        self._retry_limit = int(retry_limit)
        self._backoff_base = float(backoff_base)
        self._backoff_cap = float(backoff_cap)
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_cooldown = float(breaker_cooldown)
        self._jitter = random.Random(retry_seed)
        self._durability = durability
        #: Queued batches as (journal seq or None, rows).
        self._pending: list[tuple[int | None, Table]] = []
        #: A failed payload awaiting retry: (rows, journal seqs,
        #: attempts so far, earliest monotonic time the retry may run).
        #: At most one — jobs are serialized, so at most one payload
        #: can be failing.
        self._retry: tuple[Table, tuple[int, ...], int, float] | None = None
        self._retry_count = 0
        self._retry_successes = 0
        self._dropped_rows = 0
        self._consecutive_failures = 0
        self._breaker_opened_at: float | None = None
        self._jobs: list[MaintenanceJob] = []
        self._job_counter = 0
        self._active_job: MaintenanceJob | None = None
        self._task: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None
        self._closing = False
        self._executor: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def jobs(self) -> Sequence[MaintenanceJob]:
        """Finished (completed/failed/cancelled) jobs in scheduling order."""
        return tuple(self._jobs)

    @property
    def active_job(self) -> MaintenanceJob | None:
        """The job currently maintaining, if any."""
        return self._active_job

    @property
    def pending_batches(self) -> int:
        """Appended-row batches queued but not yet picked up by a job."""
        return len(self._pending)

    @property
    def running(self) -> bool:
        """True between :meth:`start` and the end of :meth:`stop`."""
        return self._task is not None and not self._task.done()

    @property
    def table(self) -> Table:
        """The maintainer's current table (advances with every job)."""
        return self._maintainer.table

    @property
    def retry_pending(self) -> bool:
        """True while a failed payload is waiting for its next attempt."""
        return self._retry is not None

    @property
    def retry_count(self) -> int:
        """Retry attempts executed (any outcome), lifetime total."""
        return self._retry_count

    @property
    def retry_successes(self) -> int:
        """Jobs that completed on a retry attempt, lifetime total."""
        return self._retry_successes

    @property
    def dropped_rows_total(self) -> int:
        """Appended rows permanently lost across all exhausted payloads."""
        return self._dropped_rows

    @property
    def consecutive_failures(self) -> int:
        """Failed jobs since the last completed one (feeds the breaker)."""
        return self._consecutive_failures

    @property
    def breaker_state(self) -> str:
        """Circuit breaker state: ``closed``, ``open`` or ``half_open``.

        ``open`` rejects :meth:`request_append`; after
        ``breaker_cooldown`` seconds it reads ``half_open``, which lets
        one append through as a probe — success closes the breaker,
        failure reopens it for another cooldown.
        """
        if self._breaker_opened_at is None:
            return "closed"
        if time.monotonic() - self._breaker_opened_at >= self._breaker_cooldown:
            return "half_open"
        return "open"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the scheduler's worker task on the running event loop."""
        if self.running:
            raise RuntimeError("maintenance scheduler already started")
        self._closing = False
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="maintenance"
        )
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="maintenance-scheduler"
        )

    async def stop(self, drain: bool = True) -> None:
        """Stop the scheduler, finishing the in-flight job first.

        ``drain=True`` runs every still-queued batch before stopping
        (one final coalesced job); ``drain=False`` cancels the queued
        batches (recorded as ``cancelled`` jobs) and only waits for the
        job already in flight.  Either way the last published snapshot
        is complete — a job is never abandoned half-applied.
        """
        if self._task is None:
            return
        self._closing = True
        cancelled: list[tuple[int | None, Table]] = []
        dropped_retry: tuple[Table, tuple[int, ...], int, float] | None = None
        if not drain:
            if self._pending:
                cancelled, self._pending = self._pending, []
            # A cancelled retry payload is rows the service *accepted*
            # and then lost — unlike never-started pending batches, it
            # counts as dropped.
            dropped_retry, self._retry = self._retry, None
        self._wake.set()
        await self._task
        self._task = None
        if dropped_retry is not None:
            payload, seqs, attempts, _ = dropped_retry
            self._dropped_rows += payload.num_rows
            if self._durability is not None and seqs:
                # Dropped is durable too: a restart must not resurrect
                # rows this run already declared lost.
                self._durability.mark_dropped(seqs)
            self._jobs.append(
                MaintenanceJob(
                    index=self._next_index(),
                    batches=1,
                    new_rows=payload,
                    status="cancelled",
                    attempt=attempts + 1,
                    dropped_rows=payload.num_rows,
                    journal_seqs=seqs,
                )
            )
        if cancelled:
            # Recorded only after the worker exited, so the in-flight
            # job (which finished first) keeps its earlier index and
            # position in the job log.  Journaled-but-cancelled batches
            # keep their unapplied journal records: the next start
            # replays them, turning a no-drain shutdown into deferral
            # rather than loss.
            self._jobs.append(
                MaintenanceJob(
                    index=self._next_index(),
                    batches=len(cancelled),
                    new_rows=_concat([rows for _, rows in cancelled]),
                    status="cancelled",
                    journal_seqs=tuple(
                        seq for seq, _ in cancelled if seq is not None
                    ),
                )
            )
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Job submission
    # ------------------------------------------------------------------
    def request_append(self, new_rows: Table) -> int | None:
        """Queue appended rows for background maintenance (re-entrant).

        Returns immediately; the rows are folded into the next job.
        Batches queued while a job is running are coalesced into one
        follow-up job.  Empty batches are ignored.

        With a durability coordinator the batch is journaled before
        this returns — the return value is its journal seq (None for
        empty batches or without durability), and a batch whose seq
        was returned survives any subsequent crash.  A journal-write
        failure raises before the batch is queued: nothing was
        promised, nothing was accepted.

        Raises :class:`MaintenanceUnavailableError` while the circuit
        breaker is open (``breaker_threshold`` consecutive failures,
        cooldown not yet elapsed): accepting the rows would only grow a
        payload that keeps failing, so the caller is told explicitly
        instead of the rows being dropped later.
        """
        if self._task is None or self._closing:
            raise RuntimeError("maintenance scheduler is not accepting appends")
        if self.breaker_state == "open":
            raise MaintenanceUnavailableError(
                "maintenance circuit breaker is open after "
                f"{self._consecutive_failures} consecutive failures"
            )
        if new_rows.num_rows == 0:
            return None
        seq = None
        if self._durability is not None:
            seq = self._durability.log_append(new_rows)
        self._pending.append((seq, new_rows))
        self._idle.clear()
        self._wake.set()
        return seq

    async def quiesce(self) -> None:
        """Wait until every queued batch has been maintained and swapped."""
        if self._idle is not None:
            await self._idle.wait()

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._pending or self._retry is not None:
                if self._retry is not None:
                    # The failed payload goes first — batches that
                    # arrived after it must publish after it, exactly
                    # as they would have in a no-fault run.  It stays
                    # in ``_retry`` (visible to ``retry_pending`` and
                    # cancellable by a no-drain stop) until its backoff
                    # has fully elapsed.
                    payload, seqs, attempts, ready_at = self._retry
                    await self._await_backoff(ready_at)
                    if self._retry is None:
                        continue  # cancelled by stop(drain=False) mid-wait
                    self._retry = None
                    self._retry_count += 1
                    await self._run_job(
                        loop,
                        [(None, payload)],
                        payload=payload,
                        seqs=seqs,
                        attempt=attempts + 1,
                    )
                    continue
                batches, self._pending = self._pending, []
                await self._run_job(loop, batches)
            if not self._pending and self._retry is None:
                self._idle.set()
            if self._closing:
                return

    async def _await_backoff(self, ready_at: float) -> None:
        """Sleep until a retry is due; interruptible, skipped on close.

        New appends arriving mid-backoff set ``_wake`` but must not cut
        the wait short (the retry still goes first, after its delay) —
        only :meth:`stop` does, because a draining shutdown should not
        dawdle: the attempt budget, not the pacing, bounds its work.
        """
        while not self._closing:
            remaining = ready_at - time.monotonic()
            if remaining <= 0:
                return
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                return
            self._wake.clear()

    def _next_index(self) -> int:
        """The next unique job index (allocation order, never reused)."""
        self._job_counter += 1
        return self._job_counter

    async def _run_job(
        self,
        loop: asyncio.AbstractEventLoop,
        batches: list[tuple[int | None, Table]],
        payload: Table | None = None,
        seqs: tuple[int, ...] | None = None,
        attempt: int = 1,
    ) -> None:
        job = MaintenanceJob(
            index=self._next_index(),
            batches=len(batches),
            new_rows=(
                _concat([rows for _, rows in batches]) if payload is None else payload
            ),
            status="running",
            attempt=attempt,
            journal_seqs=(
                tuple(seq for seq, _ in batches if seq is not None)
                if seqs is None
                else seqs
            ),
        )
        self._active_job = job
        start = time.perf_counter()
        table_before = self._maintainer.table
        try:
            build, job.report = await loop.run_in_executor(
                self._executor, self._maintain, job.new_rows
            )
            # The swap.commit failpoint fires with the build finished
            # but unpublished — the worst crash site for durability: a
            # killing rule loses the maintained state *after* the work
            # (journaled batches must be replayed), a raising rule
            # exercises rollback + retry with the journal intact.
            faults.FAILPOINTS.inject(faults.SWAP_COMMIT)
            job.snapshot_version = self._registry.swap(build).version
            job.status = "completed"
            self._consecutive_failures = 0
            self._breaker_opened_at = None
            if self._registry.publisher is not None:
                # Refreeze the maintained store for shard (re)spawns.
                # O(store), so on the executor; failures are recorded on
                # the publisher, never raised into the job.
                await loop.run_in_executor(
                    self._executor, self._registry.publish_current
                )
            if attempt > 1:
                self._retry_successes += 1
            if self._durability is not None and job.journal_seqs:
                # On the executor thread: marking applied may trigger a
                # checkpoint, which serialises the whole store — never
                # on the event loop.
                await loop.run_in_executor(
                    self._executor,
                    self._durability.commit_applied,
                    job.journal_seqs,
                    build,
                    self._maintainer.table,
                    job.snapshot_version,
                )
            if self._on_swap is not None:
                await loop.run_in_executor(
                    self._executor, self._on_swap, self._maintainer.table
                )
        except Exception as exc:
            job.status = "failed"
            job.error = repr(exc)
            # maintain() appends rows before re-summarizing; undo so
            # the maintainer stays consistent with the last snapshot
            # that actually published (the failed build is discarded).
            self._maintainer.rollback_table(table_before)
            self._record_failure(job, attempt)
        finally:
            job.seconds = time.perf_counter() - start
            self._active_job = None
            self._jobs.append(job)

    def _record_failure(self, job: MaintenanceJob, attempt: int) -> None:
        """Schedule a retry, or account the rows as dropped; feed the breaker."""
        self._consecutive_failures += 1
        if self._consecutive_failures >= self._breaker_threshold:
            # (Re)open — a failed half-open probe lands here too and
            # restarts the cooldown.
            self._breaker_opened_at = time.monotonic()
        if attempt <= self._retry_limit:
            delay = min(self._backoff_cap, self._backoff_base * 2 ** (attempt - 1))
            delay *= 1.0 + 0.1 * self._jitter.random()
            self._retry = (
                job.new_rows,
                job.journal_seqs,
                attempt,
                time.monotonic() + delay,
            )
        else:
            job.dropped_rows = job.new_rows.num_rows
            self._dropped_rows += job.dropped_rows
            if self._durability is not None and job.journal_seqs:
                # The journal must agree the rows are gone, or the next
                # restart would replay batches this run declared lost.
                self._durability.mark_dropped(job.journal_seqs)

    def _maintain(self, new_rows: Table):
        """One maintenance pass (runs entirely on the scheduler thread).

        Clones the current snapshot here too — the clone is O(store)
        and only reads the immutable published snapshot, so doing it
        off the event loop keeps request serving unstalled however
        large the store grows.
        """
        build = self._registry.current.begin_build()
        report = self._maintainer.maintain(
            new_rows, build, workers=self._workers, pool=self._pool
        )
        # The maintain.raise failpoint fires *after* the maintainer
        # appended and re-summarized — the worst moment: rollback,
        # retry and the breaker all get exercised on a real, non-empty
        # table delta.
        faults.FAILPOINTS.inject(faults.MAINTAIN_RAISE)
        return build, report


def _concat(batches: list[Table]) -> Table:
    """Concatenate append batches in arrival order."""
    return reduce(lambda left, right: left.concat(right), batches)
