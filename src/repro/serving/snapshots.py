"""Immutable speech-store snapshots with atomic swap.

A serving deployment must answer every request from a *consistent*
store: a request that starts while maintenance is rewriting speeches
must never observe a half-applied update.  The speech store itself is
mutable (that is what makes incremental maintenance cheap), so the
serving layer never mutates the store it reads.  Instead:

* a :class:`StoreSnapshot` is a versioned, read-only handle over one
  :class:`repro.system.speech_store.SpeechStore` — by convention nobody
  writes to a store once it is published in a snapshot;
* the :class:`SnapshotRegistry` holds the current snapshot and swaps in
  a new one atomically (a single reference assignment under the GIL,
  guarded by a lock for version monotonicity), so every reader sees
  either the old complete store or the new complete store, never a mix;
* maintenance builds the next store from
  :meth:`StoreSnapshot.begin_build` — a clone sharing the immutable
  speech payloads — mutates the clone off to the side, and publishes it
  via :meth:`SnapshotRegistry.swap`.

Requests pin the snapshot once at admission (``registry.current``) and
answer entirely from it; in-flight requests keep their pinned snapshot
across a swap, which is exactly the consistency the property tests
assert (every response equals the before- or the after-store answer).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.system.queries import DataQuery
from repro.system.speech_store import MatchResult, SpeechStore, StoredSpeech


@dataclass(frozen=True)
class StoreSnapshot:
    """A versioned read-only view of one speech store.

    Attributes
    ----------
    store:
        The underlying store.  Published snapshots are immutable by
        contract: all writes go to a :meth:`begin_build` clone.
    version:
        Monotonically increasing swap generation (the registry's
        starting version — 0, or the attached snapshot's version when
        the store was mmap-attached — marks the store it began with).
    created_at:
        ``time.time()`` when the snapshot was published.
    """

    store: SpeechStore
    version: int
    created_at: float = field(default_factory=time.time)

    def __len__(self) -> int:
        return len(self.store)

    # Read-only lookup delegates ---------------------------------------
    def best_match(self, query: DataQuery) -> MatchResult | None:
        """The most specific stored speech containing the queried subset."""
        return self.store.best_match(query)

    def exact_match(self, query: DataQuery) -> StoredSpeech | None:
        """The speech pre-generated for exactly this query, if any."""
        return self.store.exact_match(query)

    def begin_build(self) -> SpeechStore:
        """A mutable clone of this snapshot's store for maintenance.

        The clone shares the frozen speech payloads but owns its index
        structures, so maintaining it never disturbs readers of this
        snapshot (see :meth:`repro.system.speech_store.SpeechStore.clone`).
        """
        return self.store.clone()


class SnapshotRegistry:
    """Holds the current store snapshot and swaps new ones in atomically.

    Readers call :attr:`current` once per request and keep the returned
    snapshot for the request's whole lifetime; writers build a new store
    off to the side and publish it with :meth:`swap`.  Reading is
    lock-free (attribute load of an immutable object); swapping takes a
    lock only to keep versions monotonic when several writers race
    (the maintenance scheduler serializes jobs, so in practice the lock
    is uncontended).
    """

    def __init__(self, store: SpeechStore, version: int = 0, publisher=None):
        self._lock = threading.Lock()
        self._current = StoreSnapshot(store=store, version=version)
        #: Optional :class:`repro.store.SnapshotPublisher`.  When set,
        #: :meth:`publish_current` freezes the current store into the
        #: publisher's directory as ``store-v{version}.snap`` — the file
        #: a (re)spawning shard attaches instead of unpickling a store.
        self.publisher = publisher

    @property
    def current(self) -> StoreSnapshot:
        """The latest published snapshot (lock-free)."""
        return self._current

    @property
    def version(self) -> int:
        """Version of the latest published snapshot."""
        return self._current.version

    def publish_current(self):
        """Freeze the current snapshot through the publisher, if any.

        Runs off the event loop (the maintenance scheduler calls it on
        its executor after each swap): freezing is O(store).  Returns
        the snapshot file path, or None when there is no publisher or
        the freeze failed (recorded on ``publisher.last_error`` — a
        failed publish never takes serving down; the previous frozen
        version keeps covering respawns).
        """
        if self.publisher is None:
            return None
        snapshot = self._current
        return self.publisher.publish(snapshot.store, snapshot.version)

    def swap(self, store: SpeechStore) -> StoreSnapshot:
        """Publish ``store`` as the new current snapshot.

        Returns the new snapshot.  In-flight readers holding the
        previous snapshot are unaffected; new readers see the new store
        immediately and completely.
        """
        with self._lock:
            snapshot = StoreSnapshot(store=store, version=self._current.version + 1)
            self._current = snapshot
            return snapshot
