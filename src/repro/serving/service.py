"""The asyncio voice-serving service: concurrent requests over snapshots.

:class:`VoiceService` wraps a pre-processed
:class:`repro.system.engine.VoiceQueryEngine` as a long-lived service:

* **Request loop** — :meth:`submit` enqueues a
  :class:`repro.api.envelopes.VoiceRequest` (a plain transcript string
  is accepted as a shim and wrapped); ``concurrency`` worker tasks
  answer requests concurrently.  Each request pins the current
  :class:`StoreSnapshot` at dispatch and answers entirely from it, so a
  maintenance swap mid-request is invisible.
* **Sessions** — requests carrying a ``session_id`` share repeat-state
  and a session log through a bounded
  :class:`repro.api.sessions.SessionStore`, so a "repeat" through the
  service replays exactly what the interactive engine would for the
  same history.  Session-less requests never touch the store, keeping
  the exact-hit fast path free of session overhead.
* **Inline fast path / bounded offload** — requests the store answers
  with one exact-key probe (the paper's common case: near-zero-latency
  hits on pre-generated speeches) are realized inline on the event
  loop.  Requests needing real work — non-exact subset matching, or
  comparison/extremum answers computed over the table — are offloaded
  to a bounded thread-pool executor so one heavy request cannot stall
  the loop.
* **Admission control** — at most ``concurrency`` requests are in
  flight and at most ``max_queue_depth`` may wait; beyond that
  :meth:`submit` fails fast with :class:`ServiceOverloadedError`
  (backpressure instead of unbounded queueing).
* **Background maintenance** — :meth:`request_append` hands appended
  rows to the :class:`repro.serving.scheduler.MaintenanceScheduler`,
  which maintains a store clone on its own thread (optionally fanning
  out over a shared worker pool) and atomically swaps the new snapshot
  in; serving never pauses.
* **Metrics** — per-request latency feeds aggregate p50/p95/p99, qps,
  hit rate and offload counts (:class:`ServiceMetrics`).

The engine's session state is untouched while serving, and after every
snapshot swap the engine re-derives its table-bound components
(:meth:`VoiceQueryEngine.adopt_table` on the maintenance thread), so
dimension values introduced by appended rows parse correctly against
the new snapshot.  On :meth:`stop` the engine additionally adopts the
final snapshot's store (:meth:`VoiceQueryEngine.swap_store`), so a
quiesced engine afterwards answers exactly like the service did and a
new service built on it continues from consistent state.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.api.config import DEFAULT_LATENCY_WINDOW, ServingConfig
from repro.api.envelopes import EnvelopeError, VoiceRequest
from repro.api.errors import ServiceOverloadedError
from repro.relational.errors import SchemaError, TypeMismatchError
from repro.api.sessions import SessionStore
from repro.relational.table import Table
from repro.reliability import faults
from repro.serving.scheduler import MaintenanceScheduler
from repro.serving.snapshots import SnapshotRegistry, StoreSnapshot
from repro.storage.recovery import (
    DurabilityCoordinator,
    RecoveredState,
    recover_state,
)
from repro.store import SnapshotError, SnapshotPublisher
from repro.system.classification import RequestType
from repro.system.engine import ResponseKind, VoiceQueryEngine, VoiceResponse
from repro.system.nlq import ParsedRequest
from repro.system.updates import IncrementalMaintainer
from repro.system.worker_pool import WorkerPool


# ServiceOverloadedError and DEFAULT_LATENCY_WINDOW are re-exported for
# back-compat; their canonical definitions live in repro.api (errors
# and config), below the transports that share them.
__all__ = [
    "DEFAULT_LATENCY_WINDOW",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "VoiceService",
]


@dataclass
class ServiceMetrics:
    """Aggregate serving metrics (counters plus a latency window)."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    errors: int = 0
    timeouts: int = 0
    offloaded: int = 0
    inline: int = 0
    exact_hits: int = 0
    responses_by_kind: dict[str, int] = field(default_factory=dict)
    latency_window: int = DEFAULT_LATENCY_WINDOW
    _latencies: list[float] = field(default_factory=list)
    _started_at: float = field(default_factory=time.perf_counter)

    def reset(self) -> None:
        """Zero all counters and restart the qps clock."""
        self.submitted = self.completed = self.rejected = self.errors = 0
        self.timeouts = 0
        self.offloaded = self.inline = self.exact_hits = 0
        self.responses_by_kind.clear()
        self._latencies.clear()
        self._started_at = time.perf_counter()

    def observe(self, response: VoiceResponse, latency: float, offloaded: bool) -> None:
        """Record one completed request."""
        self.completed += 1
        kind = response.kind.value
        self.responses_by_kind[kind] = self.responses_by_kind.get(kind, 0) + 1
        if response.kind is ResponseKind.TIMEOUT:
            self.timeouts += 1
        if offloaded:
            self.offloaded += 1
        else:
            self.inline += 1
        if response.kind is ResponseKind.SPEECH and response.exact_match:
            self.exact_hits += 1
        self._latencies.append(latency)
        if len(self._latencies) > self.latency_window:
            del self._latencies[: len(self._latencies) - self.latency_window]

    @property
    def elapsed_seconds(self) -> float:
        """Seconds since construction or the last :meth:`reset`."""
        return time.perf_counter() - self._started_at

    @property
    def qps(self) -> float:
        """Completed requests per second since the last reset."""
        elapsed = self.elapsed_seconds
        return self.completed / elapsed if elapsed > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of answered data queries served from a stored speech."""
        hits = self.responses_by_kind.get(ResponseKind.SPEECH.value, 0)
        misses = self.responses_by_kind.get(ResponseKind.NO_DATA.value, 0)
        total = hits + misses
        return hits / total if total else 0.0

    def latency_percentile(self, fraction: float) -> float:
        """Nearest-rank latency percentile (seconds) over the window."""
        return self._percentile(sorted(self._latencies), fraction)

    @staticmethod
    def _percentile(ordered: list[float], fraction: float) -> float:
        if not ordered:
            return 0.0
        rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict:
        """All aggregate metrics as one JSON-friendly dict."""
        ordered = sorted(self._latencies)
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "inline": self.inline,
            "offloaded": self.offloaded,
            "exact_hits": self.exact_hits,
            "responses_by_kind": dict(sorted(self.responses_by_kind.items())),
            "qps": self.qps,
            "hit_rate": self.hit_rate,
            "p50_ms": self._percentile(ordered, 0.50) * 1000.0,
            "p95_ms": self._percentile(ordered, 0.95) * 1000.0,
            "p99_ms": self._percentile(ordered, 0.99) * 1000.0,
        }


#: Queue sentinel telling a worker task to exit.
_SHUTDOWN = object()


class VoiceService:
    """Serve a pre-processed voice engine to many concurrent sessions.

    Parameters
    ----------
    engine:
        A (typically pre-processed) :class:`VoiceQueryEngine`.  The
        service seeds its first snapshot from ``engine.store``.
    config:
        The :class:`repro.api.config.ServingConfig` holding every
        serving knob (concurrency, queue depth, executor/maintenance
        workers, latency window, session capacity).  Defaults to
        ``ServingConfig()``.
    pool:
        Optional shared :class:`WorkerPool` for maintenance jobs'
        re-summarization fan-out; warmed up during :meth:`start` so the
        first maintenance pass pays no process start-up mid-traffic.
    maintainer:
        Override the :class:`IncrementalMaintainer` (default: built
        from the engine's config, table, summarizer and realizer).
    sessions:
        Override the per-session state store (default: a fresh
        :class:`repro.api.sessions.SessionStore` bounded by
        ``config.session_capacity``).
    **overrides:
        Individual :class:`ServingConfig` fields as keyword arguments
        (``concurrency=4`` etc.), applied on top of ``config`` — the
        pre-``ServingConfig`` call style keeps working.

    Use as an async context manager or call :meth:`start` /
    :meth:`stop` explicitly, always from one event loop.
    """

    def __init__(
        self,
        engine: VoiceQueryEngine,
        config: ServingConfig | None = None,
        *,
        pool: WorkerPool | None = None,
        maintainer: IncrementalMaintainer | None = None,
        sessions: SessionStore | None = None,
        **overrides,
    ):
        if config is None:
            config = ServingConfig()
        elif not isinstance(config, ServingConfig):
            # The second positional parameter used to be `concurrency`;
            # fail loudly at the call site instead of deep inside.
            raise TypeError(
                f"config must be a ServingConfig, got {type(config).__name__} "
                "(pass serving knobs like concurrency as keyword arguments)"
            )
        if overrides:
            config = config.replace(**overrides)
        self._config = config
        self._engine = engine
        self._concurrency = config.concurrency
        self._max_queue_depth = config.max_queue_depth
        self._executor_workers = config.resolved_executor_workers
        self._pool = pool
        self._sessions = (
            sessions if sessions is not None else SessionStore(config.session_capacity)
        )
        self._durability: DurabilityCoordinator | None = None
        self._recovery: RecoveredState | None = None
        self._publisher = None
        initial_store_version = 0
        if config.snapshot_dir is not None:
            self._publisher = SnapshotPublisher(config.snapshot_dir)
            if config.attach_snapshots:
                # mmap-attach mode (shard side): serve from the newest
                # frozen snapshot instead of the engine's own store —
                # the respawn path that replays only the append-log
                # suffix past the attached version.
                attached = self._publisher.attach_latest()
                if attached is None:
                    raise SnapshotError(
                        f"attach_snapshots is set but no snapshot in "
                        f"{config.snapshot_dir} attaches "
                        f"(last error: {self._publisher.last_error})"
                    )
                engine.swap_store(attached)
                initial_store_version = attached.snapshot_version or 0
        if config.data_dir is not None:
            if config.failpoints:
                # Recovery-boundary failpoints (recover.replay) must be
                # live before the replay below, not only at start().
                faults.FAILPOINTS.ensure(config.failpoints, seed=config.failpoint_seed)
            # Recover durable state *before* seeding the first snapshot
            # and the maintainer, so both see the journal's appends.
            recovered = recover_state(
                config.data_dir,
                engine.config,
                base_store=engine.store,
                base_table=engine.table,
                summarizer=engine.summarizer,
                realizer=engine.realizer,
            )
            engine.swap_store(recovered.store)
            if recovered.table is not engine.table:
                engine.adopt_table(recovered.table)
            self._recovery = recovered
            self._durability = DurabilityCoordinator(
                config.data_dir,
                fsync=config.journal_fsync,
                checkpoint_every_swaps=config.checkpoint_every_swaps,
                checkpoint_every_bytes=config.checkpoint_every_bytes,
                checkpoint_keep=config.checkpoint_keep,
                checkpoint_compact=config.checkpoint_compact,
                next_seq=recovered.next_seq,
                truncate_at=recovered.journal_offset,
                applied_seq=recovered.applied_seq,
            )
            if recovered.replayed_records:
                # Fold the replayed records into a fresh checkpoint so
                # the next restart (and every crash until the first
                # policy checkpoint) replays nothing twice.
                self._durability.checkpoint_now(
                    recovered.store, recovered.table, store_version=0
                )
        self._registry = SnapshotRegistry(
            engine.store, version=initial_store_version, publisher=self._publisher
        )
        if self._publisher is not None and not config.attach_snapshots:
            # Freeze the base store so the snapshot directory always
            # covers a cold (re)spawn; swaps refreeze via the scheduler.
            self._registry.publish_current()
        self._scheduler = MaintenanceScheduler(
            maintainer
            or IncrementalMaintainer(
                engine.config,
                engine.table,
                summarizer=engine.summarizer,
                realizer=engine.realizer,
            ),
            self._registry,
            pool=pool,
            workers=config.maintenance_workers,
            retry_limit=config.maintenance_retry_limit,
            backoff_base=config.maintenance_backoff_base,
            backoff_cap=config.maintenance_backoff_cap,
            breaker_threshold=config.breaker_threshold,
            breaker_cooldown=config.breaker_cooldown_seconds,
            retry_seed=config.failpoint_seed,
            durability=self._durability,
            # After every swap the engine re-derives its table-bound
            # components (parser lexicon, advanced answerers), so
            # requests naming dimension values introduced by the
            # appended rows parse correctly against the new snapshot.
            # Runs on the maintenance thread; adopt_table only swaps
            # whole attributes, which loop-side readers load atomically.
            on_swap=engine.adopt_table,
        )
        self._metrics = ServiceMetrics(latency_window=config.latency_window)
        self._queue: asyncio.Queue | None = None
        self._workers: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def engine(self) -> VoiceQueryEngine:
        """The wrapped engine."""
        return self._engine

    @property
    def config(self) -> ServingConfig:
        """The resolved serving configuration."""
        return self._config

    @property
    def sessions(self) -> SessionStore:
        """Per-session repeat-state and logs (bounded LRU)."""
        return self._sessions

    @property
    def registry(self) -> SnapshotRegistry:
        """The snapshot registry shared with the scheduler."""
        return self._registry

    @property
    def scheduler(self) -> MaintenanceScheduler:
        """The background maintenance scheduler."""
        return self._scheduler

    @property
    def metrics(self) -> ServiceMetrics:
        """Aggregate serving metrics."""
        return self._metrics

    @property
    def durability(self) -> DurabilityCoordinator | None:
        """The durability coordinator (None without ``data_dir``)."""
        return self._durability

    @property
    def publisher(self) -> SnapshotPublisher | None:
        """The snapshot publisher (None without ``snapshot_dir``)."""
        return self._publisher

    @property
    def recovery(self) -> RecoveredState | None:
        """What construction-time recovery rebuilt (None without ``data_dir``)."""
        return self._recovery

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._running

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a worker."""
        return self._queue.qsize() if self._queue is not None else 0

    def reliability(self) -> dict:
        """The error-taxonomy counters as one JSON-ready dict.

        Complements :class:`ServiceMetrics` (which counts what the
        request path observed) with what the reliability machinery did
        about it: maintenance retries and their outcomes, rows dropped
        after retry exhaustion, the breaker state, and worker-pool
        respawns/degradation.
        """
        scheduler = self._scheduler
        pool = self._pool
        return {
            "timeouts": self._metrics.timeouts,
            "maintenance_retries": scheduler.retry_count,
            "maintenance_retry_successes": scheduler.retry_successes,
            "maintenance_dropped_rows": scheduler.dropped_rows_total,
            "maintenance_consecutive_failures": scheduler.consecutive_failures,
            "retry_pending": scheduler.retry_pending,
            "breaker_state": scheduler.breaker_state,
            "worker_respawns": pool.respawn_count if pool is not None else 0,
            "pool_degraded": pool.degraded if pool is not None else False,
        }

    def metrics_summary(self) -> dict:
        """:meth:`ServiceMetrics.summary` plus reliability + durability."""
        summary = self._metrics.summary()
        summary["reliability"] = self.reliability()
        summary["durability"] = (
            self._durability.stats() if self._durability is not None else None
        )
        return summary

    def store_digest(self) -> dict:
        """A digest of the current snapshot's canonical store payload.

        ``sha256`` over :func:`canonical_store_payload`, so two
        services whose stores are byte-identical report the same
        digest — the cross-shard parity probe the sharded deployment
        polls after every snapshot barrier.
        """
        import hashlib

        from repro.system.persistence import canonical_store_payload

        payload = canonical_store_payload(self._registry.current.store)
        return {
            "digest": hashlib.sha256(payload).hexdigest(),
            "snapshot_version": self._registry.version,
            "speeches": len(self._registry.current.store),
        }

    def health(self) -> dict:
        """Service health: ``ok``, ``degraded`` or ``draining`` + reasons.

        ``degraded`` means the service still answers but something is
        impaired — the worker pool fell back to serial, the maintenance
        breaker is open (appends rejected), a failed maintenance
        payload is awaiting retry, or rows were permanently dropped.
        ``draining`` means the service is stopping (or stopped) and no
        longer accepts requests.
        """
        if not self._running:
            return {"status": "draining", "reasons": ["service is stopping or stopped"]}
        reasons = []
        if self._pool is not None and self._pool.degraded:
            reasons.append(
                "worker pool degraded to serial after "
                f"{self._pool.respawn_count} respawns"
            )
        breaker = self._scheduler.breaker_state
        if breaker != "closed":
            reasons.append(f"maintenance circuit breaker is {breaker}")
        if self._scheduler.retry_pending:
            reasons.append("failed maintenance payload awaiting retry")
        dropped = self._scheduler.dropped_rows_total
        if dropped:
            reasons.append(f"{dropped} appended rows dropped after retry exhaustion")
        if self._durability is not None and self._durability.last_checkpoint_error:
            # Not data loss (the journal still covers everything), but
            # recovery time grows until a checkpoint lands again.
            reasons.append(
                "last checkpoint save failed: "
                f"{self._durability.last_checkpoint_error}"
            )
        return {"status": "degraded" if reasons else "ok", "reasons": reasons}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "VoiceService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def start(self) -> None:
        """Start the request loop and the maintenance scheduler."""
        if self._running:
            raise RuntimeError("service already started")
        if self._config.failpoints:
            # ensure(), not configure(): when the CLI already installed
            # the same specs (so pre-processing could inject too), the
            # mid-run counters must survive service start.
            faults.FAILPOINTS.ensure(
                self._config.failpoints, seed=self._config.failpoint_seed
            )
        if self._pool is not None:
            self._pool.warm_up()
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=self._executor_workers, thread_name_prefix="voice-serving"
        )
        loop = asyncio.get_running_loop()
        self._workers = [
            loop.create_task(self._worker(), name=f"voice-service-worker-{index}")
            for index in range(self._concurrency)
        ]
        self._scheduler.start()
        self._running = True

    async def stop(self, drain_maintenance: bool = True) -> None:
        """Drain queued requests, stop workers and the scheduler.

        Already-queued requests are still answered; new :meth:`submit`
        calls fail immediately.  ``drain_maintenance`` is forwarded to
        :meth:`MaintenanceScheduler.stop`.  Finally the engine adopts
        the last published snapshot, so quiesced ``engine.ask`` calls
        afterwards see every maintained speech.
        """
        if not self._running:
            return
        self._running = False
        for _ in self._workers:
            self._queue.put_nowait(_SHUTDOWN)
        await asyncio.gather(*self._workers)
        self._workers = []
        await self._scheduler.stop(drain=drain_maintenance)
        self._executor.shutdown(wait=True)
        self._executor = None
        self._queue = None
        self._engine.swap_store(self._registry.current.store)
        if self._scheduler.table is not self._engine.table:
            # Safety net: the on_swap hook normally keeps the engine's
            # table current; catch any path that bypassed it.
            self._engine.adopt_table(self._scheduler.table)
        if self._durability is not None:
            stats = self._durability.stats()
            if stats["applied_seq"] > stats["last_checkpoint_seq"]:
                # A clean shutdown checkpoints the final state so the
                # next start replays nothing.
                self._durability.checkpoint_now(
                    self._registry.current.store,
                    self._scheduler.table,
                    self._registry.version,
                )
            self._durability.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    async def submit(self, request: VoiceRequest | str) -> VoiceResponse:
        """Answer one voice request; resolves when the response is ready.

        ``request`` is a typed :class:`VoiceRequest` envelope; a plain
        transcript string is accepted as a shim and answered
        statelessly (no session).  Requests whose envelope carries a
        ``session_id`` read and advance that session's repeat-state, so
        a "repeat" answers with the session's previous response exactly
        like the interactive engine would.

        Raises :class:`ServiceOverloadedError` when ``max_queue_depth``
        requests are already waiting (admission control) and
        ``RuntimeError`` when the service is not running.
        """
        if isinstance(request, str):
            request = VoiceRequest(text=request)
        if not self._running:
            raise RuntimeError("service is not running")
        if self._queue.qsize() >= self._max_queue_depth:
            self._metrics.rejected += 1
            raise ServiceOverloadedError(
                f"request queue is full ({self._max_queue_depth} waiting)"
            )
        self._metrics.submitted += 1
        future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((request, future, time.perf_counter()))
        return await future

    def request_append(self, new_rows: Table) -> int | None:
        """Queue appended rows for background maintenance (no pause).

        With durability configured (``config.data_dir``) the batch is
        journaled before this returns and the return value is its
        journal seq — the ack is a durable promise.  Without it, None.
        """
        return self._scheduler.request_append(new_rows)

    def build_append_table(self, rows: list) -> Table:
        """Build an append batch from JSON-friendly rows (wire ingress).

        ``rows`` is a list of objects keyed by column name (extra keys
        ignored) or arrays in schema order, validated against the
        *current* maintained table's schema.  Raises
        :class:`EnvelopeError` on any mismatch, so transports can map
        it to a 400 instead of a scheduler crash.
        """
        schema = self._scheduler.table
        names = schema.column_names
        types = [column.ctype for column in schema.columns]
        materialized = []
        for row in rows:
            if isinstance(row, dict):
                missing = [name for name in names if name not in row]
                if missing:
                    raise EnvelopeError(f"append row is missing columns {missing}")
                materialized.append([row[name] for name in names])
            elif isinstance(row, (list, tuple)):
                materialized.append(list(row))
            else:
                raise EnvelopeError(
                    f"append row must be an object or array, got {type(row).__name__}"
                )
        try:
            return Table.from_rows(schema.name, names, types, materialized)
        except (SchemaError, TypeMismatchError) as exc:
            raise EnvelopeError(f"append rows do not match the table schema: {exc}") from exc

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            item = await self._queue.get()
            if item is _SHUTDOWN:
                return
            request, future, submitted_at = item
            try:
                response, offloaded = await self._answer_within_deadline(
                    request, submitted_at
                )
                response.latency_seconds = time.perf_counter() - submitted_at
                self._metrics.observe(response, response.latency_seconds, offloaded)
                if not future.cancelled():
                    future.set_result(response)
            except Exception as exc:
                self._metrics.errors += 1
                if not future.cancelled():
                    future.set_exception(exc)

    async def _answer_within_deadline(
        self, request: VoiceRequest, submitted_at: float
    ) -> tuple[VoiceResponse, bool]:
        """Answer one request, bounded by its deadline when it has one.

        The budget covers queue wait *and* answering — a request that
        spent its whole ``deadline_ms`` waiting is answered with a
        ``timeout`` response immediately, without computing an answer
        nobody is waiting for anymore.  Expiry mid-answer cancels the
        answering task; offloaded work that was still queued for the
        executor is cancelled with it (a thread already computing runs
        to completion, but its result is discarded and the response
        goes out on time).  Timed-out requests never record session
        state: the caller got no answer, so "repeat" must replay the
        last answer they actually heard.
        """
        deadline_ms = request.deadline_ms
        if deadline_ms is None:
            deadline_ms = self._config.default_deadline_ms
        if deadline_ms is None:
            return await self._answer(request)
        remaining = deadline_ms / 1000.0 - (time.perf_counter() - submitted_at)
        if remaining > 0:
            try:
                return await asyncio.wait_for(self._answer(request), timeout=remaining)
            except asyncio.TimeoutError:
                pass
        response = VoiceResponse(
            kind=ResponseKind.TIMEOUT,
            text="Sorry, answering took longer than the request allowed.",
            request_type=RequestType.OTHER,
        )
        return response, False

    async def _answer(self, request: VoiceRequest) -> tuple[VoiceResponse, bool]:
        """Answer one request against the snapshot pinned at dispatch.

        Session state is threaded through without taxing the fast path:
        requests without a ``session_id`` never touch the session
        store, and requests with one pay two O(1) locked dict
        operations — a repeat-state read (repeat requests only, which
        are canned-answer inline work anyway) and the post-answer
        record.
        """
        snapshot = self._registry.current
        parsed, request_type = self._engine.parse_and_classify(request.text)
        if self._offloads(parsed, request_type, snapshot):
            response = await asyncio.get_running_loop().run_in_executor(
                self._executor,
                self._respond_offloaded,
                parsed,
                request_type,
                snapshot,
            )
            offloaded = True
        else:
            last_response = None
            if request.session_id is not None and request_type is RequestType.REPEAT:
                last_response = self._sessions.last_response(request.session_id)
            response = self._engine.respond_to(
                parsed, request_type, store=snapshot.store, last_response=last_response
            )
            offloaded = False
        if request.session_id is not None:
            self._sessions.record(request.session_id, parsed, response)
        return response, offloaded

    def _respond_offloaded(
        self,
        parsed: ParsedRequest,
        request_type: RequestType,
        snapshot: StoreSnapshot,
    ) -> VoiceResponse:
        # Offload failpoints, applied on the executor thread: a slow
        # offload overruns deadlines (serve.offload_slow), a failing
        # one errors the request (serve.offload_raise).
        rule = faults.FAILPOINTS.trigger(faults.OFFLOAD_SLOW)
        if rule is not None:
            time.sleep(rule.sleep)
        faults.FAILPOINTS.inject(faults.OFFLOAD_RAISE)
        return self._engine.respond_to(parsed, request_type, store=snapshot.store)

    def _offloads(
        self,
        parsed: ParsedRequest,
        request_type: RequestType,
        snapshot: StoreSnapshot,
    ) -> bool:
        """Whether a request needs the executor.

        Exact store hits (one dict probe, the paper's near-zero-latency
        case) and canned help/repeat/unsupported texts stay on the
        loop.  Realization misses — data queries without an exact
        pre-generated speech, which fall into subset matching — and
        unsupported queries that the advanced extension answers by
        aggregating over the table are real work and go to the bounded
        executor.
        """
        if request_type is RequestType.SUPPORTED_QUERY and parsed.query is not None:
            return snapshot.exact_match(parsed.query) is None
        return (
            request_type is RequestType.UNSUPPORTED_QUERY
            and self._engine.advanced_enabled
        )
