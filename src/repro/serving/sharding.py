"""Sharded multi-process serving: N engines behind one asyncio router.

One asyncio :class:`repro.serving.service.VoiceService` process tops
out when the event loop saturates — serving, envelope encoding and
maintenance all contend for a single core.  :class:`ShardManager`
scales horizontally: it spawns ``config.shards`` worker processes
(each owning a full engine + store snapshot behind its own
``VoiceService`` + ``VoiceHttpServer`` on a loopback port) and routes
requests from a lightweight front router.

Routing
-------
Requests carrying a ``session_id`` are routed by **consistent hash**
(:class:`ConsistentHashRing`): the same session always lands on the
same shard, so repeat-state and session logs stay local to one
process.  Session-less requests round-robin across healthy shards.
When a session's owner shard is down, the ring walks to the next
healthy shard — a deterministic fallback, so consecutive requests of
one session keep landing together even mid-outage.

The hot path is a **raw byte relay**: :meth:`ShardManager.relay_ask`
forwards the client's request body bytes to the shard and hands the
shard's response bytes straight back, over per-shard keep-alive
connection pools.  The router never decodes or re-encodes the
envelope (it only JSON-parses bodies that mention ``session_id``, to
extract the routing key), so its per-request cost stays far below a
shard's and throughput scales with the shard count.

Maintenance and durability
--------------------------
The router owns the single source of append truth.  Each
:meth:`request_append` batch is journalled first (when the manager has
a ``data_dir`` — one write-ahead journal for the whole deployment),
then broadcast to every live shard's ``/v1/append``, then confirmed by
a **version barrier**: the call returns only after every healthy shard
reports the target snapshot version on ``/healthz``, so no shard keeps
serving a stale snapshot once an append is acked.  Appends are
serialized through one lock, which also pins each shard's maintenance
job grouping to one-batch-per-job — with the deterministic
maintainer, every shard's post-swap store is byte-identical
(:meth:`store_digests` verifies exactly that).

Supervision
-----------
A background supervisor polls shard liveness.  A crashed shard (e.g.
the ``shard.crash`` failpoint, evaluated router-side so its counters
stay deterministic in one process) is respawned from the base engine
and caught up by replaying the router's append log — same batches,
same grouping, same bytes.  In-flight requests routed at a dead shard
retry on the next healthy shard, so an injected crash loses zero
requests.  ``/healthz`` reports ``degraded`` while any shard is down.

The manager exposes the same surface :class:`VoiceHttpServer` expects
from a ``VoiceService`` (``submit``, ``health``, ``metrics_summary``,
``sessions``, ``registry.version`` …), so the front server code is
shared between the single-process and sharded deployments; fan-out
accessors are coroutines, which the server awaits transparently.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import multiprocessing
import os
import pickle
import signal
import time
from typing import Any, Iterable, Sequence

from repro.api.config import ServingConfig
from repro.api.envelopes import (
    EnvelopeError,
    VoiceRequest,
    response_from_dict,
)
from repro.api.errors import (
    MaintenanceUnavailableError,
    ServiceOverloadedError,
    VoiceApiError,
)
from repro.relational.errors import SchemaError, TypeMismatchError
from repro.relational.table import Table
from repro.reliability import faults
from repro.storage.recovery import DurabilityCoordinator, recover_state
from repro.store import SnapshotError, SnapshotPublisher
from repro.system.engine import VoiceQueryEngine, VoiceResponse
from repro.system.speech_store import SpeechStore

__all__ = ["ConsistentHashRing", "ShardManager"]

#: Virtual nodes per shard on the hash ring; enough that keys spread
#: evenly across a handful of shards.
VNODES_PER_SHARD = 64

#: Seconds the parent waits for a spawned shard's ready handshake.
SPAWN_TIMEOUT_SECONDS = 120.0

#: Supervisor liveness-poll interval (seconds).
SUPERVISE_INTERVAL_SECONDS = 0.1

#: Seconds the version barrier polls before giving up on a shard.
BARRIER_TIMEOUT_SECONDS = 60.0

#: Fast routing probe: bodies without this byte sequence cannot carry a
#: session id, so the router skips JSON parsing entirely for them.
_SESSION_MARKER = b'"session_id"'


def _stable_hash(key: str) -> int:
    """A process-independent 64-bit hash (``hash()`` is salted per run)."""
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRing:
    """Consistent-hash ring over shard indices with virtual nodes.

    The ring is a pure function of the shard count: respawning a shard
    reuses its index, so session→shard affinity survives crashes, and
    two routers built for the same deployment agree on every key.
    """

    def __init__(self, shard_count: int, vnodes: int = VNODES_PER_SHARD):
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self._shard_count = shard_count
        points = [
            (_stable_hash(f"shard-{index}:vnode-{vnode}"), index)
            for index in range(shard_count)
            for vnode in range(vnodes)
        ]
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [index for _, index in points]

    @property
    def shard_count(self) -> int:
        return self._shard_count

    def owner(self, key: str) -> int:
        """The shard index owning ``key`` (all shards healthy)."""
        position = bisect.bisect_right(self._points, _stable_hash(key))
        return self._owners[position % len(self._owners)]

    def route(self, key: str, healthy: Iterable[int] | None = None) -> int:
        """The owner, or the next healthy shard clockwise when it is down.

        The walk is deterministic, so every request of a session falls
        back to the *same* substitute while the owner is out.
        """
        if healthy is None:
            return self.owner(key)
        healthy = set(healthy)
        if not healthy:
            raise RuntimeError("no healthy shards to route to")
        position = bisect.bisect_right(self._points, _stable_hash(key))
        for offset in range(len(self._owners)):
            index = self._owners[(position + offset) % len(self._owners)]
            if index in healthy:
                return index
        raise RuntimeError("no healthy shards to route to")  # pragma: no cover


def _shard_main(conn, engine, config, index: int) -> None:
    """Entry point of one shard process (spawn start method).

    Runs a full :class:`VoiceService` + :class:`VoiceHttpServer` on an
    ephemeral loopback port, reports ``("ready", index, port)`` over
    ``conn``, and serves until SIGTERM/SIGINT (clean drain, exit 0).

    In mmap-attach mode ``engine`` arrives as a pre-pickled template
    *without its store* (the manager froze the store to a snapshot
    file); the service constructor attaches the newest snapshot from
    ``config.snapshot_dir`` read-only instead.
    """
    # Imported lazily so the spawn interpreter pays for them once the
    # engine payload has already unpickled successfully.
    from repro.api.http_server import VoiceHttpServer
    from repro.serving.service import VoiceService

    if isinstance(engine, bytes):
        engine = pickle.loads(engine)

    def _quiet_cancelled(loop, context) -> None:
        # Keep-alive router connections parked in readline() at loop
        # teardown surface as "Exception in callback ... CancelledError"
        # noise (an asyncio-streams wart); a draining shard's log
        # should stay clean for the chaos smokes.
        if isinstance(context.get("exception"), asyncio.CancelledError):
            return
        loop.default_exception_handler(context)

    async def run() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        loop.set_exception_handler(_quiet_cancelled)
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        async with VoiceService(engine, config) as service:
            async with VoiceHttpServer(service, host="127.0.0.1", port=0) as server:
                conn.send(("ready", index, server.port))
                conn.close()
                await stop.wait()

    try:
        asyncio.run(run())
    except Exception as exc:  # pragma: no cover - startup failure surface
        try:
            conn.send(("error", index, repr(exc)))
            conn.close()
        except OSError:
            pass
        raise


class _ShardHandle:
    """The router's view of one shard process."""

    def __init__(self, index: int):
        self.index = index
        self.process: multiprocessing.process.BaseProcess | None = None
        self.port: int | None = None
        self.healthy = False
        self.respawns = 0
        self.generation = 0
        self.idle: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        # Cached from the last metrics fan-out, for the sync facade.
        self.last_sessions = 0
        self.last_queue_depth = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def close_connections(self) -> None:
        while self.idle:
            _, writer = self.idle.pop()
            try:
                writer.close()
            except Exception:
                pass


class _RouterSessions:
    """Facade matching ``service.sessions`` for the HTTP front-end.

    Sessions live inside the shards; the router forwards ``describe``
    to the session's owner (a coroutine the server awaits) and reports
    the summed live-session count cached from the last metrics fan-out.
    """

    def __init__(self, manager: "ShardManager"):
        self._manager = manager

    def __len__(self) -> int:
        return sum(handle.last_sessions for handle in self._manager._shards)

    def describe(self, session_id: str):
        return self._manager.describe_session(session_id)


class _RouterRegistry:
    """Facade matching ``service.registry`` (version only)."""

    def __init__(self, manager: "ShardManager"):
        self._manager = manager

    @property
    def version(self) -> int:
        return self._manager.version


class ShardManager:
    """Run ``config.shards`` engine processes behind one async router.

    Parameters
    ----------
    engine:
        The pre-processed base engine.  With ``config.data_dir`` set,
        durable state is recovered into it *before* the shards spawn,
        so every shard starts from the recovered store; afterwards the
        engine object is only the pickle template for (re)spawns — the
        live stores evolve inside the shard processes.
    config:
        A :class:`repro.api.config.ServingConfig` with ``shards`` >= 1.
        Each shard serves with a copy of this config minus ``data_dir``
        (the router owns the one journal) and minus ``failpoints``
        (router-side sites like ``shard.crash`` must keep their
        counters in one process; shards run fault-free).

    Use as an async context manager from one event loop, like the
    service it stands in for.
    """

    def __init__(self, engine: VoiceQueryEngine, config: ServingConfig | None = None):
        self._config = config if config is not None else ServingConfig()
        self._engine = engine
        self._shard_count = max(1, self._config.shards)
        self._ring = ConsistentHashRing(self._shard_count)
        self._shards = [_ShardHandle(index) for index in range(self._shard_count)]
        self._mp = multiprocessing.get_context("spawn")
        self._shard_config = self._config.replace(
            shards=1, data_dir=None, failpoints=()
        )
        self._durability: DurabilityCoordinator | None = None
        if self._config.data_dir is not None:
            if self._config.failpoints:
                faults.FAILPOINTS.ensure(
                    self._config.failpoints, seed=self._config.failpoint_seed
                )
            recovered = recover_state(
                self._config.data_dir,
                engine.config,
                base_store=engine.store,
                base_table=engine.table,
                summarizer=engine.summarizer,
                realizer=engine.realizer,
            )
            engine.swap_store(recovered.store)
            if recovered.table is not engine.table:
                engine.adopt_table(recovered.table)
            self._durability = DurabilityCoordinator(
                self._config.data_dir,
                fsync=self._config.journal_fsync,
                checkpoint_every_swaps=self._config.checkpoint_every_swaps,
                checkpoint_every_bytes=self._config.checkpoint_every_bytes,
                checkpoint_keep=self._config.checkpoint_keep,
                next_seq=recovered.next_seq,
                truncate_at=recovered.journal_offset,
                applied_seq=recovered.applied_seq,
            )
        # With a snapshot directory the manager switches to mmap-attach
        # spawning: the base store is frozen as snapshot v0 (after
        # recovery, so shards attach the recovered state), the shard
        # config points at the directory, and the pickle template is the
        # engine *minus its store* — the heavy payload ships once as a
        # file every shard maps read-only instead of N private copies.
        self._publisher: SnapshotPublisher | None = None
        self._spawn_payload: VoiceQueryEngine | bytes = engine
        self._spawn_seconds: list[float] = []
        if self._config.snapshot_dir is not None:
            self._publisher = SnapshotPublisher(self._config.snapshot_dir)
            if self._publisher.publish(engine.store, 0) is None:
                raise SnapshotError(
                    "could not freeze base snapshot v0 into "
                    f"{self._config.snapshot_dir}: {self._publisher.last_error}"
                )
            self._shard_config = self._shard_config.replace(
                snapshot_dir=self._config.snapshot_dir,
                attach_snapshots=True,
            )
            previous = engine.swap_store(SpeechStore())
            try:
                self._spawn_payload = pickle.dumps(engine)
            finally:
                engine.swap_store(previous)
        # Post-start appends, in broadcast order: (journal seq or None,
        # JSON rows).  Replayed one batch at a time into respawned
        # shards so every shard applies the same jobs in the same order.
        self._append_log: list[tuple[int | None, list]] = []
        self._append_lock = asyncio.Lock()
        self._version = 0
        self._round_robin = 0
        self._running = False
        self._supervisor: asyncio.Task | None = None
        self._respawn_total = 0
        self._relay_retries = 0
        self.sessions = _RouterSessions(self)
        self.registry = _RouterRegistry(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> ServingConfig:
        return self._config

    @property
    def shard_count(self) -> int:
        return self._shard_count

    @property
    def ring(self) -> ConsistentHashRing:
        return self._ring

    @property
    def running(self) -> bool:
        return self._running

    @property
    def version(self) -> int:
        """Snapshot version every shard has confirmed (the barrier's bar)."""
        return self._version

    @property
    def queue_depth(self) -> int:
        return sum(handle.last_queue_depth for handle in self._shards)

    @property
    def respawn_total(self) -> int:
        return self._respawn_total

    @property
    def durability(self) -> DurabilityCoordinator | None:
        return self._durability

    @property
    def publisher(self) -> SnapshotPublisher | None:
        return self._publisher

    def shard_ports(self) -> list[int | None]:
        return [handle.port for handle in self._shards]

    def shard_pids(self) -> list[int | None]:
        """OS pids of the live shard processes (None for unspawned)."""
        return [
            handle.process.pid if handle.process is not None else None
            for handle in self._shards
        ]

    def spawn_stats(self) -> dict:
        """What each (re)spawn ships and how long the handshakes took.

        ``template_bytes`` is the pickled engine payload a shard
        receives; in attach mode that excludes the store, which instead
        arrives via the mmap'd snapshot file (``snapshot_bytes``).
        Computing the pickle-mode size is O(store), so this is meant
        for benchmarks and tests, not hot paths.
        """
        if isinstance(self._spawn_payload, bytes):
            template_bytes = len(self._spawn_payload)
        else:
            template_bytes = len(pickle.dumps(self._spawn_payload))
        stats: dict[str, Any] = {
            "mode": "attach" if self._publisher is not None else "pickle",
            "template_bytes": template_bytes,
            "spawn_seconds": list(self._spawn_seconds),
        }
        if self._publisher is not None:
            versions = self._publisher.versions()
            if versions:
                newest = versions[-1]
                stats["snapshot_version"] = newest
                stats["snapshot_bytes"] = (
                    self._publisher.path_for(newest).stat().st_size
                )
        return stats

    def _healthy_indices(self) -> list[int]:
        return [handle.index for handle in self._shards if handle.healthy]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "ShardManager":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def start(self) -> None:
        """Spawn every shard, wait for each ready handshake, supervise."""
        if self._running:
            raise RuntimeError("shard manager already started")
        if self._config.failpoints:
            faults.FAILPOINTS.ensure(
                self._config.failpoints, seed=self._config.failpoint_seed
            )
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *(
                loop.run_in_executor(None, self._spawn_shard, handle)
                for handle in self._shards
            )
        )
        self._running = True
        self._supervisor = loop.create_task(
            self._supervise(), name="shard-supervisor"
        )

    async def stop(self) -> None:
        """SIGTERM every shard, wait for clean exits, release resources."""
        if not self._running:
            return
        self._running = False
        supervisor, self._supervisor = self._supervisor, None
        if supervisor is not None:
            supervisor.cancel()
            try:
                await supervisor
            except asyncio.CancelledError:
                pass
        loop = asyncio.get_running_loop()
        await asyncio.gather(
            *(
                loop.run_in_executor(None, self._stop_shard, handle)
                for handle in self._shards
            )
        )
        if self._durability is not None:
            self._durability.close()

    def _spawn_shard(self, handle: _ShardHandle) -> None:
        """Start one shard process and block until it reports ready.

        Runs on an executor thread — process start-up and the ready
        handshake must not stall the router loop mid-respawn.
        """
        started = time.monotonic()
        recv_conn, send_conn = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=_shard_main,
            args=(send_conn, self._spawn_payload, self._shard_config, handle.index),
            name=f"voice-shard-{handle.index}",
            daemon=True,
        )
        process.start()
        send_conn.close()
        deadline = time.monotonic() + SPAWN_TIMEOUT_SECONDS
        try:
            while not recv_conn.poll(0.1):
                if time.monotonic() > deadline:
                    raise RuntimeError(
                        f"shard {handle.index} did not report ready within "
                        f"{SPAWN_TIMEOUT_SECONDS:.0f}s"
                    )
                if not process.is_alive():
                    raise RuntimeError(
                        f"shard {handle.index} died during startup "
                        f"(exit code {process.exitcode})"
                    )
            message = recv_conn.recv()
        except (EOFError, OSError) as exc:
            process.kill()
            raise RuntimeError(
                f"shard {handle.index} handshake failed: {exc!r}"
            ) from exc
        finally:
            recv_conn.close()
        if message[0] != "ready":
            process.kill()
            raise RuntimeError(f"shard {handle.index} failed to start: {message}")
        handle.process = process
        handle.port = message[2]
        handle.generation += 1
        handle.healthy = True
        self._spawn_seconds.append(time.monotonic() - started)

    def _stop_shard(self, handle: _ShardHandle) -> None:
        handle.healthy = False
        handle.close_connections()
        process = handle.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
        process.join(timeout=30.0)
        if process.is_alive():  # pragma: no cover - drain watchdog
            process.kill()
            process.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    async def _supervise(self) -> None:
        """Detect dead shards and respawn them with the append log."""
        loop = asyncio.get_running_loop()
        while self._running:
            await asyncio.sleep(SUPERVISE_INTERVAL_SECONDS)
            for handle in self._shards:
                if not self._running:
                    return
                if handle.process is not None and not handle.alive:
                    handle.healthy = False
                    handle.close_connections()
                    handle.process.join(timeout=0)
                    handle.respawns += 1
                    self._respawn_total += 1
                    await loop.run_in_executor(None, self._spawn_shard, handle)
                    await self._catch_up(handle)

    async def _catch_up(self, handle: _ShardHandle) -> None:
        """Replay the append log into a freshly respawned shard.

        One batch per request, each confirmed before the next, so the
        shard's maintenance jobs group exactly like the live shards'
        did — the precondition for byte-identical stores.

        In mmap-attach mode the shard started from the newest frozen
        snapshot, whose version equals the append-log position that
        produced it — only the suffix past it needs replaying.
        """
        start_version = 0
        if self._publisher is not None:
            start_version = await self._shard_version(handle)
        for position, (_, rows) in enumerate(self._append_log, start=1):
            if position <= start_version:
                continue
            body = json.dumps({"rows": rows}).encode("utf-8")
            status, payload = await self._shard_request(
                handle, "POST", "/v1/append", body
            )
            if status != 202:
                raise RuntimeError(
                    f"shard {handle.index} rejected replayed append "
                    f"{position}: {status} {payload!r}"
                )
            await self._await_version(handle, position)

    async def _shard_version(self, handle: _ShardHandle) -> int:
        """One shard's current snapshot version (0 when unreadable)."""
        try:
            status, payload = await self._shard_json(handle, "GET", "/healthz")
        except ConnectionError:
            return 0
        if status != 200:
            return 0
        try:
            return max(0, int(payload.get("snapshot_version", 0)))
        except (TypeError, ValueError):
            return 0

    # ------------------------------------------------------------------
    # Raw shard transport
    # ------------------------------------------------------------------
    async def _shard_request(
        self,
        handle: _ShardHandle,
        method: str,
        path: str,
        body: bytes = b"",
    ) -> tuple[int, bytes]:
        """One round-trip to a shard; raw response body bytes.

        Pooled keep-alive connections, retried once on a stale pooled
        connection.  Raises ``ConnectionError`` when the shard is
        unreachable — the caller decides whether to fail over.
        """
        generation = handle.generation
        for attempt in (0, 1):
            reused = bool(handle.idle)
            if handle.idle:
                reader, writer = handle.idle.pop()
            else:
                if handle.port is None:
                    raise ConnectionError(f"shard {handle.index} has no port")
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", handle.port
                )
            try:
                head = (
                    f"{method} {path} HTTP/1.1\r\n"
                    f"Host: 127.0.0.1:{handle.port}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "\r\n"
                )
                writer.write(head.encode("ascii") + body)
                await writer.drain()
                status_line = await reader.readline()
                if not status_line:
                    raise ConnectionResetError("shard closed the connection")
                parts = status_line.decode("latin-1").split(None, 2)
                if len(parts) < 2 or not parts[1].isdigit():
                    raise ConnectionError(f"malformed status line {status_line!r}")
                status = int(parts[1])
                content_length = 0
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    if name.strip().lower() == "content-length":
                        content_length = int(value.strip())
                payload = (
                    await reader.readexactly(content_length)
                    if content_length
                    else b""
                )
            except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
                try:
                    writer.close()
                except Exception:
                    pass
                if reused and attempt == 0:
                    continue
                raise ConnectionError(
                    f"shard {handle.index} request failed: {exc!r}"
                ) from exc
            except BaseException:
                try:
                    writer.close()
                except Exception:
                    pass
                raise
            if handle.healthy and handle.generation == generation:
                handle.idle.append((reader, writer))
            else:
                try:
                    writer.close()
                except Exception:
                    pass
            return status, payload
        raise AssertionError("unreachable")  # pragma: no cover

    async def _shard_json(
        self, handle: _ShardHandle, method: str, path: str, body: bytes = b""
    ) -> tuple[int, dict]:
        status, raw = await self._shard_request(handle, method, path, body)
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            payload = {}
        if not isinstance(payload, dict):
            payload = {"value": payload}
        return status, payload

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route_key(self, body: bytes) -> str | None:
        """Extract the routing key without a JSON parse on the fast path."""
        marker = body.find(_SESSION_MARKER)
        if marker < 0:
            return None
        # Session-less envelopes still carry ``"session_id": null`` —
        # skip the parse unless the value could actually be a string.
        rest = body[marker + len(_SESSION_MARKER) :].lstrip()
        if rest.startswith(b":"):
            rest = rest[1:].lstrip()
            if rest.startswith(b"null"):
                return None
        try:
            payload = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        session_id = payload.get("session_id") if isinstance(payload, dict) else None
        if isinstance(session_id, str) and session_id:
            return session_id
        return None

    def _pick_shard(self, session_key: str | None) -> _ShardHandle:
        healthy = self._healthy_indices()
        if not healthy:
            raise ServiceOverloadedError("no healthy shards available")
        if session_key is not None:
            return self._shards[self._ring.route(session_key, healthy)]
        self._round_robin += 1
        return self._shards[healthy[self._round_robin % len(healthy)]]

    def _maybe_crash_shard(self, handle: _ShardHandle) -> None:
        """The ``shard.crash`` failpoint: SIGKILL the routed shard.

        Evaluated router-side (like ``worker.crash`` is parent-side) so
        the rule's counters live in one process and ``times=1`` means
        exactly one crash regardless of shard count.  The request that
        drew the crash then fails over to a healthy shard — the
        zero-lost-requests contract the chaos smoke asserts.
        """
        rule = faults.FAILPOINTS.trigger(faults.SHARD_CRASH)
        if rule is None:
            return
        process = handle.process
        if process is not None and process.is_alive() and process.pid:
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=5.0)
        handle.healthy = False
        handle.close_connections()

    async def relay_ask(self, body: bytes) -> tuple[int, bytes]:
        """Forward one ``/v1/ask`` body; the shard's raw response bytes.

        The hot path: no envelope decode/encode in the router.  A shard
        that dies mid-forward is marked down and the request retries on
        the next healthy shard, until every shard has been tried.
        """
        if not self._running:
            return 503, json.dumps(
                {"code": "draining", "error": "shard router is stopping"}
            ).encode("utf-8")
        session_key = self._route_key(body)
        last_error = "no healthy shards available"
        for _ in range(self._shard_count + 1):
            try:
                handle = self._pick_shard(session_key)
            except ServiceOverloadedError as exc:
                last_error = str(exc)
                break
            self._maybe_crash_shard(handle)
            if not handle.healthy:
                continue
            try:
                return await self._shard_request(handle, "POST", "/v1/ask", body)
            except ConnectionError as exc:
                # The shard died under the request (crash failpoint or a
                # real fault): fail it over, never the client.
                handle.healthy = False
                handle.close_connections()
                self._relay_retries += 1
                last_error = str(exc)
        return 503, json.dumps(
            {"code": "overloaded", "error": last_error}
        ).encode("utf-8")

    async def submit(self, request: VoiceRequest | str) -> VoiceResponse:
        """Typed ask, routed like :meth:`relay_ask` (for in-process use)."""
        if isinstance(request, str):
            request = VoiceRequest(text=request)
        body = json.dumps(request.to_dict(), allow_nan=False).encode("utf-8")
        status, raw = await self.relay_ask(body)
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise VoiceApiError(f"shard sent invalid JSON: {exc}") from exc
        if status == 200:
            try:
                return response_from_dict(payload)
            except EnvelopeError as exc:
                raise VoiceApiError(
                    f"shard sent a malformed envelope: {exc}"
                ) from exc
        if status == 503:
            raise ServiceOverloadedError(
                str(payload.get("error", "service overloaded")), status=503
            )
        raise VoiceApiError(
            f"shard answered /v1/ask with {status}: {payload.get('error', payload)}",
            status=status,
        )

    async def describe_session(self, session_id: str) -> dict | None:
        """The session summary from its owning shard (None if unknown)."""
        healthy = self._healthy_indices()
        if not healthy:
            return None
        handle = self._shards[self._ring.route(session_id, healthy)]
        from urllib.parse import quote

        path = f"/v1/sessions/{quote(session_id, safe='')}"
        try:
            status, payload = await self._shard_json(handle, "GET", path)
        except ConnectionError:
            return None
        if status != 200:
            return None
        payload["shard"] = handle.index
        return payload

    # ------------------------------------------------------------------
    # Maintenance fan-out
    # ------------------------------------------------------------------
    def build_append_table(self, rows: list) -> Table:
        """Validate JSON rows against the deployment's table schema.

        Appends never change the schema, so the base engine's column
        layout is authoritative even though the maintained tables live
        inside the shards.
        """
        schema = self._engine.table
        names = schema.column_names
        types = [column.ctype for column in schema.columns]
        materialized = []
        for row in rows:
            if isinstance(row, dict):
                missing = [name for name in names if name not in row]
                if missing:
                    raise EnvelopeError(f"append row is missing columns {missing}")
                materialized.append([row[name] for name in names])
            elif isinstance(row, (list, tuple)):
                materialized.append(list(row))
            else:
                raise EnvelopeError(
                    f"append row must be an object or array, got {type(row).__name__}"
                )
        try:
            return Table.from_rows(schema.name, names, types, materialized)
        except (SchemaError, TypeMismatchError) as exc:
            raise EnvelopeError(
                f"append rows do not match the table schema: {exc}"
            ) from exc

    async def request_append(self, new_rows: Table) -> int | None:
        """Journal, broadcast and barrier one append batch.

        Returns once **every healthy shard** serves the new snapshot
        version — the version barrier — so an acked append is never
        followed by a stale answer from any shard.  With a ``data_dir``
        the batch is journalled before the broadcast (the return value
        is its seq) and its applied marker lands after the barrier.
        Respawned shards catch up from the append log, so a shard that
        is down during the broadcast still converges.
        """
        async with self._append_lock:
            seq: int | None = None
            if self._durability is not None:
                seq = self._durability.log_append(new_rows)
            rows = new_rows.to_dicts()
            self._append_log.append((seq, rows))
            target_version = len(self._append_log)
            body = json.dumps({"rows": rows}).encode("utf-8")
            statuses = await asyncio.gather(
                *(
                    self._shard_json(handle, "POST", "/v1/append", body)
                    for handle in self._shards
                    if handle.healthy
                ),
                return_exceptions=True,
            )
            for result in statuses:
                if isinstance(result, BaseException):
                    continue  # the shard died; respawn catch-up covers it
                status, payload = result
                if status == 503:
                    raise MaintenanceUnavailableError(
                        str(payload.get("error", "maintenance unavailable"))
                    )
                if status != 202:
                    raise RuntimeError(
                        f"append broadcast failed with {status}: {payload!r}"
                    )
            await asyncio.gather(
                *(
                    self._await_version(handle, target_version)
                    for handle in self._shards
                    if handle.healthy
                )
            )
            self._version = target_version
            if self._durability is not None and seq is not None:
                self._durability.mark_applied([seq], store_version=target_version)
            return seq

    async def _await_version(self, handle: _ShardHandle, version: int) -> None:
        """Poll one shard's ``/healthz`` until its snapshot reaches ``version``."""
        deadline = time.monotonic() + BARRIER_TIMEOUT_SECONDS
        while True:
            try:
                status, payload = await self._shard_json(handle, "GET", "/healthz")
            except ConnectionError:
                if not handle.alive:
                    return  # died mid-barrier; respawn catch-up re-applies
                status, payload = 0, {}
            if status == 200 and int(payload.get("snapshot_version", -1)) >= version:
                return
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"shard {handle.index} never reached snapshot version "
                    f"{version} (last: {payload.get('snapshot_version')!r})"
                )
            await asyncio.sleep(0.02)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    async def metrics_summary(self) -> dict:
        """Every shard's metrics folded into one envelope + breakdown.

        Counters sum, ``qps`` sums (shards serve concurrently),
        ``hit_rate`` is recomputed from the summed response kinds, and
        the latency percentiles are completed-weighted averages of the
        shard percentiles — an approximation (true aggregate
        percentiles need the raw samples), labelled per shard in the
        ``shards`` breakdown so operators can read the exact values.
        """
        per_shard: dict[str, dict] = {}
        totals = {
            key: 0
            for key in (
                "submitted",
                "completed",
                "rejected",
                "errors",
                "timeouts",
                "inline",
                "offloaded",
                "exact_hits",
            )
        }
        kinds: dict[str, int] = {}
        qps = 0.0
        weighted = {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
        for handle in self._shards:
            if not handle.healthy:
                per_shard[str(handle.index)] = {"status": "down"}
                continue
            try:
                status, summary = await self._shard_json(
                    handle, "GET", "/v1/metrics"
                )
            except ConnectionError:
                per_shard[str(handle.index)] = {"status": "unreachable"}
                continue
            if status != 200:
                per_shard[str(handle.index)] = {"status": f"http {status}"}
                continue
            per_shard[str(handle.index)] = summary
            handle.last_sessions = int(summary.get("sessions", 0))
            handle.last_queue_depth = int(summary.get("queue_depth", 0))
            for key in totals:
                totals[key] += int(summary.get(key, 0))
            for kind, count in (summary.get("responses_by_kind") or {}).items():
                kinds[kind] = kinds.get(kind, 0) + int(count)
            qps += float(summary.get("qps", 0.0))
            for key in weighted:
                weighted[key] += float(summary.get(key, 0.0)) * int(
                    summary.get("completed", 0)
                )
        completed = totals["completed"]
        hits = kinds.get("speech", 0)
        misses = kinds.get("no_data", 0)
        aggregated: dict[str, Any] = dict(totals)
        aggregated["responses_by_kind"] = dict(sorted(kinds.items()))
        aggregated["qps"] = qps
        aggregated["hit_rate"] = hits / (hits + misses) if hits + misses else 0.0
        for key, value in weighted.items():
            aggregated[key] = value / completed if completed else 0.0
        aggregated["router"] = {
            "shards": self._shard_count,
            "healthy_shards": len(self._healthy_indices()),
            "respawns": self._respawn_total,
            "relay_retries": self._relay_retries,
            "appends_broadcast": len(self._append_log),
            "snapshot_version": self._version,
        }
        aggregated["durability"] = (
            self._durability.stats() if self._durability is not None else None
        )
        aggregated["shards"] = per_shard
        return aggregated

    async def store_digests(self) -> dict[str, Any]:
        """Every healthy shard's store digest (the byte-parity probe)."""
        digests: dict[str, str | None] = {}
        for handle in self._shards:
            if not handle.healthy:
                digests[str(handle.index)] = None
                continue
            try:
                status, payload = await self._shard_json(
                    handle, "GET", "/v1/store/digest"
                )
            except ConnectionError:
                digests[str(handle.index)] = None
                continue
            digests[str(handle.index)] = (
                payload.get("digest") if status == 200 else None
            )
        present = [digest for digest in digests.values() if digest is not None]
        return {
            "digests": digests,
            "snapshot_version": self._version,
            "consistent": bool(present) and len(set(present)) == 1,
        }

    async def store_digest(self) -> dict[str, Any]:
        """Awaitable alias so the HTTP server treats manager and service alike."""
        return await self.store_digests()

    def health(self) -> dict:
        """Router health: degraded while any shard is down.

        A completed respawn clears the degradation — past crashes stay
        visible in :meth:`reliability` and the ``router`` metrics, not
        here, so orchestration probes see recovery.
        """
        if not self._running:
            return {"status": "draining", "reasons": ["shard router is stopping"]}
        reasons = []
        for handle in self._shards:
            if not handle.healthy or not handle.alive:
                reasons.append(f"shard {handle.index} is down")
        return {
            "status": "degraded" if reasons else "ok",
            "reasons": reasons,
            "shards": self._shard_count,
            "healthy_shards": len(self._healthy_indices()),
        }

    def reliability(self) -> dict:
        """Router-side reliability counters (shape mirrors the service's)."""
        return {
            "shard_respawns": self._respawn_total,
            "relay_retries": self._relay_retries,
            "healthy_shards": len(self._healthy_indices()),
        }


def shard_indices_for(
    ring: ConsistentHashRing, keys: Sequence[str]
) -> dict[str, int]:
    """Owner indices for many keys (test/benchmark helper)."""
    return {key: ring.owner(key) for key in keys}
