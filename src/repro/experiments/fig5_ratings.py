"""Figure 5: worker preferences correlate with the speech quality model.

For the flights and ACS datasets, 100 random speeches are ranked by the
quality model; the best, median and worst ranked speeches are rated by
(simulated) workers on four adjectives and compared pairwise.  The
expected shape: ratings and win counts increase monotonically from
worst to best ranked speech.
"""

from __future__ import annotations

from repro.datasets import load_dataset
from repro.experiments.runner import ExperimentResult
from repro.experiments.speech_pool import build_speech_pool
from repro.userstudy.ratings import DEFAULT_ADJECTIVES, RatingStudy, SpeechCandidate
from repro.userstudy.worker import WorkerPool

#: Datasets and targets used for the Figure 5 study.
FIGURE5_SCENARIOS = {
    "flights": ("flights", "cancellation", 400),
    "acs": ("acs", "visual_impairment", 400),
}


def run_figure5(
    workers: int = 50,
    pool_size: int = 100,
    seed: int = 17,
) -> ExperimentResult:
    """Run the rating study for the best / median / worst random speeches."""
    result = ExperimentResult(
        name="figure5",
        description="Preferences of (simulated) workers vs the speech quality model",
    )
    worker_pool = WorkerPool(size=workers, seed=seed)
    study = RatingStudy(pool=worker_pool, adjectives=DEFAULT_ADJECTIVES)

    for label, (dataset_key, target, rows) in FIGURE5_SCENARIOS.items():
        dataset = load_dataset(dataset_key, num_rows=rows)
        relation = dataset.relation(target)
        pool = build_speech_pool(relation, target, pool_size=pool_size, seed=seed)
        candidates = [
            SpeechCandidate("Worst", pool.worst.text, pool.worst.scaled_utility),
            SpeechCandidate("Medium", pool.median.text, pool.median.scaled_utility),
            SpeechCandidate("Best", pool.best.text, pool.best.scaled_utility),
        ]
        outcome = study.run(candidates)
        for candidate in candidates:
            ratings = outcome.average_ratings[candidate.label]
            row = {
                "dataset": label,
                "speech": candidate.label,
                "model_scaled_utility": candidate.scaled_utility,
                "wins": outcome.wins[candidate.label],
            }
            row.update({adjective: ratings[adjective] for adjective in DEFAULT_ADJECTIVES})
            result.add_row(**row)
    result.notes.append(
        "workers are simulated (closest-relevant-value behaviour with noise); "
        "speeches come from real random pools ranked by the utility model"
    )
    return result


def quality_rating_correlation(result: ExperimentResult) -> float:
    """Spearman-style check: fraction of dataset/adjective pairs where the
    rating order matches the model order (1.0 = perfectly consistent)."""
    consistent = 0
    total = 0
    datasets = {row["dataset"] for row in result.rows}
    for dataset in datasets:
        rows = {row["speech"]: row for row in result.rows if row["dataset"] == dataset}
        if not {"Worst", "Medium", "Best"} <= set(rows):
            continue
        for adjective in DEFAULT_ADJECTIVES:
            total += 1
            if rows["Worst"][adjective] <= rows["Best"][adjective]:
                consistent += 1
    return consistent / total if total else 0.0
