"""Experiment harness: one module per table / figure of the paper.

Every module exposes a ``run_*`` function that executes the experiment
on the synthetic datasets (scaled down so the whole suite runs on a
laptop) and returns an :class:`ExperimentResult` whose rows mirror the
rows/series of the corresponding table or figure.  The benchmark
targets under ``benchmarks/`` are thin wrappers that call these
functions and print the results.
"""

from repro.experiments.runner import ExperimentResult, format_rows

__all__ = ["ExperimentResult", "format_rows"]
