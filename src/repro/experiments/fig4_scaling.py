"""Figure 4: scaling speech length and fact dimensions (G-O vs G-P).

The paper scales two parameters for the A-H, F-C and S-O scenarios: the
speech length (number of selected facts, 2-5) and the maximal number of
dimension columns mentioned per fact (1-3).  Scaling is more graceful
in the speech length than in the fact dimensions, and G-O reduces
overheads compared to G-P.
"""

from __future__ import annotations

from repro.algorithms import OptimizedGreedySummarizer, PrunedGreedySummarizer
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import ScenarioScale, build_scenario_problems

#: Scenarios shown in Figure 4.
FIGURE4_SCENARIOS = ("A-H", "F-C", "S-O")
#: Speech lengths scaled in the top row of Figure 4.
SPEECH_LENGTHS = (2, 3, 4)
#: Fact dimension limits scaled in the bottom row of Figure 4.
FACT_DIMENSIONS = (1, 2, 3)


def run_figure4(
    scenarios: tuple[str, ...] = FIGURE4_SCENARIOS,
    speech_lengths: tuple[int, ...] = SPEECH_LENGTHS,
    fact_dimensions: tuple[int, ...] = FACT_DIMENSIONS,
    queries_per_scenario: int = 3,
    seed: int = 3,
) -> ExperimentResult:
    """Measure G-P and G-O while scaling speech length and fact dimensions."""
    result = ExperimentResult(
        name="figure4",
        description="Scaling speech length and fact dimensions (G-P vs G-O)",
    )
    algorithms = {"G-P": PrunedGreedySummarizer(), "G-O": OptimizedGreedySummarizer()}

    for scenario in scenarios:
        # Top row: scale the speech length at the default fact-dimension limit.
        for length in speech_lengths:
            scale = ScenarioScale(
                queries_per_scenario=queries_per_scenario,
                max_facts_per_speech=length,
                max_fact_dimensions=2,
            )
            problems = build_scenario_problems(scenario, scale=scale, seed=seed)
            for name, algorithm in algorithms.items():
                seconds, evaluations, scaled = _run_problems(algorithm, problems)
                result.add_row(
                    scenario=scenario,
                    parameter="speech_length",
                    value=length,
                    algorithm=name,
                    total_seconds=seconds,
                    fact_evaluations=evaluations,
                    avg_scaled_utility=scaled,
                )
        # Bottom row: scale the fact-dimension limit at the default length.
        for dims in fact_dimensions:
            scale = ScenarioScale(
                queries_per_scenario=queries_per_scenario,
                max_facts_per_speech=3,
                max_fact_dimensions=dims,
            )
            problems = build_scenario_problems(scenario, scale=scale, seed=seed)
            for name, algorithm in algorithms.items():
                seconds, evaluations, scaled = _run_problems(algorithm, problems)
                result.add_row(
                    scenario=scenario,
                    parameter="fact_dimensions",
                    value=dims,
                    algorithm=name,
                    total_seconds=seconds,
                    fact_evaluations=evaluations,
                    avg_scaled_utility=scaled,
                )
    return result


def _run_problems(algorithm, problems) -> tuple[float, int, float]:
    """Total time, fact evaluations and mean scaled utility over problems."""
    seconds = 0.0
    evaluations = 0
    scaled = 0.0
    for problem in problems:
        outcome = algorithm.summarize(problem)
        seconds += outcome.statistics.elapsed_seconds
        evaluations += outcome.statistics.fact_evaluations
        scaled += outcome.scaled_utility
    mean_scaled = scaled / len(problems) if problems else 0.0
    return seconds, evaluations, mean_scaled


def scaling_series(result: ExperimentResult, parameter: str, algorithm: str) -> dict[str, list]:
    """Extract one Figure 4 curve: cost as a function of the scaled parameter."""
    series: dict[str, list] = {}
    for row in result.rows:
        if row["parameter"] != parameter or row["algorithm"] != algorithm:
            continue
        series.setdefault(row["scenario"], []).append(
            (row["value"], row["fact_evaluations"])
        )
    for scenario in series:
        series[scenario].sort()
    return series
