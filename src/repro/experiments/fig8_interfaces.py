"""Figure 8: user study comparing the voice interface to a visual tool.

Ten participants answer three randomly generated two-predicate
questions per interface and rate overall usability.  The voice side of
the study exercises the real engine (pre-processing plus run-time
lookups over the Stack Overflow data); the human timings and the visual
tool are simulated.  Expected shape: the majority of participants are
slightly faster with the voice interface; usability ratings are
comparable.
"""

from __future__ import annotations

from repro.datasets import load_dataset
from repro.experiments.runner import ExperimentResult
from repro.system.config import SummarizationConfig
from repro.system.engine import VoiceQueryEngine
from repro.userstudy.interface_study import InterfaceStudy


def build_study_engine(rows: int = 600, max_problems: int | None = 400) -> VoiceQueryEngine:
    """Prepare a voice engine over the Stack Overflow dataset."""
    dataset = load_dataset("stackoverflow", num_rows=rows)
    config = SummarizationConfig.create(
        table="stackoverflow",
        dimensions=("region", "dev_type", "experience"),
        targets=("competence", "optimism", "job_satisfaction"),
        max_query_length=2,
        max_facts_per_speech=3,
        max_fact_dimensions=1,
        algorithm="G-B",
    )
    engine = VoiceQueryEngine(config, dataset.table)
    engine.preprocess(max_problems=max_problems)
    return engine


def run_figure8(
    participants: int = 10,
    questions_per_interface: int = 3,
    rows: int = 600,
    max_problems: int | None = 400,
    seed: int = 5,
) -> ExperimentResult:
    """Run the interface comparison study."""
    engine = build_study_engine(rows=rows, max_problems=max_problems)
    study = InterfaceStudy(
        engine,
        participants=participants,
        questions_per_interface=questions_per_interface,
        seed=seed,
    )
    outcome = study.run()

    result = ExperimentResult(
        name="figure8",
        description="User study comparing visual to voice query interfaces",
    )
    for participant in outcome.participants:
        result.add_row(
            participant=participant.participant,
            vocal_time_s=participant.vocal_time,
            visual_time_s=participant.visual_time,
            vocal_rating=participant.vocal_rating,
            visual_rating=participant.visual_rating,
        )
    result.notes.append(
        f"median vocal time {outcome.median_vocal_time:.1f}s vs "
        f"median visual time {outcome.median_visual_time:.1f}s; "
        f"{outcome.faster_with_voice}/{len(outcome.participants)} participants faster with voice"
    )
    result.notes.append(
        f"mean usability: vocal {outcome.mean_vocal_rating:.1f}, visual {outcome.mean_visual_rating:.1f}"
    )
    result.notes.append(
        f"{outcome.questions_asked} questions asked, {outcome.unanswered_questions} unanswered"
    )
    return result
