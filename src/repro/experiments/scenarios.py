"""Evaluation scenarios shared by the Figure 3 / Figure 4 experiments.

A scenario is a (dataset, target column) pair; the paper evaluates
eight of them: flight cancellations and delays (F-C, F-D), ACS hearing
/ visual / cognitive impairment (A-H, A-V, A-C), and Stack Overflow
competence / optimism / job satisfaction (S-C, S-O, S-S).

Because the original experiments run for hours against Postgres on EC2
(with a 48-hour timeout for exact optimization), the reproduction
scales the workload down: fewer rows, a subset of the dimensions, and a
sample of the pre-processing queries per scenario.  The scaling factors
are captured in :class:`ScenarioScale` so they can be varied and are
reported alongside the results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.problem import SummarizationProblem
from repro.datasets import load_dataset
from repro.system.config import SummarizationConfig
from repro.system.problem_generator import ProblemGenerator
from repro.system.queries import DataQuery

#: Scenario label -> (dataset key, target column), following Figure 3.
SCENARIOS: dict[str, tuple[str, str]] = {
    "F-C": ("flights", "cancellation"),
    "F-D": ("flights", "delay_minutes"),
    "A-H": ("acs", "hearing_impairment"),
    "A-V": ("acs", "visual_impairment"),
    "A-C": ("acs", "cognitive_impairment"),
    "S-C": ("stackoverflow", "competence"),
    "S-O": ("stackoverflow", "optimism"),
    "S-S": ("stackoverflow", "job_satisfaction"),
}

#: Dimensions used per dataset in the scaled-down scenarios.  Using three
#: dimensions keeps the exact algorithm tractable while preserving the
#: relative fact counts between scenarios (Stack Overflow > Flights > ACS).
SCENARIO_DIMENSIONS: dict[str, tuple[str, ...]] = {
    "flights": ("origin_region", "season", "time_of_day"),
    "acs": ("borough", "age_group", "sex"),
    "stackoverflow": ("region", "dev_type", "experience"),
    "primaries": ("candidate", "state_region", "month"),
}

#: Rows generated per dataset for the scenario experiments.
SCENARIO_ROWS: dict[str, int] = {
    "flights": 600,
    "acs": 400,
    "stackoverflow": 800,
    "primaries": 500,
}


@dataclass(frozen=True)
class ScenarioScale:
    """Scaling knobs for a scenario experiment.

    Attributes
    ----------
    queries_per_scenario:
        Number of pre-processing queries sampled per scenario (the paper
        solves all of them; thousands per scenario).
    max_query_length:
        Maximal number of predicates per sampled query.
    max_facts_per_speech:
        Speech length m.
    max_fact_dimensions:
        Dimension columns a fact may restrict beyond the query's own
        predicates.
    row_fraction:
        Multiplier on the default scenario row counts.
    """

    queries_per_scenario: int = 4
    max_query_length: int = 1
    max_facts_per_speech: int = 3
    max_fact_dimensions: int = 2
    row_fraction: float = 1.0


SMALL_SCALE = ScenarioScale()
TINY_SCALE = ScenarioScale(
    queries_per_scenario=2,
    max_facts_per_speech=2,
    max_fact_dimensions=1,
    row_fraction=0.5,
)


def scenario_labels() -> list[str]:
    """All scenario labels, in Figure 3 order."""
    return list(SCENARIOS)


def build_scenario_config(label: str, scale: ScenarioScale) -> SummarizationConfig:
    """The summarization configuration used for one scenario."""
    dataset_key, target = SCENARIOS[label]
    return SummarizationConfig.create(
        table=dataset_key,
        dimensions=SCENARIO_DIMENSIONS[dataset_key],
        targets=(target,),
        max_query_length=scale.max_query_length,
        max_facts_per_speech=scale.max_facts_per_speech,
        max_fact_dimensions=scale.max_fact_dimensions,
    )


def build_scenario_problems(
    label: str,
    scale: ScenarioScale = SMALL_SCALE,
    seed: int = 3,
) -> list[SummarizationProblem]:
    """Sample pre-processing problems for one scenario.

    The empty-predicate query (summarize the whole dataset) is always
    included; the remaining queries are sampled uniformly from the
    enumerated query list.
    """
    if label not in SCENARIOS:
        raise KeyError(f"unknown scenario {label!r}; available: {scenario_labels()}")
    dataset_key, target = SCENARIOS[label]
    rows = max(50, int(SCENARIO_ROWS[dataset_key] * scale.row_fraction))
    dataset = load_dataset(dataset_key, num_rows=rows)
    config = build_scenario_config(label, scale)
    generator = ProblemGenerator(config, dataset.table)

    queries = list(generator.enumerate_queries())
    rng = random.Random(seed)
    overall = DataQuery.create(target, {})
    sampled = [overall]
    remaining = [q for q in queries if q.length > 0]
    rng.shuffle(remaining)
    sampled.extend(remaining[: max(0, scale.queries_per_scenario - 1)])

    problems = []
    for query in sampled:
        problem = generator.build_problem(query)
        if problem is not None:
            problems.append(problem)
    return problems
