"""Section VIII-E (ML baseline): training a text model on seed summaries.

The paper trains a seq2seq model on 49 (facts, summary) pairs for
queries placing one predicate on the flight start-region dimension and
tests on three held-out queries, finding that ML-generated speeches are
rated consistently lower because they repeat dimensions and focus on
overly narrow data subsets.  The reproduction uses the template-based
substitute model over the synthetic flights data (the month dimension
provides one query per value, scaled down from the paper's 52 regions).
"""

from __future__ import annotations

from repro.core.problem import SummarizationProblem
from repro.datasets import load_dataset
from repro.experiments.runner import ExperimentResult
from repro.mlbaseline.corpus import build_corpus, split_corpus
from repro.mlbaseline.evaluation import evaluate_against_reference
from repro.mlbaseline.model import TemplateSeq2SeqModel
from repro.system.config import SummarizationConfig
from repro.system.preprocessor import Preprocessor
from repro.system.problem_generator import ProblemGenerator
from repro.userstudy.worker import WorkerPool


def run_ml_baseline(
    rows: int = 600,
    test_size: int = 3,
    workers: int = 30,
    seed: int = 23,
) -> ExperimentResult:
    """Train the ML substitute on pre-generated summaries and compare."""
    dataset = load_dataset("flights", num_rows=rows)
    config = SummarizationConfig.create(
        table="flights",
        dimensions=("month", "origin_region", "time_of_day"),
        targets=("cancellation",),
        max_query_length=1,
        max_facts_per_speech=3,
        max_fact_dimensions=1,
        algorithm="G-B",
    )
    generator = ProblemGenerator(config, dataset.table)
    preprocessor = Preprocessor(config)
    store, _report = preprocessor.run(generator)

    # Candidate facts and problems per query key (needed by the corpus
    # builder and the evaluation).
    problems: dict[tuple, SummarizationProblem] = {}
    candidate_facts: dict[tuple, list] = {}
    for generated in generator.generate():
        key = generated.query.key()
        problems[key] = generated.problem
        candidate_facts[key] = list(generated.problem.candidate_facts)

    corpus = build_corpus(
        store,
        dimension="month",
        target="cancellation",
        candidate_facts_per_query=candidate_facts,
    )
    train, test = split_corpus(corpus, test_size=test_size)

    result = ExperimentResult(
        name="ml_baseline",
        description="ML-generated summaries vs our approach (Section VIII-E)",
    )
    if not train or not test:
        result.notes.append("not enough corpus examples to run the study")
        return result

    model = TemplateSeq2SeqModel()
    training = model.fit(train)
    comparison = evaluate_against_reference(
        model, test, problems, pool=WorkerPool(size=workers, seed=seed)
    )

    for adjective in comparison.reference_ratings:
        result.add_row(
            adjective=adjective,
            ml_rating=comparison.ml_ratings.get(adjective, 0.0),
            our_rating=comparison.reference_ratings[adjective],
        )
    result.notes.append(
        f"trained on {training.examples} examples ({training.epochs} epochs, "
        f"{training.training_seconds * 1000:.1f} ms); "
        f"generation {comparison.generation_seconds_per_sample * 1000:.1f} ms per sample"
    )
    result.notes.append(
        f"ML scaled utility {comparison.ml_mean_scaled_utility:.3f} vs "
        f"ours {comparison.reference_mean_scaled_utility:.3f}; "
        f"ML redundant-fact rate {comparison.ml_redundant_fact_rate:.2f}; "
        f"ML mean scope arity {comparison.ml_mean_scope_arity:.2f} vs "
        f"ours {comparison.reference_mean_scope_arity:.2f}"
    )
    return result
