"""Figure 7: how workers resolve conflicting facts.

For the ACS data (borough and age group) and the flights data (season
and time of day), workers receive four single-dimension facts and
estimate the four value combinations covered by two conflicting facts
each.  Four prediction models are compared by median error against the
worker answers; the paper finds the closest-relevant-value model fits
best.
"""

from __future__ import annotations

from repro.datasets import load_dataset
from repro.experiments.runner import ExperimentResult
from repro.userstudy.conflict import ConflictStudy
from repro.userstudy.worker import WorkerPool

#: Study setup per dataset: target, the two dimensions and the two values per dimension.
FIGURE7_SETUPS = {
    "ACS": {
        "dataset": "acs",
        "rows": 400,
        "target": "visual_impairment",
        "dimension_a": "borough",
        "values_a": ("Staten Island", "Bronx"),
        "dimension_b": "age_group",
        "values_b": ("Teenagers", "Elders"),
    },
    "Flights": {
        "dataset": "flights",
        "rows": 600,
        "target": "delay_minutes",
        "dimension_a": "season",
        "values_a": ("Winter", "Summer"),
        "dimension_b": "time_of_day",
        "values_b": ("Morning", "Evening"),
    },
}


def run_figure7(workers_per_combination: int = 20, seed: int = 29) -> ExperimentResult:
    """Run the conflict-resolution study for both datasets."""
    result = ExperimentResult(
        name="figure7",
        description="Error of models predicting how workers process conflicting facts",
    )
    for label, setup in FIGURE7_SETUPS.items():
        dataset = load_dataset(setup["dataset"], num_rows=setup["rows"])
        relation = dataset.relation(setup["target"])
        prior = float(relation.target_values.mean())
        study = ConflictStudy(
            pool=WorkerPool(size=workers_per_combination, seed=seed),
            workers_per_combination=workers_per_combination,
        )
        outcome = study.run(
            relation,
            dimension_a=setup["dimension_a"],
            values_a=setup["values_a"],
            dimension_b=setup["dimension_b"],
            values_b=setup["values_b"],
            prior=prior,
        )
        for model, error in outcome.errors.items():
            result.add_row(
                dataset=label,
                model=model,
                median_error=error,
                combinations=outcome.combinations,
                hits=outcome.hits,
            )
    result.notes.append(
        "worker answers are simulated with a predominantly closest-value population"
    )
    return result


def best_models(result: ExperimentResult) -> dict[str, str]:
    """The model with minimal median error per dataset."""
    best: dict[str, str] = {}
    for dataset in {row["dataset"] for row in result.rows}:
        rows = [row for row in result.rows if row["dataset"] == dataset]
        winner = min(rows, key=lambda row: row["median_error"])
        best[dataset] = winner["model"]
    return best
