"""Figure 6: worker estimates after hearing the worst vs the best speech.

Workers estimate visual-impairment prevalence for every New York City
borough and age group after hearing either the worst-ranked or the
best-ranked speech from the ACS pool.  The expected shape: estimates
based on the best speech track the correct values much more closely
than estimates based on the worst speech.
"""

from __future__ import annotations

from itertools import product

from repro.datasets import load_dataset
from repro.datasets.acs import AGE_GROUPS, BOROUGHS
from repro.experiments.runner import ExperimentResult
from repro.experiments.speech_pool import build_speech_pool
from repro.userstudy.estimation import EstimationStudy
from repro.userstudy.worker import WorkerPool


def run_figure6(
    workers_per_point: int = 20,
    pool_size: int = 100,
    rows: int = 400,
    seed: int = 17,
) -> ExperimentResult:
    """Reproduce the borough × age-group estimation grid of Figure 6."""
    dataset = load_dataset("acs", num_rows=rows)
    relation = dataset.relation("visual_impairment")
    pool = build_speech_pool(relation, "visual_impairment", pool_size=pool_size, seed=seed)

    prior = float(relation.target_values.mean())
    study = EstimationStudy(
        pool=WorkerPool(size=workers_per_point, seed=seed),
        workers_per_point=workers_per_point,
    )
    points = [
        {"borough": borough, "age_group": age_group}
        for borough, age_group in product(BOROUGHS, AGE_GROUPS)
    ]
    outcome = study.run(
        relation,
        speeches={"worst": pool.worst.speech, "best": pool.best.speech},
        points=points,
        prior=prior,
    )

    result = ExperimentResult(
        name="figure6",
        description="Worker estimates for visual impairment after worst/best speech",
    )
    for point in outcome.points:
        result.add_row(
            borough=point.assignments["borough"],
            age_group=point.assignments["age_group"],
            correct=point.correct,
            worst_estimate=point.estimates["worst"],
            best_estimate=point.estimates["best"],
            worst_error=point.error("worst"),
            best_error=point.error("best"),
        )
    result.notes.append(
        f"best speech scaled utility {pool.best.scaled_utility:.3f}, "
        f"worst speech scaled utility {pool.worst.scaled_utility:.3f}"
    )
    result.notes.append(f"{outcome.hits} simulated HITs answered")
    return result


def mean_errors(result: ExperimentResult) -> dict[str, float]:
    """Mean absolute estimation error under the worst vs the best speech."""
    if not result.rows:
        return {"worst": 0.0, "best": 0.0}
    worst = sum(row["worst_error"] for row in result.rows) / len(result.rows)
    best = sum(row["best_error"] for row in result.rows) / len(result.rows)
    return {"worst": worst, "best": best}
