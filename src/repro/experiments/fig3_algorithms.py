"""Figure 3: computation time and utility of E, G-B, G-P and G-O.

For every scenario (dataset/target pair) the paper reports total
pre-processing time and the average utility of the generated speeches,
scaled to one per problem instance.  The expected shape: exact
optimization is orders of magnitude slower than the greedy variants
while greedy utility stays close to optimal (≥ 98% on average, far
above the theoretical (1 − 1/e) ≈ 63%); cost-based pruning (G-O)
reduces greedy time compared to naive pruning (G-P) and the base
version (G-B).
"""

from __future__ import annotations

from repro.algorithms import (
    ExactSummarizer,
    GreedySummarizer,
    OptimizedGreedySummarizer,
    PrunedGreedySummarizer,
)
from repro.algorithms.base import Summarizer
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import (
    SMALL_SCALE,
    ScenarioScale,
    build_scenario_problems,
    scenario_labels,
)

#: Figure 3 compares these four algorithms.
FIGURE3_ALGORITHMS = ("E", "G-B", "G-P", "G-O")


def _make_algorithms() -> dict[str, Summarizer]:
    return {
        "E": ExactSummarizer(),
        "G-B": GreedySummarizer(),
        "G-P": PrunedGreedySummarizer(),
        "G-O": OptimizedGreedySummarizer(),
    }


def run_figure3(
    scenarios: list[str] | None = None,
    scale: ScenarioScale = SMALL_SCALE,
    seed: int = 3,
) -> ExperimentResult:
    """Run all four algorithms over the scenario problem samples.

    One result row per (scenario, algorithm) with total time, average
    scaled utility and the number of fact-gain evaluations (a
    hardware-independent proxy for data processing cost).
    """
    labels = scenarios if scenarios is not None else scenario_labels()
    algorithms = _make_algorithms()
    result = ExperimentResult(
        name="figure3",
        description="Performance comparison of presented algorithms per scenario",
    )
    result.notes.append(
        f"scaled workload: {scale.queries_per_scenario} queries/scenario, "
        f"speech length {scale.max_facts_per_speech}, "
        f"facts restrict up to {scale.max_fact_dimensions} dimensions"
    )

    for label in labels:
        problems = build_scenario_problems(label, scale=scale, seed=seed)
        if not problems:
            continue
        for algorithm_name in FIGURE3_ALGORITHMS:
            algorithm = algorithms[algorithm_name]
            total_time = 0.0
            total_scaled = 0.0
            total_evaluations = 0
            for problem in problems:
                outcome = algorithm.summarize(problem)
                total_time += outcome.statistics.elapsed_seconds
                total_scaled += outcome.scaled_utility
                total_evaluations += outcome.statistics.fact_evaluations
            result.add_row(
                scenario=label,
                algorithm=algorithm_name,
                problems=len(problems),
                total_seconds=total_time,
                avg_scaled_utility=total_scaled / len(problems),
                fact_evaluations=total_evaluations,
            )
    return result


def summarize_figure3(result: ExperimentResult) -> dict[str, float]:
    """Aggregate Figure 3 into the headline comparisons.

    Returns the time ratio of E over G-B, the minimal greedy utility
    relative to exact, and total G-B / G-P / G-O times.
    """
    times: dict[str, float] = {name: 0.0 for name in FIGURE3_ALGORITHMS}
    utility_ratio_minimum = 1.0
    per_scenario: dict[str, dict[str, dict[str, float]]] = {}
    for row in result.rows:
        per_scenario.setdefault(row["scenario"], {})[row["algorithm"]] = row
        times[row["algorithm"]] += row["total_seconds"]
    for scenario, rows in per_scenario.items():
        exact = rows.get("E")
        if exact is None or exact["avg_scaled_utility"] <= 0:
            continue
        for name in ("G-B", "G-P", "G-O"):
            greedy = rows.get(name)
            if greedy is None:
                continue
            ratio = greedy["avg_scaled_utility"] / exact["avg_scaled_utility"]
            utility_ratio_minimum = min(utility_ratio_minimum, ratio)
    exact_over_greedy = times["E"] / times["G-B"] if times["G-B"] else float("inf")
    return {
        "exact_over_greedy_time_ratio": exact_over_greedy,
        "min_greedy_utility_ratio": utility_ratio_minimum,
        "total_seconds_G-B": times["G-B"],
        "total_seconds_G-P": times["G-P"],
        "total_seconds_G-O": times["G-O"],
        "total_seconds_E": times["E"],
    }
