"""Figure 10: run-time latency and per-query processing time vs the baseline.

Our approach answers queries by looking up a pre-generated speech, so
its run-time latency is tiny while pre-processing time is amortised
over all queries.  The sampling baseline pays its (larger) processing
cost at query time, though it can start speaking once the first
sentence is chosen (latency < total time).  The experiment reports, for
the Stack Overflow (S), Flights (F) and Primaries (P) datasets:

* our run-time latency per query,
* our pre-processing time per pre-generated speech,
* the baseline's first-sentence latency and total per-query time.
"""

from __future__ import annotations

import random

from repro.algorithms.sampling_baseline import SamplingBaselineSummarizer
from repro.datasets import load_dataset
from repro.experiments.runner import ExperimentResult
from repro.system.config import SummarizationConfig
from repro.system.engine import ResponseKind, VoiceQueryEngine
from repro.system.problem_generator import ProblemGenerator

#: Dataset label -> (dataset key, dimensions, targets) for Figure 10.
FIGURE10_DATASETS = {
    "S": (
        "stackoverflow",
        ("region", "dev_type", "experience"),
        ("job_satisfaction",),
        500,
    ),
    "F": (
        "flights",
        ("origin_region", "season", "time_of_day"),
        ("cancellation",),
        600,
    ),
    "P": (
        "primaries",
        ("candidate", "state_region", "month"),
        ("support_percentage",),
        500,
    ),
}


def run_figure10(
    queries_per_dataset: int = 10,
    max_problems: int | None = 250,
    seed: int = 7,
) -> ExperimentResult:
    """Measure latency and processing time for our approach and the baseline."""
    result = ExperimentResult(
        name="figure10",
        description="Average latency and per-query processing time vs sampling baseline",
    )
    rng = random.Random(seed)
    baseline = SamplingBaselineSummarizer(seed=seed)

    for label, (dataset_key, dimensions, targets, rows) in FIGURE10_DATASETS.items():
        dataset = load_dataset(dataset_key, num_rows=rows)
        config = SummarizationConfig.create(
            table=dataset_key,
            dimensions=dimensions,
            targets=targets,
            max_query_length=1,
            max_facts_per_speech=3,
            max_fact_dimensions=1,
            algorithm="G-B",
        )
        engine = VoiceQueryEngine(config, dataset.table)
        report = engine.preprocess(max_problems=max_problems)

        # Sample supported queries from the store for the run-time measurement.
        stored = list(engine.store)
        rng.shuffle(stored)
        sample = stored[:queries_per_dataset]

        our_latency = 0.0
        answered = 0
        for entry in sample:
            response = engine.answer_query(entry.query)
            if response.kind is ResponseKind.SPEECH:
                our_latency += response.latency_seconds
                answered += 1
        our_latency = our_latency / answered if answered else 0.0

        # Baseline: solve the same queries at run time via sampling.
        generator = ProblemGenerator(config, dataset.table)
        baseline_latency = 0.0
        baseline_total = 0.0
        baseline_answered = 0
        for entry in sample:
            problem = generator.build_problem(entry.query)
            if problem is None:
                continue
            summary = baseline.vocalize(problem)
            baseline_latency += summary.first_sentence_latency
            baseline_total += summary.total_time
            baseline_answered += 1
        if baseline_answered:
            baseline_latency /= baseline_answered
            baseline_total /= baseline_answered

        result.add_row(
            dataset=label,
            speeches_pregenerated=report.speeches_generated,
            preprocessing_total_s=report.total_seconds,
            preprocessing_per_query_ms=report.per_query_seconds * 1000.0,
            our_runtime_latency_ms=our_latency * 1000.0,
            baseline_latency_ms=baseline_latency * 1000.0,
            baseline_total_ms=baseline_total * 1000.0,
        )
    result.notes.append(
        "our approach: latency is a store lookup; pre-processing cost is amortised "
        "over all pre-generated speeches.  Baseline: sampling at query time"
    )
    return result


def latency_advantage(result: ExperimentResult) -> dict[str, float]:
    """Baseline latency divided by our run-time latency, per dataset."""
    advantage = {}
    for row in result.rows:
        ours = max(row["our_runtime_latency_ms"], 1e-3)
        advantage[row["dataset"]] = row["baseline_latency_ms"] / ours
    return advantage
