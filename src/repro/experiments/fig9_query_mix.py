"""Figure 9: classifying data-access queries by size and type.

From the deployment logs, the paper reports (a) the number of
predicates per query — most queries restrict a single dimension — and
(b) the query type — most are retrieval queries, fewer ask for
comparisons or extrema.
"""

from __future__ import annotations

from collections import Counter

from repro.datasets import load_dataset
from repro.experiments.runner import ExperimentResult
from repro.system.classification import QueryShape, analyse_requests
from repro.system.config import SummarizationConfig
from repro.system.deployment import DeploymentSimulator
from repro.system.nlq import NaturalLanguageParser
from repro.experiments.table3_requests import DEPLOYMENTS, _MIX_KEYS


def run_figure9(rows_per_dataset: int = 300, seed: int = 11) -> ExperimentResult:
    """Aggregate query complexity and query type over all deployments."""
    predicate_counts: Counter = Counter()
    shape_counts: Counter = Counter()

    for deployment, (dataset_key, dimensions, targets) in DEPLOYMENTS.items():
        dataset = load_dataset(dataset_key, num_rows=rows_per_dataset)
        config = SummarizationConfig.create(
            table=dataset_key,
            dimensions=dimensions,
            targets=targets,
            max_query_length=2,
        )
        simulator = DeploymentSimulator(config, dataset.table, seed=seed)
        log = simulator.generate_log(deployment=_MIX_KEYS[deployment])
        parser = NaturalLanguageParser(config, dataset.table)
        analysis = analyse_requests([parser.parse(entry.text) for entry in log], config)
        predicate_counts.update(analysis.by_predicate_count)
        shape_counts.update(analysis.by_shape)

    result = ExperimentResult(
        name="figure9",
        description="Queries by complexity (number of predicates) and by type",
    )
    for predicates in sorted(predicate_counts):
        result.add_row(
            chart="(a) complexity",
            category=f"{predicates} predicates",
            count=predicate_counts[predicates],
        )
    for shape in QueryShape:
        result.add_row(
            chart="(b) type",
            category=shape.value,
            count=shape_counts.get(shape, 0),
        )
    return result


def dominant_complexity(result: ExperimentResult) -> str:
    """The predicate-count bucket with the most queries (paper: 1 predicate)."""
    complexity_rows = [row for row in result.rows if row["chart"] == "(a) complexity"]
    if not complexity_rows:
        return ""
    return max(complexity_rows, key=lambda row: row["count"])["category"]
