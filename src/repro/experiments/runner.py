"""Shared result container and plain-text table formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence


@dataclass
class ExperimentResult:
    """Result of one experiment (table or figure reproduction).

    Attributes
    ----------
    name:
        Identifier, e.g. "figure3" or "table1".
    description:
        What the experiment reproduces.
    rows:
        One dict per reported row / data point.
    notes:
        Free-form remarks (e.g. scaling factors applied).
    """

    name: str
    description: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append one result row."""
        self.rows.append(dict(values))

    def column(self, key: str) -> list[Any]:
        """All values of one column across rows."""
        return [row.get(key) for row in self.rows]

    def to_text(self) -> str:
        """Render the result as a plain-text report."""
        header = f"== {self.name}: {self.description} =="
        body = format_rows(self.rows)
        notes = "\n".join(f"note: {note}" for note in self.notes)
        parts = [header, body]
        if notes:
            parts.append(notes)
        return "\n".join(part for part in parts if part)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_rows(rows: Sequence[Mapping[str, Any]]) -> str:
    """Format dict rows as an aligned text table (stable column order)."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    lines = [header, separator]
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)
