"""Table II: the worst-ranked vs the best-ranked speech for the ACS data.

The paper prints both speech texts; the best speech leads with the
strongest age-group fact ("About 80 out of 1000 elder persons identify
as visually impaired...") while the worst speech wastes its facts on
near-redundant borough averages.
"""

from __future__ import annotations

from repro.datasets import load_dataset
from repro.experiments.runner import ExperimentResult
from repro.experiments.speech_pool import build_speech_pool
from repro.system.templates import SpeechRealizer, TargetPhrasing


def run_table2(rows: int = 400, pool_size: int = 100, seed: int = 17) -> ExperimentResult:
    """Render the worst and best ranked ACS speeches as text."""
    dataset = load_dataset("acs", num_rows=rows)
    relation = dataset.relation("visual_impairment")
    realizer = SpeechRealizer(
        target_phrasings={
            "visual_impairment": TargetPhrasing(
                subject="the number of persons per 1000 who identify as visually impaired",
                decimals=0,
            )
        }
    )
    pool = build_speech_pool(
        relation,
        "visual_impairment",
        pool_size=pool_size,
        seed=seed,
        realizer=realizer,
    )
    result = ExperimentResult(
        name="table2",
        description="Comparing two alternative speech descriptions (ACS visual impairment)",
    )
    result.add_row(
        speech="Worst",
        scaled_utility=pool.worst.scaled_utility,
        text=pool.worst.text,
    )
    result.add_row(
        speech="Best",
        scaled_utility=pool.best.scaled_utility,
        text=pool.best.text,
    )
    return result
