"""Table III: classification of the last 50 voice requests per deployment.

Real Google Assistant logs are unavailable, so the deployment simulator
draws request logs following the paper's observed mix and the analysis
pipeline (parser + classifier) reproduces the per-deployment counts of
help / repeat / supported / unsupported / other requests.
"""

from __future__ import annotations

from repro.datasets import load_dataset
from repro.experiments.runner import ExperimentResult
from repro.system.classification import RequestType, analyse_requests
from repro.system.config import SummarizationConfig
from repro.system.deployment import PAPER_REQUEST_MIX, DeploymentSimulator
from repro.system.nlq import NaturalLanguageParser

#: Deployment name -> (dataset key, dimensions, targets) used for parsing.
DEPLOYMENTS = {
    "Primaries": (
        "primaries",
        ("candidate", "state_region", "month"),
        ("support_percentage",),
    ),
    "Flights": (
        "flights",
        ("origin_region", "season", "airline"),
        ("cancellation", "delay_minutes"),
    ),
    "Developers": (
        "stackoverflow",
        ("region", "dev_type", "experience"),
        ("competence", "optimism", "job_satisfaction"),
    ),
}

_MIX_KEYS = {"Primaries": "primaries", "Flights": "flights", "Developers": "developers"}


def run_table3(rows_per_dataset: int = 300, seed: int = 11) -> ExperimentResult:
    """Simulate and classify one 50-request log per deployment."""
    result = ExperimentResult(
        name="table3",
        description="Classification of the last 50 voice requests per deployment",
    )
    for deployment, (dataset_key, dimensions, targets) in DEPLOYMENTS.items():
        dataset = load_dataset(dataset_key, num_rows=rows_per_dataset)
        config = SummarizationConfig.create(
            table=dataset_key,
            dimensions=dimensions,
            targets=targets,
            max_query_length=2,
        )
        simulator = DeploymentSimulator(config, dataset.table, seed=seed)
        log = simulator.generate_log(deployment=_MIX_KEYS[deployment])
        parser = NaturalLanguageParser(config, dataset.table)
        analysis = analyse_requests([parser.parse(entry.text) for entry in log], config)
        counts = analysis.as_table_row()
        paper = PAPER_REQUEST_MIX[_MIX_KEYS[deployment]]
        result.add_row(
            deployment=deployment,
            help=counts[RequestType.HELP.value],
            repeat=counts[RequestType.REPEAT.value],
            s_query=counts[RequestType.SUPPORTED_QUERY.value],
            u_query=counts[RequestType.UNSUPPORTED_QUERY.value],
            other=counts[RequestType.OTHER.value],
            paper_help=paper[RequestType.HELP],
            paper_s_query=paper[RequestType.SUPPORTED_QUERY],
            paper_u_query=paper[RequestType.UNSUPPORTED_QUERY],
        )
    result.notes.append(
        "request logs are simulated following the request mix the paper reports; "
        "classification runs through the real parser and classifier"
    )
    return result
