"""Sensitivity analyses for the model assumptions.

Two ablations complement the user studies:

* *Prior sensitivity* — the paper fixes the prior to the target's
  average; this experiment re-optimizes speeches under alternative
  priors (zero, average, an intentionally wrong constant) and reports
  how utility and the chosen facts change.
* *Expectation-model sensitivity* — speeches are optimized under the
  closest-relevant-value model (the one Figure 7 validates); this
  experiment evaluates those speeches under every worker model to show
  how robust the chosen facts are when listeners behave differently.
"""

from __future__ import annotations

from repro.algorithms.greedy import GreedySummarizer
from repro.core.expectation import available_models
from repro.core.priors import ConstantPrior, GlobalAveragePrior, ZeroPrior
from repro.core.problem import SummarizationProblem
from repro.core.utility import UtilityEvaluator
from repro.datasets import load_dataset
from repro.experiments.runner import ExperimentResult
from repro.facts.generation import FactGenerator

#: (dataset, target, rows) pairs used for the sensitivity analyses.
SENSITIVITY_SCENARIOS = {
    "A-V": ("acs", "visual_impairment", 400),
    "F-C": ("flights", "cancellation", 600),
}


def _build_problem(dataset_key: str, target: str, rows: int, prior) -> SummarizationProblem:
    dataset = load_dataset(dataset_key, num_rows=rows)
    relation = dataset.relation(target)
    facts = FactGenerator(relation, max_extra_dimensions=1).generate()
    return SummarizationProblem(
        relation=relation,
        candidate_facts=facts.facts,
        max_facts=3,
        prior=prior,
        label=f"{dataset_key}/{target}",
    )


def run_prior_sensitivity() -> ExperimentResult:
    """Optimize speeches under different priors and compare outcomes."""
    result = ExperimentResult(
        name="ablation_prior_sensitivity",
        description="Effect of the prior on the optimized speech",
    )
    greedy = GreedySummarizer()
    for label, (dataset_key, target, rows) in SENSITIVITY_SCENARIOS.items():
        reference_problem = _build_problem(dataset_key, target, rows, GlobalAveragePrior())
        reference = greedy.summarize(reference_problem)
        reference_scopes = {fact.scope for fact in reference.speech}

        priors = {
            "global_average": GlobalAveragePrior(),
            "zero": ZeroPrior(),
            "wrong_constant": ConstantPrior(
                2.0 * float(reference_problem.relation.target_values.mean()) + 1.0
            ),
        }
        for prior_name, prior in priors.items():
            problem = _build_problem(dataset_key, target, rows, prior)
            outcome = greedy.summarize(problem)
            overlap = len(reference_scopes & {fact.scope for fact in outcome.speech})
            result.add_row(
                scenario=label,
                prior=prior_name,
                scaled_utility=outcome.scaled_utility,
                prior_deviation=problem.evaluator().prior_deviation(),
                facts_shared_with_reference=overlap,
            )
    result.notes.append(
        "the reference speech uses the paper's prior (the target's average); "
        "'facts_shared_with_reference' counts scope overlap with it"
    )
    return result


def run_expectation_model_sensitivity() -> ExperimentResult:
    """Evaluate closest-model-optimized speeches under every worker model."""
    result = ExperimentResult(
        name="ablation_expectation_models",
        description="Speeches optimized for the closest-value model, evaluated under all models",
    )
    greedy = GreedySummarizer()
    models = available_models()
    for label, (dataset_key, target, rows) in SENSITIVITY_SCENARIOS.items():
        problem = _build_problem(dataset_key, target, rows, GlobalAveragePrior())
        speech = greedy.summarize(problem).speech
        for model_name, model in models.items():
            evaluator = UtilityEvaluator(
                problem.relation, prior=problem.prior, expectation_model=model
            )
            result.add_row(
                scenario=label,
                expectation_model=model_name,
                scaled_utility=evaluator.scaled_utility(speech),
            )
    result.notes.append(
        "the closest model (assumed during optimization) dominates the adversarial "
        "farthest model; averaging listeners can fall anywhere, since an average of "
        "fact values is not confined to the candidate value set"
    )
    return result
