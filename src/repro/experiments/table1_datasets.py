"""Table I: overview of the datasets used for the experiments."""

from __future__ import annotations

from repro.datasets.registry import dataset_overview
from repro.experiments.runner import ExperimentResult


def run_table1() -> ExperimentResult:
    """Reproduce Table I (dataset, size, #dims, #targets).

    Paper-reported values and the synthetic replicas' values are shown
    side by side; the synthetic generators match the dimension / target
    structure while the byte sizes of the original CSV files are
    reported verbatim for reference.
    """
    result = ExperimentResult(
        name="table1",
        description="Overview of data sets used for experiments",
    )
    for entry in dataset_overview():
        result.add_row(
            dataset=entry["dataset"],
            paper_size=entry["paper_size"],
            paper_dims=entry["paper_dims"],
            paper_targets=entry["paper_targets"],
            synthetic_rows=entry["synthetic_rows"],
            synthetic_dims=entry["synthetic_dims"],
            synthetic_targets=entry["synthetic_targets"],
        )
    result.notes.append(
        "synthetic replicas mirror the dimension/target structure of the "
        "original public datasets (which are not bundled)"
    )
    return result
