"""Ablation experiments for the design choices called out in DESIGN.md.

Three ablations complement the paper's figures:

* *Exact-algorithm bound pruning* — Algorithm 1 with and without the
  bound-based pruning rule (the permutation rule is structural).
* *Pruning plan choice* — fact-gain evaluations of G-B, G-P and G-O,
  isolating the effect of the cost-based plan optimizer.
* *Greedy approximation ratio* — greedy utility relative to the exact
  optimum over many problem instances (the paper reports ≥ 98%,
  far above the theoretical 1 − 1/e ≈ 63%).
"""

from __future__ import annotations

from repro.algorithms import (
    ExactSummarizer,
    GreedySummarizer,
    OptimizedGreedySummarizer,
    PrunedGreedySummarizer,
)
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import ScenarioScale, build_scenario_problems


def run_exact_pruning_ablation(
    scenarios: tuple[str, ...] = ("A-V", "F-C"),
    seed: int = 3,
) -> ExperimentResult:
    """Compare Algorithm 1 with and without bound pruning."""
    scale = ScenarioScale(queries_per_scenario=2, max_fact_dimensions=1)
    result = ExperimentResult(
        name="ablation_exact_pruning",
        description="Exact algorithm with vs without bound-based pruning",
    )
    variants = {
        "with_pruning": ExactSummarizer(use_bound_pruning=True),
        "without_pruning": ExactSummarizer(use_bound_pruning=False),
    }
    for scenario in scenarios:
        problems = build_scenario_problems(scenario, scale=scale, seed=seed)
        for variant, algorithm in variants.items():
            speeches = 0
            pruned = 0
            seconds = 0.0
            utility = 0.0
            for problem in problems:
                outcome = algorithm.summarize(problem)
                speeches += outcome.statistics.speeches_considered
                pruned += outcome.statistics.speeches_pruned
                seconds += outcome.statistics.elapsed_seconds
                utility += outcome.scaled_utility
            result.add_row(
                scenario=scenario,
                variant=variant,
                partial_speeches=speeches,
                speeches_pruned=pruned,
                total_seconds=seconds,
                avg_scaled_utility=utility / len(problems) if problems else 0.0,
            )
    return result


def run_pruning_plan_ablation(
    scenarios: tuple[str, ...] = ("A-V", "F-C", "S-O"),
    seed: int = 3,
) -> ExperimentResult:
    """Compare fact-gain evaluations of G-B, G-P and G-O."""
    scale = ScenarioScale(queries_per_scenario=3)
    algorithms = {
        "G-B": GreedySummarizer(),
        "G-P": PrunedGreedySummarizer(),
        "G-O": OptimizedGreedySummarizer(),
    }
    result = ExperimentResult(
        name="ablation_pruning_plans",
        description="Work performed by greedy variants (effect of the plan optimizer)",
    )
    for scenario in scenarios:
        problems = build_scenario_problems(scenario, scale=scale, seed=seed)
        for name, algorithm in algorithms.items():
            evaluations = 0
            bounds = 0
            groups_pruned = 0
            utility = 0.0
            for problem in problems:
                outcome = algorithm.summarize(problem)
                evaluations += outcome.statistics.fact_evaluations
                bounds += outcome.statistics.bound_evaluations
                groups_pruned += outcome.statistics.groups_pruned
                utility += outcome.scaled_utility
            result.add_row(
                scenario=scenario,
                algorithm=name,
                fact_evaluations=evaluations,
                bound_evaluations=bounds,
                groups_pruned=groups_pruned,
                avg_scaled_utility=utility / len(problems) if problems else 0.0,
            )
    return result


def run_greedy_ratio_ablation(
    scenarios: tuple[str, ...] = ("A-V", "A-H", "F-C", "F-D"),
    seed: int = 5,
) -> ExperimentResult:
    """Greedy utility relative to the exact optimum per problem instance."""
    scale = ScenarioScale(queries_per_scenario=3, max_fact_dimensions=1)
    greedy = GreedySummarizer()
    exact = ExactSummarizer()
    result = ExperimentResult(
        name="ablation_greedy_ratio",
        description="Greedy utility as a fraction of the exact optimum",
    )
    for scenario in scenarios:
        problems = build_scenario_problems(scenario, scale=scale, seed=seed)
        for index, problem in enumerate(problems):
            greedy_outcome = greedy.summarize(problem)
            exact_outcome = exact.summarize(problem)
            ratio = 1.0
            if exact_outcome.utility > 0:
                ratio = greedy_outcome.utility / exact_outcome.utility
            result.add_row(
                scenario=scenario,
                problem=index,
                greedy_utility=greedy_outcome.utility,
                exact_utility=exact_outcome.utility,
                ratio=ratio,
            )
    ratios = [row["ratio"] for row in result.rows]
    if ratios:
        result.notes.append(
            f"minimum ratio {min(ratios):.3f}, mean ratio {sum(ratios) / len(ratios):.3f} "
            "(theoretical guarantee 1 - 1/e ≈ 0.632)"
        )
    return result
