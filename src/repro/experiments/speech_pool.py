"""Random speech pools ranked by the quality model.

The user studies of Section VIII-C start from 100 randomly generated
speeches per dataset, ranked according to the utility model; the best,
median and worst ranked speeches are then shown to crowd workers.  This
helper builds that pool for a given relation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.random_baseline import RandomSummarizer
from repro.core.model import Speech, SummarizationRelation
from repro.core.priors import ConstantPrior
from repro.core.problem import SummarizationProblem
from repro.core.utility import UtilityEvaluator
from repro.facts.generation import FactGenerator
from repro.system.queries import DataQuery
from repro.system.templates import SpeechRealizer


@dataclass
class RankedSpeech:
    """A speech with its rank information and rendered text."""

    speech: Speech
    scaled_utility: float
    text: str
    rank: int = 0


@dataclass
class SpeechPool:
    """Best / median / worst speeches from a random pool."""

    ranked: list[RankedSpeech]
    problem: SummarizationProblem

    @property
    def best(self) -> RankedSpeech:
        """Highest-ranked speech."""
        return self.ranked[0]

    @property
    def median(self) -> RankedSpeech:
        """Median-ranked speech."""
        return self.ranked[len(self.ranked) // 2]

    @property
    def worst(self) -> RankedSpeech:
        """Lowest-ranked speech."""
        return self.ranked[-1]


def build_speech_pool(
    relation: SummarizationRelation,
    target: str,
    pool_size: int = 100,
    max_facts: int = 3,
    max_fact_dimensions: int = 2,
    seed: int = 17,
    realizer: SpeechRealizer | None = None,
) -> SpeechPool:
    """Generate ``pool_size`` random speeches and rank them by utility."""
    realizer = realizer or SpeechRealizer()
    generator = FactGenerator(relation, max_extra_dimensions=max_fact_dimensions)
    generated = generator.generate()
    prior = ConstantPrior(float(relation.target_values.mean()))
    problem = SummarizationProblem(
        relation=relation,
        candidate_facts=generated.facts,
        max_facts=max_facts,
        prior=prior,
        label=f"random pool over {target}",
    )
    evaluator = UtilityEvaluator(relation, prior=prior)
    sampler = RandomSummarizer(seed=seed)
    query = DataQuery.create(target, {})

    ranked = []
    for speech in sampler.sample_speeches(problem, pool_size):
        scaled = evaluator.scaled_utility(speech)
        text = realizer.realize(query, speech)
        ranked.append(RankedSpeech(speech=speech, scaled_utility=scaled, text=text))
    ranked.sort(key=lambda r: r.scaled_utility, reverse=True)
    for position, entry in enumerate(ranked):
        entry.rank = position + 1
    return SpeechPool(ranked=ranked, problem=problem)
