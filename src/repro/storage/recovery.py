"""Startup recovery and the runtime durability coordinator.

Recovery rebuilds the serving store a crashed process lost:

1. Load the newest *valid* checkpoint (corrupt ones are skipped for
   older ones); absent any, start from the pre-processed base store.
2. Scan the journal to its longest valid prefix (torn tails healed).
3. Replay every ``append`` record past the checkpoint's
   ``applied_seq`` watermark — except seqs covered by ``dropped``
   markers — through :class:`IncrementalMaintainer.maintain`.

Replay must reproduce the original run's **job grouping**, not just
its record order: a maintenance pass over one coalesced batch is not
byte-identical to two passes over its halves (each pass re-summarizes
only the queries its own rows touch, against the table as of that
pass).  The journal's ``applied`` markers record exactly the seq
groups each successful job maintained together, so replay applies one
pass per marker group, in marker order, and then one final coalesced
pass over the unapplied suffix (seqs with no marker — batches the
crashed process had accepted but not yet applied, which is also
precisely the single coalesced job a restarted scheduler would run
for them).  With that grouping, deterministic maintenance makes the
replayed store byte-identical (canonical payload) to the store the
original serialized jobs produced — the parity the
``recover --verify`` CLI subcommand and the crash tests check.

Note the watermark, not the ``applied`` markers, is the replay
*cursor*: a record applied after the last checkpoint updated only
in-memory state that died with the process, so it is replayed
regardless of its marker — the marker contributes its grouping, not
an exemption.

:class:`DurabilityCoordinator` is the runtime half: it owns the
:class:`JournalWriter` and :class:`CheckpointManager` for a data
directory and gives the maintenance scheduler three hooks —
``log_append`` (before ack), ``commit_applied`` (after a snapshot
swap; may trigger a policy checkpoint), ``mark_dropped`` (retries
exhausted).  Checkpoint failures are counted and surfaced through
``stats()`` / service health, never raised into the swap path: the
journal alone is sufficient for correctness, a missed checkpoint only
costs replay time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.relational.table import Table
from repro.reliability import faults
from repro.storage.checkpoint import CheckpointManager, LoadedCheckpoint
from repro.storage.durability import (
    JournalScan,
    JournalWriter,
    read_journal,
    table_from_payload,
)
from repro.system.config import SummarizationConfig
from repro.system.speech_store import SpeechStore
from repro.system.updates import IncrementalMaintainer

#: Journal file name inside a data directory.
JOURNAL_NAME = "journal.wal"

#: Default checkpoint policy: after this many snapshot swaps ...
DEFAULT_CHECKPOINT_EVERY_SWAPS = 4

#: ... or once this many journal bytes accumulated since the last one.
DEFAULT_CHECKPOINT_EVERY_BYTES = 4 * 1024 * 1024

#: Default checkpoints retained.
DEFAULT_CHECKPOINT_KEEP = 3


@dataclass(frozen=True)
class RecoveredState:
    """What :func:`recover_state` rebuilt from a data directory."""

    store: SpeechStore
    table: Table
    applied_seq: int
    next_seq: int
    journal_offset: int
    replayed_seqs: tuple[int, ...]
    dropped_seqs: frozenset[int]
    checkpoint: LoadedCheckpoint | None
    scan: JournalScan

    @property
    def replayed_records(self) -> int:
        return len(self.replayed_seqs)

    def summary(self) -> dict:
        """JSON-friendly recovery report (for the CLI and logs)."""
        return {
            "checkpoint": str(self.checkpoint.path) if self.checkpoint else None,
            "checkpoint_applied_seq": (
                self.checkpoint.applied_seq if self.checkpoint else 0
            ),
            "journal_records": len(self.scan.records),
            "journal_bytes": self.scan.good_offset,
            "journal_truncated": self.scan.truncated_reason,
            "replayed_records": self.replayed_records,
            "dropped_seqs": sorted(self.dropped_seqs),
            "applied_seq": self.applied_seq,
            "next_seq": self.next_seq,
            "speeches": len(self.store),
            "table_rows": self.table.num_rows,
        }


def recover_state(
    data_dir: str | Path,
    config: SummarizationConfig,
    base_store: SpeechStore,
    base_table: Table,
    summarizer=None,
    realizer=None,
    use_checkpoint: bool = True,
) -> RecoveredState:
    """Rebuild serving state from ``data_dir`` (checkpoint + journal).

    ``base_store`` / ``base_table`` are the pre-processed engine state
    used when no (valid) checkpoint exists; the base store is cloned,
    never mutated.  ``summarizer`` / ``realizer`` must match the ones
    the engine maintains with, or replay diverges from the
    uninterrupted run.  ``use_checkpoint=False`` forces a pure journal
    replay from the base — the independent recovery path
    ``recover --verify`` compares against the checkpoint path.

    An empty or missing data directory recovers to the base state (a
    first boot), so callers need no existence checks.
    """
    data_dir = Path(data_dir)
    scan = read_journal(data_dir / JOURNAL_NAME)
    checkpoint = CheckpointManager(data_dir).load_latest() if use_checkpoint else None
    if checkpoint is not None:
        store = checkpoint.store
        table = checkpoint.table
        watermark = checkpoint.applied_seq
    else:
        store = base_store.clone()
        table = base_table
        watermark = 0
    dropped = scan.dropped_seqs()
    appends: dict[int, Table] = {}
    groups: list[list[int]] = []
    for entry in scan.records:
        if entry.kind == "append":
            seq = int(entry.record["seq"])
            if seq > watermark and seq not in dropped:
                appends[seq] = table_from_payload(entry.record["table"])
        elif entry.kind == "applied":
            group = [
                int(seq)
                for seq in entry.record.get("seqs", ())
                if int(seq) > watermark and int(seq) not in dropped
            ]
            if group:
                groups.append(group)
    grouped = {seq for group in groups for seq in group}
    suffix = sorted(seq for seq in appends if seq not in grouped)
    if suffix:
        groups.append(suffix)
    maintainer = IncrementalMaintainer(
        config, table, summarizer=summarizer, realizer=realizer
    )
    replayed: list[int] = []
    for group in groups:
        # One pass per original job (see module docstring): coalesce
        # the group's batches in seq order, exactly as the scheduler's
        # job did, so deterministic maintenance reproduces its bytes.
        batch = None
        for seq in sorted(group):
            if seq not in appends:
                continue  # marker for a record lost to a torn tail
            faults.FAILPOINTS.inject(faults.RECOVER_REPLAY)
            rows = appends[seq]
            batch = rows if batch is None else batch.concat(rows)
            replayed.append(seq)
        if batch is not None:
            maintainer.maintain(batch, store)
    replayed.sort()
    return RecoveredState(
        store=store,
        table=maintainer.table,
        applied_seq=replayed[-1] if replayed else watermark,
        next_seq=scan.next_seq,
        journal_offset=scan.good_offset,
        replayed_seqs=tuple(replayed),
        dropped_seqs=dropped,
        checkpoint=checkpoint,
        scan=scan,
    )


class DurabilityCoordinator:
    """Threads journal writes and checkpoints through the scheduler.

    Construction is cheap and does no recovery — pass the values a
    prior :func:`recover_state` produced (``next_seq``,
    ``journal_offset`` as ``truncate_at``, ``applied_seq``) so the
    journal resumes exactly past its longest valid prefix.

    Thread model: ``log_append`` and ``mark_dropped`` run on the event
    loop (small, flushed writes); ``commit_applied`` and
    ``checkpoint_now`` run on the maintenance executor thread (they
    serialise the whole store).  A single lock serialises all journal
    and policy state.
    """

    def __init__(
        self,
        data_dir: str | Path,
        fsync: bool = False,
        checkpoint_every_swaps: int = DEFAULT_CHECKPOINT_EVERY_SWAPS,
        checkpoint_every_bytes: int = DEFAULT_CHECKPOINT_EVERY_BYTES,
        checkpoint_keep: int = DEFAULT_CHECKPOINT_KEEP,
        next_seq: int = 1,
        truncate_at: int | None = None,
        applied_seq: int = 0,
        checkpoint_compact: bool = False,
    ):
        if checkpoint_every_swaps < 1:
            raise ValueError(
                f"checkpoint_every_swaps must be >= 1, got {checkpoint_every_swaps}"
            )
        if checkpoint_every_bytes < 1:
            raise ValueError(
                f"checkpoint_every_bytes must be >= 1, got {checkpoint_every_bytes}"
            )
        self._data_dir = Path(data_dir)
        self._lock = threading.Lock()
        self._journal = JournalWriter(
            self._data_dir / JOURNAL_NAME,
            fsync=fsync,
            next_seq=next_seq,
            truncate_at=truncate_at,
        )
        self._checkpoints = CheckpointManager(
            self._data_dir, keep=checkpoint_keep, compact=checkpoint_compact
        )
        self._every_swaps = int(checkpoint_every_swaps)
        self._every_bytes = int(checkpoint_every_bytes)
        self._applied_seq = int(applied_seq)
        self._swaps_since_checkpoint = 0
        self._bytes_at_checkpoint = self._journal.offset
        self._checkpoints_written = 0
        self._checkpoint_failures = 0
        self._last_checkpoint_seq = 0
        self._last_checkpoint_error: str | None = None
        self._closed = False

    @property
    def data_dir(self) -> Path:
        return self._data_dir

    # ------------------------------------------------------------------
    # Scheduler hooks
    # ------------------------------------------------------------------
    def log_append(self, new_rows: Table) -> int:
        """Journal an accepted batch *before* the caller acks; its seq."""
        with self._lock:
            return self._journal.log_append(new_rows)

    def commit_applied(
        self,
        seqs: Sequence[int],
        store: SpeechStore,
        table: Table,
        store_version: int,
    ) -> None:
        """Record a committed swap; checkpoint when the policy says so.

        Runs on the maintenance executor thread after the snapshot
        swap published — ``store`` is the just-published store, so a
        triggered checkpoint serialises consistent state.
        """
        with self._lock:
            self._journal.mark_applied(seqs, store_version)
            if seqs:
                self._applied_seq = max(self._applied_seq, max(int(s) for s in seqs))
            self._swaps_since_checkpoint += 1
            due = (
                self._swaps_since_checkpoint >= self._every_swaps
                or self._journal.offset - self._bytes_at_checkpoint
                >= self._every_bytes
            )
            if due:
                self._checkpoint(store, table, store_version)

    def mark_applied(self, seqs: Sequence[int], store_version: int) -> None:
        """Record an applied group without checkpointing.

        For coordinators that own the journal but not the maintained
        store (the shard router: its stores live in worker processes).
        The marker preserves replay's job grouping; skipping the policy
        checkpoint only costs recovery time — the watermark stays at
        the last checkpoint and replay covers the rest of the journal.
        """
        with self._lock:
            self._journal.mark_applied(seqs, store_version)
            if seqs:
                self._applied_seq = max(self._applied_seq, max(int(s) for s in seqs))

    def mark_dropped(self, seqs: Sequence[int]) -> None:
        """Record seqs whose rows the scheduler permanently gave up on."""
        with self._lock:
            self._journal.mark_dropped(seqs)
            if seqs:
                self._applied_seq = max(self._applied_seq, max(int(s) for s in seqs))

    def checkpoint_now(
        self, store: SpeechStore, table: Table, store_version: int
    ) -> bool:
        """Force a checkpoint (e.g. right after a replaying recovery)."""
        with self._lock:
            return self._checkpoint(store, table, store_version)

    def _checkpoint(
        self, store: SpeechStore, table: Table, store_version: int
    ) -> bool:
        try:
            self._checkpoints.save(
                store,
                table,
                applied_seq=self._applied_seq,
                store_version=store_version,
                journal_offset=self._journal.offset,
            )
        except Exception as exc:
            # A failed checkpoint is degradation, not data loss — the
            # journal still covers everything.  Count it, surface it
            # through health, keep serving.
            self._checkpoint_failures += 1
            self._last_checkpoint_error = repr(exc)
            return False
        self._checkpoints_written += 1
        self._last_checkpoint_seq = self._applied_seq
        self._last_checkpoint_error = None
        self._swaps_since_checkpoint = 0
        self._bytes_at_checkpoint = self._journal.offset
        return True

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Durability counters for the service metrics endpoint."""
        with self._lock:
            return {
                "data_dir": str(self._data_dir),
                "fsync": self._journal.fsync,
                "journal_bytes": self._journal.offset,
                "next_seq": self._journal.next_seq,
                "applied_seq": self._applied_seq,
                "checkpoints_written": self._checkpoints_written,
                "checkpoint_failures": self._checkpoint_failures,
                "last_checkpoint_seq": self._last_checkpoint_seq,
                "last_checkpoint_error": self._last_checkpoint_error,
            }

    @property
    def checkpoint_failures(self) -> int:
        return self._checkpoint_failures

    @property
    def last_checkpoint_error(self) -> str | None:
        return self._last_checkpoint_error

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._journal.close()
                self._closed = True
