"""Append-only write-ahead journal for accepted append batches.

The contract the serving tier needs is narrow: once
``MaintenanceScheduler.request_append`` returns, the batch must survive
a process crash.  The journal provides exactly that — the scheduler
writes an ``append`` record *before* acking, and startup recovery
replays every record not yet covered by a checkpoint.

Record framing
--------------
Each record is ``[4-byte big-endian payload length][4-byte CRC32 of the
payload][payload]`` where the payload is compact, sorted-key JSON.
Three record kinds exist::

    {"kind": "append",  "seq": 7, "table": {...}}      # rows accepted
    {"kind": "applied", "seqs": [7], "snapshot_version": 3}
    {"kind": "dropped", "seqs": [8]}                   # retries exhausted

``append`` is the durability boundary; ``applied`` / ``dropped`` are
bookkeeping markers.  Recovery replays from the newest checkpoint's
``applied_seq`` watermark, not from ``applied`` markers: a record
applied after the checkpoint was applied to in-memory state that died
with the process, so it must be replayed regardless.  ``dropped``
markers *are* honoured — rows the scheduler gave up on stay given up
on after a restart.

Torn tails
----------
A crash can land mid-write, leaving a truncated or corrupt record at
the end of the file.  :func:`read_journal` stops at the first record
that fails its length/CRC/JSON checks and reports the byte offset of
the last good record; :class:`JournalWriter` truncates the file to that
offset before appending, so the journal self-heals to its longest valid
prefix.  Only the *tail* may be sacrificed: a good record can never
follow a bad one, because records are written sequentially and flushed
in order.

fsync trade-off
---------------
``flush()`` (always) makes a record survive process death — the bytes
live in the OS page cache, which outlives the process.  ``fsync``
(``journal_fsync=True``) additionally survives machine/kernel crashes
at a large per-append latency cost.  The default is flush-only: the
fault model of this repo's chaos tests is SIGKILL, not power loss.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.relational.column import Column, ColumnType
from repro.relational.table import Table
from repro.reliability import faults

#: Record header: payload length, payload CRC32 (both unsigned 32-bit BE).
_HEADER = struct.Struct(">II")

#: Upper bound on a single record payload; a length prefix beyond this
#: is treated as corruption rather than attempted as an allocation.
MAX_RECORD_BYTES = 256 * 1024 * 1024


class JournalError(Exception):
    """Raised when the journal cannot be written or a record is invalid."""


# ----------------------------------------------------------------------
# Table codec
# ----------------------------------------------------------------------
def table_to_payload(table: Table) -> dict[str, Any]:
    """Encode a table as a JSON-friendly dict (schema order preserved)."""
    return {
        "name": table.name,
        "columns": [
            {"name": column.name, "type": column.ctype.value, "values": column.values}
            for column in table.columns
        ],
    }


def table_from_payload(payload: dict[str, Any]) -> Table:
    """Decode a table from :func:`table_to_payload` output."""
    try:
        columns = [
            Column(entry["name"], ColumnType(entry["type"]), entry["values"])
            for entry in payload["columns"]
        ]
        return Table(str(payload["name"]), columns)
    except (KeyError, TypeError, ValueError) as exc:
        raise JournalError(f"malformed table payload: {exc}") from exc


# ----------------------------------------------------------------------
# Record codec
# ----------------------------------------------------------------------
def encode_record(record: dict[str, Any]) -> bytes:
    """Frame one record dict as length + CRC32 + canonical JSON bytes."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_RECORD_BYTES:
        raise JournalError(
            f"record payload of {len(payload)} bytes exceeds {MAX_RECORD_BYTES}"
        )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_record(blob: bytes, offset: int = 0) -> tuple[dict[str, Any], int]:
    """Decode one record from ``blob`` at ``offset``.

    Returns ``(record, end_offset)``; raises :class:`JournalError` on a
    truncated header/payload, CRC mismatch, or malformed JSON.
    """
    if offset + _HEADER.size > len(blob):
        raise JournalError("truncated record header")
    length, crc = _HEADER.unpack_from(blob, offset)
    if length > MAX_RECORD_BYTES:
        raise JournalError(f"implausible record length {length}")
    start = offset + _HEADER.size
    end = start + length
    if end > len(blob):
        raise JournalError("truncated record payload")
    payload = blob[start:end]
    if zlib.crc32(payload) != crc:
        raise JournalError("record CRC mismatch")
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JournalError(f"record payload is not valid JSON: {exc}") from exc
    if not isinstance(record, dict) or "kind" not in record:
        raise JournalError(f"record is not a kinded object: {record!r}")
    return record, end


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record plus its byte extent in the file."""

    record: dict[str, Any]
    offset: int
    end_offset: int

    @property
    def kind(self) -> str:
        return str(self.record.get("kind"))


@dataclass(frozen=True)
class JournalScan:
    """Result of scanning a journal file to its longest valid prefix.

    ``good_offset`` is the byte offset just past the last valid record
    (0 for a missing/empty journal); ``truncated_reason`` is None for a
    clean file, else why the scan stopped early (the torn tail).
    """

    records: tuple[JournalRecord, ...]
    good_offset: int
    file_size: int
    truncated_reason: str | None = None

    @property
    def truncated(self) -> bool:
        return self.truncated_reason is not None

    @property
    def next_seq(self) -> int:
        """One past the highest ``append`` seq seen (1 for an empty log)."""
        highest = 0
        for entry in self.records:
            if entry.kind == "append":
                highest = max(highest, int(entry.record.get("seq", 0)))
        return highest + 1

    def dropped_seqs(self) -> frozenset[int]:
        """Seqs covered by ``dropped`` markers (never replayed)."""
        dropped: set[int] = set()
        for entry in self.records:
            if entry.kind == "dropped":
                dropped.update(int(seq) for seq in entry.record.get("seqs", ()))
        return frozenset(dropped)

    def applied_seqs(self) -> frozenset[int]:
        """Seqs covered by ``applied`` markers (bookkeeping only)."""
        applied: set[int] = set()
        for entry in self.records:
            if entry.kind == "applied":
                applied.update(int(seq) for seq in entry.record.get("seqs", ()))
        return frozenset(applied)


def read_journal(path: str | Path) -> JournalScan:
    """Scan a journal file, tolerating a torn/corrupt tail.

    Decodes records sequentially until the end of file or the first
    invalid record; everything from the first invalid byte on is
    reported as the torn tail (``truncated_reason``) and excluded from
    ``good_offset``.  A missing file scans as empty.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return JournalScan(records=(), good_offset=0, file_size=0)
    records: list[JournalRecord] = []
    offset = 0
    truncated_reason = None
    while offset < len(blob):
        try:
            record, end = decode_record(blob, offset)
        except JournalError as exc:
            truncated_reason = f"at byte {offset}: {exc}"
            break
        records.append(JournalRecord(record=record, offset=offset, end_offset=end))
        offset = end
    return JournalScan(
        records=tuple(records),
        good_offset=offset,
        file_size=len(blob),
        truncated_reason=truncated_reason,
    )


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
class JournalWriter:
    """Appends records to the journal, flushing before every ack.

    Parameters
    ----------
    path:
        The journal file; parent directories are created.
    fsync:
        When True every record is fsync'd (machine-crash durable);
        otherwise records are flushed to the OS (process-crash durable).
    next_seq:
        First seq to assign (recovery passes ``JournalScan.next_seq``).
    truncate_at:
        Byte offset to truncate the file to before appending — the
        scan's ``good_offset``, healing a torn tail.  None appends to
        the file as-is (fresh journals).

    Not thread-safe by itself; the
    :class:`repro.storage.recovery.DurabilityCoordinator` serialises
    access.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: bool = False,
        next_seq: int = 1,
        truncate_at: int | None = None,
    ):
        self._path = Path(path)
        self._fsync = bool(fsync)
        self._next_seq = int(next_seq)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        if truncate_at is not None and self._path.exists():
            size = self._path.stat().st_size
            if truncate_at < size:
                os.truncate(self._path, truncate_at)
        self._file = open(self._path, "ab")
        self._offset = self._file.tell()

    @property
    def path(self) -> Path:
        return self._path

    @property
    def offset(self) -> int:
        """Current end-of-journal byte offset (all records durable)."""
        return self._offset

    @property
    def next_seq(self) -> int:
        """Seq the next :meth:`log_append` will assign."""
        return self._next_seq

    @property
    def fsync(self) -> bool:
        return self._fsync

    def log_append(self, table: Table) -> int:
        """Journal one accepted append batch; returns its seq.

        The record is durable (flushed, optionally fsync'd) when this
        returns — the caller may ack.  The ``journal.write`` failpoint
        fires before anything is written (a raising rule is a clean
        journal failure: nothing persisted, nothing acked); the
        ``journal.sync`` failpoint fires after the record is durable
        but before the caller learns the seq (a killing rule is the
        torn-ack crash recovery must replay).
        """
        faults.FAILPOINTS.inject(faults.JOURNAL_WRITE)
        seq = self._next_seq
        self._write(
            {"kind": "append", "seq": seq, "table": table_to_payload(table)}
        )
        self._next_seq = seq + 1
        faults.FAILPOINTS.inject(faults.JOURNAL_SYNC)
        return seq

    def mark_applied(self, seqs: Sequence[int], snapshot_version: int) -> None:
        """Record that ``seqs`` were applied by the given snapshot swap."""
        if not seqs:
            return
        self._write(
            {
                "kind": "applied",
                "seqs": [int(seq) for seq in seqs],
                "snapshot_version": int(snapshot_version),
            }
        )

    def mark_dropped(self, seqs: Iterable[int]) -> None:
        """Record that ``seqs`` were permanently dropped (never replay)."""
        seqs = [int(seq) for seq in seqs]
        if not seqs:
            return
        self._write({"kind": "dropped", "seqs": seqs})

    def _write(self, record: dict[str, Any]) -> None:
        if self._file.closed:
            raise JournalError(f"journal {self._path} is closed")
        blob = encode_record(record)
        try:
            self._file.write(blob)
            self._file.flush()
            if self._fsync:
                os.fsync(self._file.fileno())
        except OSError as exc:
            raise JournalError(f"journal write to {self._path} failed: {exc}") from exc
        self._offset += len(blob)

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()
