"""Durable serving state: write-ahead journal, checkpoints, recovery.

The serving tier survives *in-process* faults (worker crashes, failed
maintenance jobs) via `repro.reliability`; this package makes it
survive *process death*.  Three pieces compose:

* :mod:`repro.storage.durability` — the append-only write-ahead
  journal.  Every accepted append batch is written (length-prefixed,
  CRC32-checksummed, optionally fsync'd) *before* the caller is acked,
  so an acked batch is never lost to a crash.
* :mod:`repro.storage.checkpoint` — atomic checkpoints of the speech
  store plus the maintained table, written temp → fsync → rename with
  a checksummed manifest, so a crash mid-checkpoint leaves the
  previous checkpoint intact.
* :mod:`repro.storage.recovery` — startup recovery (newest valid
  checkpoint + replay of unapplied journal records through the
  deterministic maintainer) and the :class:`DurabilityCoordinator`
  that the maintenance scheduler threads journal/checkpoint calls
  through at runtime.

On-disk layout under a service's ``data_dir``::

    data_dir/
      journal.wal            append-only record log
      checkpoints/
        ckpt-000000000042/   one checkpoint (name = applied_seq)
          manifest.json      watermark + checksums
          store.json         canonical speech-store payload
          table.json         canonical table payload
"""

from repro.storage.checkpoint import CheckpointManager, LoadedCheckpoint
from repro.storage.durability import (
    JournalError,
    JournalRecord,
    JournalScan,
    JournalWriter,
    decode_record,
    encode_record,
    read_journal,
    table_from_payload,
    table_to_payload,
)
from repro.storage.recovery import (
    DurabilityCoordinator,
    RecoveredState,
    recover_state,
)

__all__ = [
    "CheckpointManager",
    "DurabilityCoordinator",
    "JournalError",
    "JournalRecord",
    "JournalScan",
    "JournalWriter",
    "LoadedCheckpoint",
    "RecoveredState",
    "decode_record",
    "encode_record",
    "read_journal",
    "recover_state",
    "table_from_payload",
    "table_to_payload",
]
