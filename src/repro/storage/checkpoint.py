"""Atomic, checksummed checkpoints of the serving store + table.

A checkpoint bounds recovery time: instead of replaying the whole
journal through the maintainer, startup loads the newest valid
checkpoint and replays only the records past its ``applied_seq``
watermark.

Each checkpoint is a directory named by its watermark
(``ckpt-000000000042``) holding three files:

* ``store.json`` — the canonical speech-store payload
  (:func:`repro.system.persistence.canonical_store_payload`), the same
  bytes the parity oracle compares.  With ``compact=True`` the store is
  written as ``store.snap`` instead — the checksummed columnar snapshot
  format of :mod:`repro.store`, considerably smaller for large stores
  and validated twice on load (manifest CRC plus the format's own
  header/section checksums).
* ``table.json`` — the maintained table, canonically encoded.
* ``manifest.json`` — the watermark (``applied_seq``), the snapshot
  version that produced the state, the journal byte offset at save
  time, format versions, and CRC32 checksums of the other two files.

Atomicity: the directory is written as ``.tmp-ckpt-*`` first, every
file fsync'd, then renamed into place (one atomic metadata operation
on POSIX) and the parent directory fsync'd.  A crash mid-save leaves a
``.tmp-`` directory that loading ignores and the next save sweeps.
Loading validates the manifest and both checksums and silently falls
back to the next-older checkpoint on any mismatch — a corrupt or
version-skewed checkpoint costs replay time, never correctness.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.relational.table import Table
from repro.reliability import faults
from repro.storage.durability import table_from_payload, table_to_payload
from repro.store import attach, freeze
from repro.system.persistence import (
    canonical_store_payload,
    store_from_payload,
)
from repro.system.speech_store import SpeechStore

#: Manifest format marker; a mismatch invalidates the checkpoint.
CHECKPOINT_FORMAT_VERSION = 1

_PREFIX = "ckpt-"
_TMP_PREFIX = ".tmp-"


class CheckpointError(Exception):
    """Raised when a checkpoint cannot be written."""


@dataclass(frozen=True)
class LoadedCheckpoint:
    """A validated checkpoint, decoded and ready to recover from."""

    store: SpeechStore
    table: Table
    applied_seq: int
    store_version: int
    journal_offset: int
    path: Path


class CheckpointManager:
    """Writes and loads checkpoints under ``root/checkpoints``.

    Parameters
    ----------
    root:
        The service's data directory (the manager owns its
        ``checkpoints/`` subdirectory).
    keep:
        Checkpoints retained after each save; older ones are deleted.
    compact:
        Persist the store in the compact snapshot format
        (``store.snap``) instead of canonical JSON.  Loading handles
        both formats regardless of this flag, so the setting can be
        toggled between runs.
    """

    def __init__(self, root: str | Path, keep: int = 3, compact: bool = False):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self._dir = Path(root) / "checkpoints"
        self._keep = int(keep)
        self._compact = bool(compact)

    @property
    def directory(self) -> Path:
        return self._dir

    def list_checkpoints(self) -> list[Path]:
        """Checkpoint directories, oldest first (tmp leftovers excluded)."""
        if not self._dir.is_dir():
            return []
        return sorted(
            entry
            for entry in self._dir.iterdir()
            if entry.is_dir() and entry.name.startswith(_PREFIX)
        )

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def save(
        self,
        store: SpeechStore,
        table: Table,
        applied_seq: int,
        store_version: int,
        journal_offset: int,
    ) -> Path:
        """Atomically persist one checkpoint; returns its directory.

        The ``checkpoint.save`` failpoint fires after the temporary
        files are written but before the rename — a killing rule
        leaves only the ignorable ``.tmp-`` directory behind, a
        raising rule surfaces as a save failure the coordinator
        records (the previous checkpoint stays authoritative either
        way).
        """
        self._dir.mkdir(parents=True, exist_ok=True)
        name = f"{_PREFIX}{int(applied_seq):012d}"
        final = self._dir / name
        tmp = self._dir / f"{_TMP_PREFIX}{name}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir()
        try:
            if self._compact:
                store_file = "store.snap"
                freeze(store, tmp / store_file, snapshot_version=int(store_version))
                store_payload = (tmp / store_file).read_bytes()
            else:
                store_file = "store.json"
                store_payload = canonical_store_payload(store)
            table_payload = json.dumps(
                table_to_payload(table), sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            manifest = {
                "format_version": CHECKPOINT_FORMAT_VERSION,
                "applied_seq": int(applied_seq),
                "store_version": int(store_version),
                "journal_offset": int(journal_offset),
                "store_format": "compact" if self._compact else "json",
                "store_crc32": zlib.crc32(store_payload),
                "table_crc32": zlib.crc32(table_payload),
            }
            if not self._compact:
                self._write_file(tmp / store_file, store_payload)
            self._write_file(tmp / "table.json", table_payload)
            self._write_file(
                tmp / "manifest.json",
                json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8"),
            )
            faults.FAILPOINTS.inject(faults.CHECKPOINT_SAVE)
            if final.exists():
                # Same watermark already checkpointed (e.g. a forced
                # post-recovery checkpoint); replace it atomically-ish
                # by removing first — the older one is redundant.
                shutil.rmtree(final)
            os.replace(tmp, final)
        except Exception as exc:
            shutil.rmtree(tmp, ignore_errors=True)
            if isinstance(exc, faults.InjectedFault):
                raise
            raise CheckpointError(f"checkpoint save to {final} failed: {exc}") from exc
        self._fsync_dir(self._dir)
        self._prune()
        return final

    @staticmethod
    def _write_file(path: Path, payload: bytes) -> None:
        with open(path, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())

    @staticmethod
    def _fsync_dir(path: Path) -> None:
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _prune(self) -> None:
        """Drop all but the newest ``keep`` checkpoints and tmp leftovers."""
        checkpoints = self.list_checkpoints()
        for stale in checkpoints[: max(0, len(checkpoints) - self._keep)]:
            shutil.rmtree(stale, ignore_errors=True)
        if self._dir.is_dir():
            for entry in self._dir.iterdir():
                if entry.is_dir() and entry.name.startswith(_TMP_PREFIX):
                    shutil.rmtree(entry, ignore_errors=True)

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load_latest(self) -> LoadedCheckpoint | None:
        """The newest checkpoint that passes validation, or None.

        Invalid checkpoints (unreadable manifest, format-version skew,
        checksum mismatch, undecodable payloads) are skipped in favour
        of the next-older one — recovery degrades to more journal
        replay, never to corrupt state.
        """
        for path in reversed(self.list_checkpoints()):
            loaded = self._load_one(path)
            if loaded is not None:
                return loaded
        return None

    def _load_one(self, path: Path) -> LoadedCheckpoint | None:
        try:
            manifest = json.loads((path / "manifest.json").read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(manifest, dict):
            return None
        if manifest.get("format_version") != CHECKPOINT_FORMAT_VERSION:
            return None
        store_format = manifest.get("store_format", "json")
        try:
            store_file = "store.snap" if store_format == "compact" else "store.json"
            store_payload = (path / store_file).read_bytes()
            table_payload = (path / "table.json").read_bytes()
            if zlib.crc32(store_payload) != int(manifest["store_crc32"]):
                return None
            if zlib.crc32(table_payload) != int(manifest["table_crc32"]):
                return None
            if store_format == "compact":
                # attach() re-verifies the format's own checksums; thaw
                # to a mutable store so journal replay can build on it.
                store = attach(path / store_file).clone()
            else:
                store, _ = store_from_payload(store_payload)
            table = table_from_payload(json.loads(table_payload.decode("utf-8")))
            return LoadedCheckpoint(
                store=store,
                table=table,
                applied_seq=int(manifest["applied_seq"]),
                store_version=int(manifest["store_version"]),
                journal_offset=int(manifest["journal_offset"]),
                path=path,
            )
        except Exception:
            # Any decode failure means this checkpoint is unusable;
            # the caller falls back to an older one.
            return None
