"""repro — reproduction of "Optimally Summarizing Data by Small Fact Sets
for Concise Answers to Voice Queries" (Trummer & Anderson, ICDE 2021).

The package is organised as follows:

* :mod:`repro.relational` — in-memory relational substrate (tables,
  predicates, joins, aggregation, catalog statistics, cost estimates).
* :mod:`repro.core` — the problem model: facts, speeches, priors, user
  expectation models, utility.
* :mod:`repro.facts` — candidate fact enumeration and fact groups.
* :mod:`repro.algorithms` — the summarization algorithms (exact, greedy,
  pruned greedy, cost-optimized greedy) plus baselines.
* :mod:`repro.system` — the end-to-end voice query engine (configuration,
  problem generation, pre-processing, natural-language query mapping,
  speech templates, deployment simulation).
* :mod:`repro.datasets` — synthetic datasets mirroring the paper's four
  evaluation datasets.
* :mod:`repro.userstudy` — simulated crowd-worker studies.
* :mod:`repro.mlbaseline` — the machine-learning summarization baseline.
* :mod:`repro.experiments` — one module per table/figure of the paper.
"""

__version__ = "1.0.0"

from repro.core import (
    Fact,
    Scope,
    Speech,
    SummarizationProblem,
    SummarizationRelation,
    UtilityEvaluator,
)
from repro.algorithms import (
    ExactSummarizer,
    GreedySummarizer,
    OptimizedGreedySummarizer,
    PrunedGreedySummarizer,
    make_summarizer,
)

__all__ = [
    "__version__",
    "Fact",
    "Scope",
    "Speech",
    "SummarizationRelation",
    "SummarizationProblem",
    "UtilityEvaluator",
    "ExactSummarizer",
    "GreedySummarizer",
    "PrunedGreedySummarizer",
    "OptimizedGreedySummarizer",
    "make_summarizer",
]
