"""Command-line interface.

The CLI exposes the three workflows a user of the system goes through:

* ``repro-voice datasets`` — list the bundled synthetic datasets
  (Table I overview);
* ``repro-voice preprocess`` — run the batch speech generation for a
  dataset and write the resulting speech store to a JSON artifact;
* ``repro-voice ask`` — answer one or more natural-language questions
  against a dataset (pre-processing on the fly or from a saved
  artifact);
* ``repro-voice maintain`` — simulate an append-only data update:
  pre-process a base slice of a dataset, append the held-out rows, and
  incrementally refresh only the affected speeches;
* ``repro-voice serve`` — run the asyncio serving service against a
  synthetic request stream: concurrent ``submit`` sessions, background
  maintenance passes on held-out rows (snapshot swaps, no pause), and
  an aggregate latency/throughput report — the deployment smoke.  With
  ``--http PORT`` it instead starts the real network front-end
  (:class:`repro.api.http_server.VoiceHttpServer`, ``POST /v1/ask`` et
  al.) and serves until SIGINT/SIGTERM, shutting down cleanly;
* ``repro-voice experiment`` — regenerate one of the paper's tables or
  figures and print its rows.

Parallel commands accept ``--pool keep`` to run every pre-processing
and maintenance pass of one invocation on a single persistent worker
pool (the streaming service layer), versus the default ``fresh`` pool
per run.

Every engine-building command also accepts ``--failpoint SPEC``
(repeatable) and ``--failpoint-seed N`` for deterministic fault
injection (see :mod:`repro.reliability.faults`) — the chaos-smoke entry
point: ``--failpoint worker.crash:times=1`` kills a pool worker
mid-run and the command must still succeed via supervision.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext
from typing import Callable, Sequence

from repro.algorithms.registry import available_summarizers
from repro.datasets import available_datasets, dataset_overview, load_dataset
from repro.experiments.runner import ExperimentResult, format_rows
from repro.system.config import SummarizationConfig
from repro.system.engine import VoiceQueryEngine
from repro.system.persistence import save_store, store_to_dict
from repro.system.worker_pool import WorkerPool


def _experiment_registry() -> dict[str, Callable[[], ExperimentResult]]:
    """Named experiments runnable from the CLI (lazy imports keep startup fast)."""
    from repro.experiments.ablations import (
        run_exact_pruning_ablation,
        run_greedy_ratio_ablation,
        run_pruning_plan_ablation,
    )
    from repro.experiments.fig3_algorithms import run_figure3
    from repro.experiments.fig4_scaling import run_figure4
    from repro.experiments.fig5_ratings import run_figure5
    from repro.experiments.fig6_estimation import run_figure6
    from repro.experiments.fig7_conflict import run_figure7
    from repro.experiments.fig8_interfaces import run_figure8
    from repro.experiments.fig9_query_mix import run_figure9
    from repro.experiments.fig10_latency import run_figure10
    from repro.experiments.fig11_baseline_study import run_figure11
    from repro.experiments.ml_baseline_study import run_ml_baseline
    from repro.experiments.table1_datasets import run_table1
    from repro.experiments.table2_speeches import run_table2
    from repro.experiments.table3_requests import run_table3

    return {
        "table1": run_table1,
        "table2": run_table2,
        "table3": run_table3,
        "figure3": run_figure3,
        "figure4": run_figure4,
        "figure5": run_figure5,
        "figure6": run_figure6,
        "figure7": run_figure7,
        "figure8": run_figure8,
        "figure9": run_figure9,
        "figure10": run_figure10,
        "figure11": run_figure11,
        "ml_baseline": run_ml_baseline,
        "ablation_exact_pruning": run_exact_pruning_ablation,
        "ablation_pruning_plans": run_pruning_plan_ablation,
        "ablation_greedy_ratio": run_greedy_ratio_ablation,
    }


def _build_config(args: argparse.Namespace, spec) -> SummarizationConfig:
    dimensions = tuple(args.dimensions) if args.dimensions else spec.dimensions
    targets = tuple(args.targets) if args.targets else spec.targets
    return SummarizationConfig.create(
        table=spec.key,
        dimensions=dimensions,
        targets=targets,
        max_query_length=args.max_query_length,
        max_facts_per_speech=args.facts,
        max_fact_dimensions=args.fact_dimensions,
        algorithm=args.algorithm,
    )


def _build_engine(args: argparse.Namespace) -> VoiceQueryEngine:
    dataset = load_dataset(args.dataset, num_rows=args.rows)
    config = _build_config(args, dataset.spec)
    return VoiceQueryEngine(
        config,
        dataset.table,
        enable_advanced_queries=args.advanced,
        use_shared_cube=args.shared_cube,
    )


def _pool_scope(args: argparse.Namespace):
    """Context manager for the command's worker pool (``--pool``).

    Under ``keep`` (with ``--workers`` > 1) it yields one persistent
    :class:`WorkerPool` closed when the command finishes, so every
    pre-processing and maintenance pass of the invocation shares it;
    otherwise it yields None and each run forks and reaps its own pool.
    """
    if args.pool == "keep" and args.workers and args.workers > 1:
        return WorkerPool(args.workers)
    return nullcontext()


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", required=True, choices=available_datasets())
    parser.add_argument("--rows", type=int, default=None, help="synthetic rows to generate")
    parser.add_argument("--dimensions", nargs="*", default=None)
    parser.add_argument("--targets", nargs="*", default=None)
    parser.add_argument("--max-query-length", type=int, default=1, dest="max_query_length")
    parser.add_argument("--facts", type=int, default=3, help="facts per speech")
    parser.add_argument(
        "--fact-dimensions", type=int, default=1, dest="fact_dimensions",
        help="extra dimensions per fact",
    )
    parser.add_argument(
        "--algorithm", default="G-O",
        help=f"summarizer name, one of: {', '.join(available_summarizers())} "
        "(G-L is the lazy-greedy kernel variant)",
    )
    parser.add_argument("--max-problems", type=int, default=None, dest="max_problems")
    parser.add_argument(
        "--workers", type=int, default=0,
        help="pre-processing pool workers (0/1 = serial; N > 1 streams "
        "query chunks across N processes, same store as a serial run)",
    )
    parser.add_argument(
        "--pool", choices=("fresh", "keep"), default="fresh",
        help="worker-pool lifecycle: 'fresh' forks a pool per run, 'keep' "
        "spawns one persistent pool reused by every pre-processing and "
        "maintenance pass of this invocation",
    )
    parser.add_argument(
        "--advanced", action="store_true",
        help="answer comparison/extremum questions via the extension",
    )
    parser.add_argument(
        "--shared-cube", action="store_true", dest="shared_cube",
        help="serve candidate facts from one shared data cube per target "
        "during pre-processing (single-pass aggregation across queries)",
    )
    parser.add_argument(
        "--failpoint", action="append", default=[], metavar="SPEC",
        help="activate a deterministic failpoint, e.g. worker.crash:times=1 "
        "or maintain.raise (repeatable; see repro.reliability.faults)",
    )
    parser.add_argument(
        "--failpoint-seed", type=int, default=0, dest="failpoint_seed",
        help="seed for probabilistic failpoint rules (replayable chaos)",
    )


def command_datasets(_args: argparse.Namespace) -> int:
    """List the synthetic datasets (Table I overview)."""
    print(format_rows(dataset_overview()))
    return 0


def command_preprocess(args: argparse.Namespace) -> int:
    """Pre-generate speeches for a dataset and save them to JSON."""
    engine = _build_engine(args)
    with _pool_scope(args) as pool:
        report = engine.preprocess(
            max_problems=args.max_problems, workers=args.workers, pool=pool
        )
    print(
        f"generated {report.speeches_generated} speeches in {report.total_seconds:.2f}s "
        f"({report.per_query_seconds * 1000:.1f} ms per speech, "
        f"avg scaled utility {report.average_scaled_utility:.3f})"
    )
    if args.output:
        save_store(engine.store, args.output, engine.config)
        print(f"speech store written to {args.output}")
    return 0


def command_ask(args: argparse.Namespace) -> int:
    """Answer natural-language questions against a dataset."""
    engine = _build_engine(args)
    if args.store:
        loaded = engine.load_speeches(args.store)
        print(f"loaded {loaded} pre-generated speeches from {args.store}")
    else:
        with _pool_scope(args) as pool:
            engine.preprocess(
                max_problems=args.max_problems, workers=args.workers, pool=pool
            )
    for question in args.question:
        response = engine.ask(question)
        print(f"user : {question}")
        print(f"voice: {response.text}")
    return 0


def command_maintain(args: argparse.Namespace) -> int:
    """Pre-process a base slice, append held-out rows, refresh the store.

    The dataset's last ``--append-rows`` rows are held out as the
    simulated update batch.  With ``--verify-serial`` the whole pass is
    repeated serially from scratch and the rebuilt counts and store
    payloads must match exactly — the CI smoke for parallel incremental
    maintenance.
    """
    from repro.serving.workload import holdout_split
    from repro.system.preprocessor import Preprocessor
    from repro.system.problem_generator import ProblemGenerator
    from repro.system.updates import IncrementalMaintainer

    dataset = load_dataset(args.dataset, num_rows=args.rows)
    config = _build_config(args, dataset.spec)
    base_table, new_rows = holdout_split(dataset.table, args.append_rows)

    def run_pass(workers: int, pool: WorkerPool | None):
        store, _ = Preprocessor(config).run(
            ProblemGenerator(config, base_table), workers=workers, pool=pool
        )
        maintainer = IncrementalMaintainer(config, base_table)
        report = maintainer.maintain(new_rows, store, workers=workers, pool=pool)
        return store, report

    with _pool_scope(args) as pool:
        store, report = run_pass(args.workers, pool)
    print(
        f"appended {report.new_rows} rows: {report.affected_queries} queries "
        f"affected, {report.rebuilt_speeches} speeches rebuilt, "
        f"{report.unchanged_speeches} untouched in {report.total_seconds:.2f}s "
        f"(workers={report.workers}, pool={args.pool})"
    )
    if args.output:
        save_store(store, args.output, config)
        print(f"maintained speech store written to {args.output}")
    if args.verify_serial:
        serial_store, serial_report = run_pass(0, None)
        payload = json.dumps(store_to_dict(store), sort_keys=True)
        serial_payload = json.dumps(store_to_dict(serial_store), sort_keys=True)
        if (
            report.rebuilt_speeches != serial_report.rebuilt_speeches
            or report.affected_queries != serial_report.affected_queries
            or payload != serial_payload
        ):
            print(
                "ERROR: parallel maintenance diverged from the serial pass "
                f"(rebuilt {report.rebuilt_speeches} vs "
                f"{serial_report.rebuilt_speeches})",
                file=sys.stderr,
            )
            return 1
        print(
            f"serial parity verified: {serial_report.rebuilt_speeches} speeches "
            "rebuilt, identical store payloads"
        )
    return 0


def _build_serving_config(args: argparse.Namespace):
    """The one :class:`repro.api.config.ServingConfig` for this command."""
    from repro.api.config import ServingConfig

    return ServingConfig(
        concurrency=args.concurrency,
        max_queue_depth=args.queue_depth,
        shards=getattr(args, "shards", 1),
        maintenance_workers=args.workers,
        session_capacity=args.session_capacity,
        http_host=args.http_host,
        http_port=args.http if args.http is not None else 0,
        default_deadline_ms=args.deadline_ms,
        failpoints=tuple(args.failpoint),
        failpoint_seed=args.failpoint_seed,
        data_dir=args.data_dir,
        journal_fsync=args.journal_fsync,
        checkpoint_every_swaps=args.checkpoint_every_swaps,
        checkpoint_keep=args.checkpoint_keep,
        checkpoint_compact=getattr(args, "checkpoint_compact", False),
        snapshot_dir=getattr(args, "snapshot_dir", None),
    )


def command_serve(args: argparse.Namespace) -> int:
    """Serve a synthetic request stream with concurrent maintenance.

    Pre-processes a base slice of the dataset, then answers
    ``--requests`` synthesized questions through the
    :class:`repro.serving.service.VoiceService` request loop while the
    held-out rows are appended in background maintenance passes (one
    pass requested every ``--maintain-every`` submissions).  Exits
    non-zero if any request errors, any maintenance job fails, or the
    service rejected work the driver paced within its queue bounds.

    With ``--http PORT`` the command instead pre-processes the whole
    dataset and serves the public ``/v1`` HTTP API until SIGINT or
    SIGTERM (clean shutdown, exit 0) — the deployment entry point.
    """
    import asyncio

    from repro.serving import VoiceService
    from repro.serving.workload import (
        drive_requests,
        holdout_split,
        serving_questions,
        split_batches,
    )
    from repro.system.engine import VoiceQueryEngine as Engine

    serving_config = _build_serving_config(args)
    if serving_config.shards > 1 and args.http is None:
        print("ERROR: --shards requires --http (the sharded tier is a network deployment)", file=sys.stderr)
        return 2
    if args.http is not None:
        return _serve_http(args, serving_config)

    dataset = load_dataset(args.dataset, num_rows=args.rows)
    config = _build_config(args, dataset.spec)
    base_table, new_rows = holdout_split(dataset.table, args.append_rows)

    engine = Engine(
        config,
        base_table,
        enable_advanced_queries=args.advanced,
        use_shared_cube=args.shared_cube,
    )

    passes = (
        max(1, args.requests // args.maintain_every) if args.maintain_every else 0
    )
    batches = split_batches(new_rows, passes)
    # Trigger a pass every --maintain-every submissions, clamped into
    # the request stream so the last batches are never dropped (several
    # batches landing on the final request coalesce into one job).
    append_at: dict[int, list] = {}
    for index, batch in enumerate(batches):
        position = min((index + 1) * args.maintain_every, args.requests - 1)
        append_at.setdefault(position, []).append(batch)

    async def drive(pool) -> tuple[dict, list, dict]:
        async with VoiceService(engine, serving_config, pool=pool) as service:
            questions = serving_questions(engine.store, args.requests)
            summary, _ = await drive_requests(
                service,
                questions,
                append_at,
                max_outstanding=max(1, args.queue_depth // 2),
            )
            await service.scheduler.quiesce()
            jobs = list(service.scheduler.jobs)
            reliability = service.reliability()
        return summary, jobs, reliability

    with _pool_scope(args) as pool:
        report = engine.preprocess(
            max_problems=args.max_problems, workers=args.workers, pool=pool
        )
        print(
            f"pre-processed {report.speeches_generated} speeches in "
            f"{report.total_seconds:.2f}s; serving {args.requests} requests "
            f"(concurrency {args.concurrency}, {len(batches)} maintenance passes)"
        )
        summary, jobs, reliability = asyncio.run(drive(pool))

    print(
        f"served {summary['completed']} requests at {summary['qps']:.0f} qps "
        f"(p50 {summary['p50_ms']:.2f} ms, p95 {summary['p95_ms']:.2f} ms, "
        f"p99 {summary['p99_ms']:.2f} ms, hit rate {summary['hit_rate']:.2f}, "
        f"{summary['offloaded']} offloaded, {summary['errors']} errors, "
        f"{summary['timeouts']} timeouts)"
    )
    for job in jobs:
        outcome = (
            f"rebuilt {job.report.rebuilt_speeches} speeches -> "
            f"snapshot v{job.snapshot_version}"
            if job.report is not None
            else job.error or job.status
        )
        print(
            f"maintenance job {job.index} (attempt {job.attempt}): {job.status}, "
            f"{job.new_rows.num_rows} rows ({job.batches} batches coalesced), "
            f"{outcome} in {job.seconds:.2f}s"
        )
    if args.failpoint:
        from repro.reliability import FAILPOINTS

        print(f"reliability: {json.dumps(reliability, sort_keys=True)}")
        print(f"failpoints: {json.dumps(FAILPOINTS.report(), sort_keys=True)}")
    # A job that failed and then succeeded on retry is a survived
    # fault, not a smoke failure; only permanently lost rows are.
    lost_rows = sum(job.dropped_rows for job in jobs)
    if summary["errors"] or summary["rejected"] or lost_rows:
        print(
            "ERROR: serving smoke failed "
            f"(errors={summary['errors']}, rejected={summary['rejected']}, "
            f"dropped_rows={lost_rows})",
            file=sys.stderr,
        )
        return 1
    if len(batches) != 0 and not any(job.status == "completed" for job in jobs):
        print("ERROR: no maintenance job completed", file=sys.stderr)
        return 1
    return 0


def _serve_http(args: argparse.Namespace, serving_config) -> int:
    """Run the public HTTP front-end until SIGINT/SIGTERM.

    Pre-processes the whole dataset, starts the
    :class:`repro.serving.service.VoiceService` plus the
    :class:`repro.api.http_server.VoiceHttpServer` on the configured
    bind address, prints the resolved listen URL (port 0 picks an
    ephemeral port), and serves until the first SIGINT or SIGTERM.
    Shutdown is clean: the listener closes, queued requests drain, and
    the exit code is 0 unless any request errored.
    """
    import asyncio
    import signal

    from repro.api.http_server import VoiceHttpServer
    from repro.serving import ShardManager, VoiceService

    engine = _build_engine(args)
    sharded = serving_config.shards > 1

    async def run(pool) -> dict:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        backend = (
            ShardManager(engine, serving_config)
            if sharded
            else VoiceService(engine, serving_config, pool=pool)
        )
        async with backend:
            async with VoiceHttpServer(
                backend,
                host=serving_config.http_host,
                port=serving_config.http_port,
            ) as server:
                if sharded:
                    print(
                        f"listening on {server.address} (/v1/ask, "
                        f"{serving_config.shards} shards on ports "
                        f"{backend.shard_ports()})",
                        flush=True,
                    )
                else:
                    print(f"listening on {server.address} (/v1/ask)", flush=True)
                await stop.wait()
                print("signal received, shutting down", flush=True)
            if sharded:
                summary = await backend.metrics_summary()
                summary["rejected"] = summary.get("rejected", 0)
                return summary
            return backend.metrics.summary()

    with _pool_scope(args) as pool:
        report = engine.preprocess(
            max_problems=args.max_problems, workers=args.workers, pool=pool
        )
        print(
            f"pre-processed {report.speeches_generated} speeches in "
            f"{report.total_seconds:.2f}s; starting HTTP front-end",
            flush=True,
        )
        summary = asyncio.run(run(pool))

    print(
        f"served {summary['completed']} requests "
        f"(p50 {summary['p50_ms']:.2f} ms, p95 {summary['p95_ms']:.2f} ms, "
        f"{summary['rejected']} rejected, {summary['errors']} errors)"
    )
    return 1 if summary["errors"] else 0


def command_recover(args: argparse.Namespace) -> int:
    """Recover durable serving state from a ``serve --data-dir`` run.

    Rebuilds the base engine exactly as the original serve run did
    (same dataset/config arguments; ``--append-rows`` must match the
    holdout the serve run used, 0 for ``serve --http`` runs), then
    replays the data directory's newest valid checkpoint plus journal
    into a recovered speech store and prints the recovery summary.

    With ``--verify`` the state is recovered a second time by pure
    journal replay from the base (checkpoints ignored) and the command
    fails unless both paths produce byte-identical stores and tables —
    the crash-recovery parity check the CI chaos smoke runs after a
    SIGKILL.
    """
    from repro.serving.workload import holdout_split
    from repro.storage import recover_state, table_to_payload
    from repro.system.persistence import canonical_store_payload

    dataset = load_dataset(args.dataset, num_rows=args.rows)
    config = _build_config(args, dataset.spec)
    base_table = dataset.table
    if args.append_rows:
        base_table, _ = holdout_split(dataset.table, args.append_rows)
    engine = VoiceQueryEngine(
        config,
        base_table,
        enable_advanced_queries=args.advanced,
        use_shared_cube=args.shared_cube,
    )
    with _pool_scope(args) as pool:
        engine.preprocess(
            max_problems=args.max_problems, workers=args.workers, pool=pool
        )

    def recover(use_checkpoint: bool):
        return recover_state(
            args.data_dir,
            engine.config,
            base_store=engine.store,
            base_table=engine.table,
            summarizer=engine.summarizer,
            realizer=engine.realizer,
            use_checkpoint=use_checkpoint,
        )

    recovered = recover(use_checkpoint=True)
    print(f"recovery: {json.dumps(recovered.summary(), sort_keys=True)}")
    if not args.verify:
        return 0
    replayed = recover(use_checkpoint=False)
    store_match = canonical_store_payload(recovered.store) == canonical_store_payload(
        replayed.store
    )
    table_match = table_to_payload(recovered.table) == table_to_payload(replayed.table)
    if not (store_match and table_match):
        print(
            "ERROR: checkpoint recovery diverged from pure journal replay "
            f"(store match={store_match}, table match={table_match})",
            file=sys.stderr,
        )
        return 1
    print(
        "verified: checkpoint recovery matches pure journal replay "
        f"({len(recovered.store)} speeches, {recovered.table.num_rows} table rows)"
    )
    return 0


def command_experiment(args: argparse.Namespace) -> int:
    """Run one named experiment and print its rows."""
    registry = _experiment_registry()
    if args.name not in registry:
        print(f"unknown experiment {args.name!r}; available: {', '.join(sorted(registry))}")
        return 2
    result = registry[args.name]()
    print(result.to_text())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-voice",
        description="Voice data summarization (ICDE 2021 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets_parser = subparsers.add_parser("datasets", help="list synthetic datasets")
    datasets_parser.set_defaults(handler=command_datasets)

    preprocess_parser = subparsers.add_parser(
        "preprocess", help="pre-generate speeches for a dataset"
    )
    _add_engine_arguments(preprocess_parser)
    preprocess_parser.add_argument("--output", default=None, help="JSON file for the speech store")
    preprocess_parser.set_defaults(handler=command_preprocess)

    ask_parser = subparsers.add_parser("ask", help="answer voice questions")
    _add_engine_arguments(ask_parser)
    ask_parser.add_argument("--store", default=None, help="load speeches from a JSON artifact")
    ask_parser.add_argument("question", nargs="+", help="question text(s)")
    ask_parser.set_defaults(handler=command_ask)

    maintain_parser = subparsers.add_parser(
        "maintain",
        help="incrementally refresh a speech store after appended rows",
    )
    _add_engine_arguments(maintain_parser)
    maintain_parser.add_argument(
        "--append-rows", type=int, default=25, dest="append_rows",
        help="hold out the dataset's last N rows as the update batch",
    )
    maintain_parser.add_argument(
        "--verify-serial", action="store_true", dest="verify_serial",
        help="re-run the pass serially and fail unless counts and store match",
    )
    maintain_parser.add_argument(
        "--output", default=None, help="JSON file for the maintained store"
    )
    maintain_parser.set_defaults(handler=command_maintain)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the concurrent serving service with background maintenance",
    )
    _add_engine_arguments(serve_parser)
    serve_parser.add_argument(
        "--requests", type=int, default=120,
        help="synthesized voice requests to serve",
    )
    serve_parser.add_argument(
        "--concurrency", type=int, default=8,
        help="service worker tasks (max in-flight requests)",
    )
    serve_parser.add_argument(
        "--queue-depth", type=int, default=64, dest="queue_depth",
        help="admission-control queue depth before submits are rejected",
    )
    serve_parser.add_argument(
        "--append-rows", type=int, default=25, dest="append_rows",
        help="hold out the dataset's last N rows as maintenance appends",
    )
    serve_parser.add_argument(
        "--maintain-every", type=int, default=40, dest="maintain_every",
        help="request a background maintenance pass every N submissions "
        "(0 disables maintenance)",
    )
    serve_parser.add_argument(
        "--http", type=int, default=None, metavar="PORT",
        help="serve the public /v1 HTTP API on this port (0 = ephemeral) "
        "until SIGINT/SIGTERM instead of driving a synthetic stream",
    )
    serve_parser.add_argument(
        "--http-host", default="127.0.0.1", dest="http_host",
        help="bind address for --http (default 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--shards", type=int, default=1,
        help="worker processes behind the HTTP router (requires --http; "
        "1 = single-process serving, N > 1 spawns one engine per shard "
        "with consistent-hash session affinity)",
    )
    serve_parser.add_argument(
        "--session-capacity", type=int, default=1024, dest="session_capacity",
        help="bound on live sessions before LRU eviction",
    )
    serve_parser.add_argument(
        "--deadline-ms", type=float, default=None, dest="deadline_ms",
        help="default per-request latency budget; expired requests get a "
        "'timeout' response instead of queueing indefinitely",
    )
    serve_parser.add_argument(
        "--data-dir", default=None, dest="data_dir",
        help="directory for durable serving state (write-ahead journal + "
        "checkpoints); the service recovers from it at start and "
        "journals every accepted append before acking",
    )
    serve_parser.add_argument(
        "--journal-fsync", action="store_true", dest="journal_fsync",
        help="fsync every journal record (machine-crash durable) instead "
        "of flushing only (process-crash durable, the default)",
    )
    serve_parser.add_argument(
        "--checkpoint-every", type=int, default=4, dest="checkpoint_every_swaps",
        metavar="SWAPS", help="persist a checkpoint every N snapshot swaps",
    )
    serve_parser.add_argument(
        "--checkpoint-keep", type=int, default=3, dest="checkpoint_keep",
        help="checkpoints retained on disk (older ones pruned)",
    )
    serve_parser.add_argument(
        "--checkpoint-compact", action="store_true", dest="checkpoint_compact",
        help="persist the speech store inside checkpoints in the compact "
        "snapshot format (store.snap) instead of canonical JSON",
    )
    serve_parser.add_argument(
        "--snapshot-dir", default=None, dest="snapshot_dir",
        help="directory for frozen compact-store snapshots; with --shards "
        "> 1 the shards mmap-attach the current snapshot instead of "
        "unpickling a private store copy",
    )
    serve_parser.set_defaults(handler=command_serve)

    recover_parser = subparsers.add_parser(
        "recover",
        help="recover (and verify) durable serving state from a data directory",
    )
    _add_engine_arguments(recover_parser)
    recover_parser.add_argument(
        "--data-dir", required=True, dest="data_dir",
        help="the data directory a `serve --data-dir` run wrote",
    )
    recover_parser.add_argument(
        "--append-rows", type=int, default=0, dest="append_rows",
        help="rows the original serve run held out of pre-processing as "
        "its append stream (0 for `serve --http` runs, which "
        "pre-process the whole dataset)",
    )
    recover_parser.add_argument(
        "--verify", action="store_true",
        help="also recover via pure journal replay (ignoring checkpoints) "
        "and fail unless both paths produce byte-identical state",
    )
    recover_parser.set_defaults(handler=command_recover)

    experiment_parser = subparsers.add_parser(
        "experiment", help="regenerate a table/figure of the paper"
    )
    experiment_parser.add_argument("name", help="experiment name, e.g. figure3 or table1")
    experiment_parser.set_defaults(handler=command_experiment)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    failpoints = getattr(args, "failpoint", None)
    if failpoints:
        # Installed before the handler runs so pre-processing faults
        # fire too; the serving config re-asserts the same specs with
        # ensure(), preserving counters across service start.
        from repro.reliability import FAILPOINTS

        FAILPOINTS.configure(failpoints, seed=args.failpoint_seed)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
