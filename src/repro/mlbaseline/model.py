"""Template-learning substitute for the seq2seq summarization model.

The original experiment fine-tunes a pre-trained language model on 49
(facts, summary) pairs.  Offline, we approximate that behaviour with a
two-part model:

* *Template induction* — from the training outputs, the model learns
  the surface pattern of a summary: how many sentences it has and how
  each sentence frames a value ("It is <value> for <scope>.").
* *Content selection* — for a new input, the model picks facts from the
  input text.  Mimicking the biases the paper observed in the real
  seq2seq output, the selector prefers facts with *narrow scopes*
  (more restricted dimensions) and does not de-duplicate dimensions,
  which yields the redundant, overly specific summaries reported in
  Section VIII-E.

The interface mirrors a minimal seq2seq API: ``fit(examples)`` and
``generate(input_text)`` / ``generate_for_example(example)``.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.model import Fact
from repro.mlbaseline.corpus import SummarizationExample


@dataclass
class TrainingReport:
    """Bookkeeping of one training run."""

    examples: int = 0
    epochs: int = 0
    training_seconds: float = 0.0
    sentences_per_summary: float = 0.0


@dataclass
class GeneratedSummary:
    """One generated summary plus diagnostics used by the evaluation."""

    text: str
    selected_facts: list[Fact] = field(default_factory=list)
    generation_seconds: float = 0.0

    @property
    def redundant_dimension_count(self) -> int:
        """How many selected facts repeat an already-used dimension set."""
        seen: set[tuple[str, ...]] = set()
        redundant = 0
        for fact in self.selected_facts:
            key = fact.dimensions
            if key in seen:
                redundant += 1
            seen.add(key)
        return redundant

    @property
    def mean_scope_arity(self) -> float:
        """Average number of restricted dimensions per selected fact."""
        if not self.selected_facts:
            return 0.0
        return sum(len(fact.dimensions) for fact in self.selected_facts) / len(self.selected_facts)


class TemplateSeq2SeqModel:
    """Retrieval/template text generator standing in for the seq2seq model.

    Parameters
    ----------
    epochs:
        Recorded for parity with the original setup (10 epochs); the
        template induction itself is a single pass.
    narrow_scope_bias:
        Strength of the preference for narrow-scope facts during content
        selection (the observed failure mode of the ML baseline).
    """

    def __init__(self, epochs: int = 10, narrow_scope_bias: float = 1.0):
        self._epochs = epochs
        self._narrow_scope_bias = narrow_scope_bias
        self._sentence_count = 3
        self._trained = False
        self._value_pattern = re.compile(r"-?\d+(?:\.\d+)?")

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, examples: Sequence[SummarizationExample]) -> TrainingReport:
        """Induce the summary template from training examples."""
        start = time.perf_counter()
        if not examples:
            raise ValueError("training requires at least one example")
        sentence_counts = [
            max(1, example.output_text.count(".")) for example in examples
        ]
        self._sentence_count = round(sum(sentence_counts) / len(sentence_counts))
        self._trained = True
        elapsed = time.perf_counter() - start
        return TrainingReport(
            examples=len(examples),
            epochs=self._epochs,
            training_seconds=elapsed,
            sentences_per_summary=float(self._sentence_count),
        )

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._trained

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate_for_example(self, example: SummarizationExample) -> GeneratedSummary:
        """Generate a summary for a held-out example (uses its candidate facts)."""
        self._require_trained()
        start = time.perf_counter()
        selected = self._select_facts(list(example.candidate_facts))
        text = self._render(selected)
        return GeneratedSummary(
            text=text,
            selected_facts=selected,
            generation_seconds=time.perf_counter() - start,
        )

    def generate(self, input_text: str) -> GeneratedSummary:
        """Generate a summary from raw input text (values only, no fact metadata)."""
        self._require_trained()
        start = time.perf_counter()
        values = [float(v) for v in self._value_pattern.findall(input_text)]
        values = values[: self._sentence_count]
        sentences = []
        for position, value in enumerate(values):
            if position == 0:
                sentences.append(f"The value is {value:g}.")
            else:
                sentences.append(f"It is {value:g}.")
        return GeneratedSummary(
            text=" ".join(sentences) if sentences else "No summary is available.",
            generation_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_trained(self) -> None:
        if not self._trained:
            raise RuntimeError("the model must be fitted before generating summaries")

    def _select_facts(self, candidates: list[Fact]) -> list[Fact]:
        """Content selection with the narrow-scope bias of the ML baseline."""
        if not candidates:
            return []
        scored = sorted(
            candidates,
            key=lambda fact: (
                -self._narrow_scope_bias * len(fact.dimensions),
                -fact.value,
            ),
        )
        return scored[: self._sentence_count]

    @staticmethod
    def _render(facts: list[Fact]) -> str:
        if not facts:
            return "No summary is available."
        sentences = []
        for position, fact in enumerate(facts):
            scope_text = ", ".join(
                f"{column} {value}" for column, value in fact.scope.assignments.items()
            )
            value_text = f"{fact.value:.2f}".rstrip("0").rstrip(".")
            if position == 0:
                if scope_text:
                    sentences.append(f"The value for {scope_text} is {value_text}.")
                else:
                    sentences.append(f"The value is {value_text} overall.")
            elif scope_text:
                sentences.append(f"It is {value_text} for {scope_text}.")
            else:
                sentences.append(f"It is {value_text} overall.")
        return " ".join(sentences)
