"""Training corpus for the ML baseline.

Each training example pairs an *input text* — an enumeration of the
candidate facts available for a query (the "speech fragments" of the
paper) — with the *output summary* our approach generated for the same
query.  The corpus builder focuses on a single query template (all
queries placing one predicate on the same dimension column), matching
the paper's setup with the flight start-region dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.model import Fact
from repro.system.queries import DataQuery
from repro.system.speech_store import SpeechStore
from repro.system.templates import SpeechRealizer


@dataclass(frozen=True)
class SummarizationExample:
    """One (facts text, summary text) pair."""

    query: DataQuery
    input_text: str
    output_text: str
    candidate_facts: tuple[Fact, ...] = ()


def facts_to_text(target: str, facts: Sequence[Fact], realizer: SpeechRealizer) -> str:
    """Render a list of candidate facts as the model's input text."""
    return " ".join(realizer.realize_fact(target, fact) for fact in facts)


def build_corpus(
    store: SpeechStore,
    dimension: str,
    target: str,
    candidate_facts_per_query: dict[tuple, Sequence[Fact]],
    realizer: SpeechRealizer | None = None,
    max_facts_in_input: int = 12,
) -> list[SummarizationExample]:
    """Build the corpus for one query template.

    Parameters
    ----------
    store:
        Speech store filled during pre-processing (provides the output
        summaries).
    dimension:
        The dimension column of the query template: only queries with a
        single predicate on this column are included.
    target:
        The target column of the query template.
    candidate_facts_per_query:
        Candidate facts per query key (from the problem generator); the
        input text enumerates (a prefix of) them.
    realizer:
        Speech realizer used to render facts as text.
    max_facts_in_input:
        Cap on the number of facts included in the input text.
    """
    realizer = realizer or SpeechRealizer()
    examples: list[SummarizationExample] = []
    for stored in store:
        query = stored.query
        if query.target != target or query.length != 1:
            continue
        (column, _value), = query.predicates
        if column != dimension:
            continue
        candidates = tuple(candidate_facts_per_query.get(query.key(), ()))
        prefix = candidates[:max_facts_in_input]
        input_text = facts_to_text(target, prefix, realizer)
        examples.append(
            SummarizationExample(
                query=query,
                input_text=input_text,
                output_text=stored.text,
                candidate_facts=candidates,
            )
        )
    return examples


def split_corpus(
    examples: Sequence[SummarizationExample],
    test_size: int = 3,
) -> tuple[list[SummarizationExample], list[SummarizationExample]]:
    """Deterministic train/test split (last ``test_size`` examples held out)."""
    examples = list(examples)
    if len(examples) <= test_size:
        return examples, []
    return examples[:-test_size], examples[-test_size:]
