"""Machine-learning summarization baseline (Section VIII-E).

The paper trains a sequence-to-sequence model (Simpletransformers on a
GPU) on 49 pairs of (available facts, generated summary) for a single
query template and tests on three held-out queries.  Pre-trained
transformers are unavailable offline, so this package provides a
lightweight substitute with the same interface and the same measured
failure modes: a retrieval/template model that learns the surface form
of summaries from the seed pairs and generates new summaries by filling
the induced template with heuristically chosen facts.  The paper's
qualitative findings — ML summaries are syntactically similar but tend
to repeat dimensions and to focus on overly narrow data subsets — are
what the evaluation module measures.
"""

from repro.mlbaseline.corpus import SummarizationExample, build_corpus
from repro.mlbaseline.model import TemplateSeq2SeqModel
from repro.mlbaseline.evaluation import MlComparisonResult, evaluate_against_reference

__all__ = [
    "SummarizationExample",
    "build_corpus",
    "TemplateSeq2SeqModel",
    "MlComparisonResult",
    "evaluate_against_reference",
]
