"""Evaluation of the ML baseline against our summaries (Section VIII-E).

The paper compares ML-generated speeches to ours through an AMT study
over six adjectives and reports that the ML speeches were consistently
ranked lower (average ratings below 5.92 vs above 7.28), attributing
the gap to redundant facts and overly narrow data subsets.  This module
quantifies both: it measures the utility of the ML-selected facts under
the same utility model and runs the simulated rating study over the two
speech sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.model import Speech
from repro.core.problem import SummarizationProblem
from repro.mlbaseline.corpus import SummarizationExample
from repro.mlbaseline.model import GeneratedSummary, TemplateSeq2SeqModel
from repro.userstudy.ratings import EXTENDED_ADJECTIVES, RatingStudy, SpeechCandidate
from repro.userstudy.worker import WorkerPool


@dataclass
class MlComparisonResult:
    """Comparison between ML-generated and reference summaries.

    ``ml_ratings`` and ``reference_ratings`` hold per-adjective averages;
    the redundancy / scope metrics quantify the paper's qualitative
    observations about the ML output.
    """

    ml_ratings: dict[str, float] = field(default_factory=dict)
    reference_ratings: dict[str, float] = field(default_factory=dict)
    ml_mean_scaled_utility: float = 0.0
    reference_mean_scaled_utility: float = 0.0
    ml_redundant_fact_rate: float = 0.0
    ml_mean_scope_arity: float = 0.0
    reference_mean_scope_arity: float = 0.0
    generation_seconds_per_sample: float = 0.0

    @property
    def reference_wins(self) -> bool:
        """True when the reference summaries out-rate the ML summaries."""
        ml = sum(self.ml_ratings.values()) / max(1, len(self.ml_ratings))
        ref = sum(self.reference_ratings.values()) / max(1, len(self.reference_ratings))
        return ref > ml


def evaluate_against_reference(
    model: TemplateSeq2SeqModel,
    test_examples: Sequence[SummarizationExample],
    problems: dict[tuple, SummarizationProblem],
    pool: WorkerPool | None = None,
) -> MlComparisonResult:
    """Generate ML summaries for held-out examples and compare with ours.

    Parameters
    ----------
    model:
        A fitted :class:`TemplateSeq2SeqModel`.
    test_examples:
        Held-out examples (their ``output_text`` is the reference).
    problems:
        Summarization problems keyed by query key, used to score the
        ML-selected facts under the utility model.
    pool:
        Worker pool for the simulated rating study.
    """
    if not test_examples:
        raise ValueError("evaluation requires at least one test example")

    result = MlComparisonResult()
    pool = pool or WorkerPool(seed=23)

    ml_candidates: list[SpeechCandidate] = []
    reference_candidates: list[SpeechCandidate] = []
    redundant = 0
    total_facts = 0
    ml_arities: list[float] = []
    reference_arities: list[float] = []
    ml_utilities: list[float] = []
    reference_utilities: list[float] = []
    generation_times: list[float] = []

    for index, example in enumerate(test_examples):
        generated: GeneratedSummary = model.generate_for_example(example)
        generation_times.append(generated.generation_seconds)
        redundant += generated.redundant_dimension_count
        total_facts += max(1, len(generated.selected_facts))
        ml_arities.append(generated.mean_scope_arity)

        problem = problems.get(example.query.key())
        if problem is not None:
            evaluator = problem.evaluator()
            ml_speech = Speech(generated.selected_facts)
            ml_scaled = evaluator.scaled_utility(ml_speech)
            ml_utilities.append(ml_scaled)
        else:
            ml_scaled = 0.0

        ml_candidates.append(
            SpeechCandidate(
                label=f"ml-{index}",
                text=generated.text,
                scaled_utility=ml_scaled,
            )
        )

    for index, example in enumerate(test_examples):
        problem = problems.get(example.query.key())
        reference_scaled = 1.0
        reference_arity = 0.0
        if problem is not None:
            evaluator = problem.evaluator()
            # The stored reference text was produced from the problem's own
            # optimal speech; recompute it for scoring.
            from repro.algorithms.greedy import GreedySummarizer

            reference_result = GreedySummarizer().summarize(problem)
            reference_scaled = reference_result.scaled_utility
            facts = reference_result.speech.facts
            if facts:
                reference_arity = sum(len(f.dimensions) for f in facts) / len(facts)
        reference_utilities.append(reference_scaled)
        reference_arities.append(reference_arity)
        reference_candidates.append(
            SpeechCandidate(
                label=f"ref-{index}",
                text=example.output_text,
                scaled_utility=reference_scaled,
                precision_bonus=0.05,
            )
        )

    study = RatingStudy(pool=pool, adjectives=EXTENDED_ADJECTIVES)
    ratings = study.run(ml_candidates + reference_candidates)

    result.ml_ratings = _mean_ratings(ratings.average_ratings, prefix="ml-")
    result.reference_ratings = _mean_ratings(ratings.average_ratings, prefix="ref-")
    result.ml_mean_scaled_utility = _mean(ml_utilities)
    result.reference_mean_scaled_utility = _mean(reference_utilities)
    result.ml_redundant_fact_rate = redundant / total_facts if total_facts else 0.0
    result.ml_mean_scope_arity = _mean(ml_arities)
    result.reference_mean_scope_arity = _mean(reference_arities)
    result.generation_seconds_per_sample = _mean(generation_times)
    return result


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _mean_ratings(
    average_ratings: dict[str, dict[str, float]], prefix: str
) -> dict[str, float]:
    """Average per-adjective ratings over all candidates with ``prefix``."""
    selected = {label: r for label, r in average_ratings.items() if label.startswith(prefix)}
    if not selected:
        return {}
    adjectives = next(iter(selected.values())).keys()
    return {
        adjective: _mean([ratings[adjective] for ratings in selected.values()])
        for adjective in adjectives
    }
