"""Cost estimation for the operations the pruning optimizer plans.

Section VI-C of the paper uses two cost estimates obtained from the
query-optimizer cost model:

* ``C_U(g)`` — cost of calculating utility for every fact in group
  ``g``; this requires a scope-match join between facts and data rows
  followed by aggregation.
* ``C_D(g)`` — cost of calculating per-group deviation bounds; this is
  a group-by over the data table without any join.

The estimator below mirrors a textbook cost model: joins cost
(left cardinality x matching right cardinality) row visits plus the
aggregation pass, group-bys cost one pass over the input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.relational.catalog import TableStatistics


@dataclass(frozen=True)
class CostEstimate:
    """A cost estimate, expressed in abstract row-visit units."""

    rows_processed: float
    description: str = ""

    def __add__(self, other: "CostEstimate") -> "CostEstimate":
        return CostEstimate(self.rows_processed + other.rows_processed, "combined")

    def __float__(self) -> float:
        return float(self.rows_processed)


class CostEstimator:
    """Estimate the cost of the utility / deviation queries of Algorithm 3.

    Parameters
    ----------
    data_stats:
        Statistics of the relation to summarize.
    tuple_cost:
        Cost charged per row visited (scale factor only; relative costs
        drive plan choice).
    """

    def __init__(self, data_stats: TableStatistics, tuple_cost: float = 1.0):
        self._stats = data_stats
        self._tuple_cost = float(tuple_cost)

    @property
    def data_row_count(self) -> int:
        """Number of rows in the data relation."""
        return self._stats.row_count

    def fact_count(self, group_columns: Sequence[str]) -> int:
        """Estimated number of facts in a fact group.

        A fact group is identified by the set of dimension columns it
        restricts; the number of facts equals the number of distinct
        value combinations in those columns (paper, Section VI-C).
        """
        return self._stats.combination_count(group_columns)

    def utility_cost(self, group_columns: Sequence[str]) -> CostEstimate:
        """C_U(g): cost of the utility join + aggregation for group ``g``.

        Every data row joins exactly one fact of the group (the fact
        whose scope values equal the row's values), so the join output
        has ``row_count`` rows; we charge the scan of the data table,
        the probe work against the fact table and the aggregation pass.
        """
        n = self._stats.row_count
        facts = self.fact_count(group_columns)
        join_output = n  # each row falls in exactly one scope of the group
        cost = self._tuple_cost * (n + facts + 2 * join_output)
        return CostEstimate(cost, f"utility join for group {tuple(group_columns)}")

    def deviation_cost(self, group_columns: Sequence[str]) -> CostEstimate:
        """C_D(g): cost of the per-group deviation bound query (no join)."""
        n = self._stats.row_count
        facts = self.fact_count(group_columns)
        cost = self._tuple_cost * (n + facts)
        return CostEstimate(cost, f"deviation group-by for group {tuple(group_columns)}")
