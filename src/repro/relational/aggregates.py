"""Aggregate functions for group-by queries.

The summarization algorithms rely on SUM (utility aggregation), AVG
(typical fact values), COUNT (group sizes for the cost model) and
MIN/MAX (bounds).  Aggregates ignore NULL inputs, following SQL
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence


def _non_null(values: Sequence[Any]) -> list[float]:
    return [float(v) for v in values if v is not None]


def aggregate_sum(values: Sequence[Any]) -> float:
    """SUM over non-NULL values (0.0 for empty input, like SQL COALESCE(SUM,0))."""
    present = _non_null(values)
    return float(sum(present)) if present else 0.0


def aggregate_avg(values: Sequence[Any]) -> float | None:
    """AVG over non-NULL values; None when no values are present."""
    present = _non_null(values)
    if not present:
        return None
    return float(sum(present) / len(present))


def aggregate_count(values: Sequence[Any]) -> int:
    """COUNT of non-NULL values."""
    return sum(1 for v in values if v is not None)


def aggregate_count_star(values: Sequence[Any]) -> int:
    """COUNT(*) — counts rows regardless of NULLs."""
    return len(values)


def aggregate_min(values: Sequence[Any]) -> float | None:
    """MIN over non-NULL values; None when empty."""
    present = _non_null(values)
    return min(present) if present else None


def aggregate_max(values: Sequence[Any]) -> float | None:
    """MAX over non-NULL values; None when empty."""
    present = _non_null(values)
    return max(present) if present else None


@dataclass(frozen=True)
class AggregateSpec:
    """A single aggregate in a group-by query.

    Attributes
    ----------
    function:
        Callable mapping a sequence of input values to the aggregate.
    input_column:
        Name of the column whose values feed the aggregate.  ``None``
        means COUNT(*)-style aggregation over whole rows.
    output_column:
        Name of the result column.
    """

    function: Callable[[Sequence[Any]], Any]
    input_column: str | None
    output_column: str

    def compute(self, values: Sequence[Any]) -> Any:
        """Apply the aggregate function to the collected input values."""
        return self.function(values)


def SUM(input_column: str, output_column: str | None = None) -> AggregateSpec:
    """SUM(input_column) AS output_column."""
    return AggregateSpec(aggregate_sum, input_column, output_column or f"sum_{input_column}")


def AVG(input_column: str, output_column: str | None = None) -> AggregateSpec:
    """AVG(input_column) AS output_column."""
    return AggregateSpec(aggregate_avg, input_column, output_column or f"avg_{input_column}")


def COUNT(input_column: str | None = None, output_column: str | None = None) -> AggregateSpec:
    """COUNT(input_column) or COUNT(*) when input_column is None."""
    if input_column is None:
        return AggregateSpec(aggregate_count_star, None, output_column or "count")
    return AggregateSpec(aggregate_count, input_column, output_column or f"count_{input_column}")


def MIN(input_column: str, output_column: str | None = None) -> AggregateSpec:
    """MIN(input_column) AS output_column."""
    return AggregateSpec(aggregate_min, input_column, output_column or f"min_{input_column}")


def MAX(input_column: str, output_column: str | None = None) -> AggregateSpec:
    """MAX(input_column) AS output_column."""
    return AggregateSpec(aggregate_max, input_column, output_column or f"max_{input_column}")
