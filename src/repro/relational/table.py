"""Row/column table abstraction used throughout the reproduction.

A :class:`Table` is an ordered collection of named, typed columns of
equal length.  Tables are immutable: every transformation returns a new
table.  This keeps the relational operators (`repro.relational.operators`)
free of aliasing surprises, mirroring how each SQL statement in the
paper's implementation produces a fresh result relation.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.relational.column import Column, ColumnType
from repro.relational.errors import SchemaError


class Table:
    """An immutable relational table.

    Parameters
    ----------
    name:
        Table name (used for error messages and the catalog).
    columns:
        Columns, all of the same length, with unique names.
    """

    __slots__ = ("_name", "_columns", "_by_name", "_nrows")

    def __init__(self, name: str, columns: Sequence[Column]):
        self._name = str(name)
        cols = list(columns)
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r}: duplicate column names in {names}")
        lengths = {len(c) for c in cols}
        if len(lengths) > 1:
            raise SchemaError(
                f"table {name!r}: columns have inconsistent lengths {sorted(lengths)}"
            )
        self._columns = cols
        self._by_name = {c.name: c for c in cols}
        self._nrows = lengths.pop() if lengths else 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        name: str,
        column_names: Sequence[str],
        column_types: Sequence[ColumnType],
        rows: Iterable[Sequence[Any]],
    ) -> "Table":
        """Build a table from row tuples.

        ``column_names`` and ``column_types`` define the schema; ``rows``
        is an iterable of sequences with one entry per column.
        """
        if len(column_names) != len(column_types):
            raise SchemaError("column_names and column_types must have equal length")
        materialised = [list(r) for r in rows]
        for r in materialised:
            if len(r) != len(column_names):
                raise SchemaError(
                    f"row {r!r} has {len(r)} values, expected {len(column_names)}"
                )
        columns = [
            Column(cname, ctype, [r[i] for r in materialised])
            for i, (cname, ctype) in enumerate(zip(column_names, column_types))
        ]
        return cls(name, columns)

    @classmethod
    def from_dict(
        cls,
        name: str,
        data: Mapping[str, Sequence[Any]],
        types: Mapping[str, ColumnType] | None = None,
    ) -> "Table":
        """Build a table from a mapping of column name to values.

        When ``types`` is omitted, column types are inferred: a column
        whose non-NULL values are all ints/floats becomes NUMERIC,
        otherwise CATEGORICAL.
        """
        columns = []
        for cname, values in data.items():
            if types is not None and cname in types:
                ctype = types[cname]
            else:
                ctype = _infer_type(values)
            columns.append(Column(cname, ctype, values))
        return cls(name, columns)

    @classmethod
    def empty(cls, name: str, schema: Sequence[tuple[str, ColumnType]]) -> "Table":
        """Create an empty table with the given schema."""
        return cls(name, [Column(cname, ctype, []) for cname, ctype in schema])

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Table name."""
        return self._name

    @property
    def columns(self) -> list[Column]:
        """The table's columns (copy of the list; columns are immutable)."""
        return list(self._columns)

    @property
    def column_names(self) -> list[str]:
        """Names of all columns, in schema order."""
        return [c.name for c in self._columns]

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._nrows

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    def __len__(self) -> int:
        return self._nrows

    def has_column(self, name: str) -> bool:
        """Return True when a column with ``name`` exists."""
        return name in self._by_name

    def column(self, name: str) -> Column:
        """Return the column with ``name``.

        Raises :class:`SchemaError` when the column does not exist.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"table {self._name!r} has no column {name!r}; "
                f"available: {self.column_names}"
            ) from None

    def value(self, row_index: int, column_name: str) -> Any:
        """Return the value at (``row_index``, ``column_name``)."""
        return self.column(column_name)[row_index]

    def row(self, index: int) -> dict[str, Any]:
        """Return row ``index`` as a dict from column name to value."""
        return {c.name: c[index] for c in self._columns}

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over rows as dicts."""
        for i in range(self._nrows):
            yield self.row(i)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Materialise all rows as a list of dicts."""
        return list(self.iter_rows())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self._columns == other._columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self._name!r}, rows={self._nrows}, cols={self.column_names})"

    # ------------------------------------------------------------------
    # Transformations (all return new tables)
    # ------------------------------------------------------------------
    def renamed(self, new_name: str) -> "Table":
        """Return the same table under a different name."""
        return Table(new_name, self._columns)

    def with_column(self, column: Column) -> "Table":
        """Return a new table with ``column`` appended or replaced.

        If a column of the same name exists, it is replaced in place
        (keeping schema order); otherwise the column is appended.
        """
        if len(column) != self._nrows and self._nrows > 0:
            raise SchemaError(
                f"new column {column.name!r} has {len(column)} rows, table has {self._nrows}"
            )
        if column.name in self._by_name:
            cols = [column if c.name == column.name else c for c in self._columns]
        else:
            cols = self._columns + [column]
        return Table(self._name, cols)

    def without_columns(self, names: Iterable[str]) -> "Table":
        """Return a new table lacking the given columns."""
        drop = set(names)
        cols = [c for c in self._columns if c.name not in drop]
        return Table(self._name, cols)

    def select_columns(self, names: Sequence[str]) -> "Table":
        """Return a new table with only the given columns, in that order."""
        return Table(self._name, [self.column(n) for n in names])

    def take(self, indices: Sequence[int]) -> "Table":
        """Return a new table with rows at ``indices`` (in order)."""
        return Table(self._name, [c.take(indices) for c in self._columns])

    def mask(self, keep: Sequence[bool]) -> "Table":
        """Return a new table keeping rows where ``keep`` is True."""
        return Table(self._name, [c.mask(keep) for c in self._columns])

    def head(self, n: int) -> "Table":
        """Return the first ``n`` rows."""
        n = max(0, min(n, self._nrows))
        return self.take(list(range(n)))

    def concat(self, other: "Table") -> "Table":
        """Append ``other``'s rows to this table.

        Schemas (names and types, in order) must match exactly.
        """
        if self.column_names != other.column_names:
            raise SchemaError(
                f"cannot concat: schemas differ ({self.column_names} vs {other.column_names})"
            )
        cols = []
        for mine, theirs in zip(self._columns, other._columns):
            if mine.ctype is not theirs.ctype:
                raise SchemaError(
                    f"cannot concat: column {mine.name!r} types differ "
                    f"({mine.ctype} vs {theirs.ctype})"
                )
            cols.append(mine.with_values(list(mine) + list(theirs)))
        return Table(self._name, cols)

    def sorted_by(self, column_name: str, descending: bool = False) -> "Table":
        """Return a new table sorted by one column (NULLs last)."""
        col = self.column(column_name)
        order = sorted(
            range(self._nrows),
            key=lambda i: (col[i] is None, col[i]),
            reverse=descending,
        )
        if descending:
            # keep NULLs last even when descending
            non_null = [i for i in order if col[i] is not None]
            nulls = [i for i in order if col[i] is None]
            order = non_null + nulls
        return self.take(order)


def _infer_type(values: Sequence[Any]) -> ColumnType:
    """Infer a column type from raw values (numbers -> NUMERIC, else CATEGORICAL)."""
    saw_value = False
    for v in values:
        if v is None:
            continue
        saw_value = True
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            return ColumnType.CATEGORICAL
    return ColumnType.NUMERIC if saw_value else ColumnType.CATEGORICAL
