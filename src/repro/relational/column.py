"""Typed columns backing the in-memory tables.

A column stores a homogeneous sequence of values.  Dimension columns in
the paper hold categorical values (strings) and may contain NULLs (used
by fact tables, where an unrestricted dimension is represented as NULL).
Target columns hold numeric values.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.relational.errors import SchemaError, TypeMismatchError


class ColumnType(enum.Enum):
    """Supported column types.

    ``CATEGORICAL`` columns hold strings (or None for NULL), ``NUMERIC``
    columns hold floats (NaN represents NULL), and ``INTEGER`` columns
    hold integers (None is not allowed).
    """

    CATEGORICAL = "categorical"
    NUMERIC = "numeric"
    INTEGER = "integer"


_NULL_SENTINEL = None


def _is_null(value: Any) -> bool:
    """Return True when ``value`` represents a NULL."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    return False


class Column:
    """An immutable, named, typed sequence of values.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    ctype:
        One of :class:`ColumnType`.
    values:
        The column contents.  Values are validated and normalised on
        construction (numeric values become ``float``, integer values
        ``int``, categorical values ``str`` or ``None``).
    """

    __slots__ = ("_name", "_ctype", "_values")

    def __init__(self, name: str, ctype: ColumnType, values: Iterable[Any]):
        if not name:
            raise SchemaError("column name must be a non-empty string")
        self._name = str(name)
        self._ctype = ctype
        self._values = self._normalise(list(values))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _normalise(self, raw: list[Any]) -> list[Any]:
        """Validate and coerce raw values according to the column type."""
        if self._ctype is ColumnType.CATEGORICAL:
            return [None if _is_null(v) else str(v) for v in raw]
        if self._ctype is ColumnType.NUMERIC:
            out: list[Any] = []
            for v in raw:
                if _is_null(v):
                    out.append(None)
                    continue
                try:
                    out.append(float(v))
                except (TypeError, ValueError) as exc:
                    raise TypeMismatchError(
                        f"column {self._name!r}: cannot interpret {v!r} as numeric"
                    ) from exc
            return out
        if self._ctype is ColumnType.INTEGER:
            out = []
            for v in raw:
                if _is_null(v):
                    raise TypeMismatchError(
                        f"column {self._name!r}: NULL not allowed in integer column"
                    )
                try:
                    out.append(int(v))
                except (TypeError, ValueError) as exc:
                    raise TypeMismatchError(
                        f"column {self._name!r}: cannot interpret {v!r} as integer"
                    ) from exc
            return out
        raise SchemaError(f"unknown column type {self._ctype!r}")

    @classmethod
    def categorical(cls, name: str, values: Iterable[Any]) -> "Column":
        """Create a categorical (string) column."""
        return cls(name, ColumnType.CATEGORICAL, values)

    @classmethod
    def numeric(cls, name: str, values: Iterable[Any]) -> "Column":
        """Create a numeric (float) column."""
        return cls(name, ColumnType.NUMERIC, values)

    @classmethod
    def integer(cls, name: str, values: Iterable[Any]) -> "Column":
        """Create an integer column."""
        return cls(name, ColumnType.INTEGER, values)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The column name."""
        return self._name

    @property
    def ctype(self) -> ColumnType:
        """The column type."""
        return self._ctype

    @property
    def values(self) -> list[Any]:
        """A copy of the column contents."""
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __getitem__(self, index: int) -> Any:
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return (
            self._name == other._name
            and self._ctype is other._ctype
            and self._values == other._values
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column({self._name!r}, {self._ctype.value}, n={len(self._values)})"

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def renamed(self, new_name: str) -> "Column":
        """Return a copy of this column under a different name."""
        return Column(new_name, self._ctype, self._values)

    def take(self, indices: Sequence[int]) -> "Column":
        """Return a new column with the rows at ``indices`` (in order)."""
        vals = self._values
        return Column(self._name, self._ctype, [vals[i] for i in indices])

    def mask(self, keep: Sequence[bool]) -> "Column":
        """Return a new column containing rows where ``keep`` is True."""
        if len(keep) != len(self._values):
            raise SchemaError(
                f"mask length {len(keep)} does not match column length {len(self._values)}"
            )
        return Column(
            self._name,
            self._ctype,
            [v for v, k in zip(self._values, keep) if k],
        )

    def with_values(self, values: Iterable[Any]) -> "Column":
        """Return a new column with the same name/type but new values."""
        return Column(self._name, self._ctype, values)

    # ------------------------------------------------------------------
    # Statistics and numeric access
    # ------------------------------------------------------------------
    def is_null(self, index: int) -> bool:
        """Return True when the value at ``index`` is NULL."""
        return self._values[index] is None

    def null_count(self) -> int:
        """Number of NULL entries."""
        return sum(1 for v in self._values if v is None)

    def distinct_values(self) -> list[Any]:
        """Distinct non-NULL values, in first-appearance order."""
        seen: dict[Any, None] = {}
        for v in self._values:
            if v is not None and v not in seen:
                seen[v] = None
        return list(seen)

    def distinct_count(self) -> int:
        """Number of distinct non-NULL values."""
        return len(set(v for v in self._values if v is not None))

    def to_numpy(self) -> np.ndarray:
        """Return numeric contents as a float numpy array (NULL -> NaN).

        Only valid for numeric and integer columns.
        """
        if self._ctype is ColumnType.CATEGORICAL:
            raise TypeMismatchError(
                f"column {self._name!r} is categorical; cannot convert to numpy floats"
            )
        return np.array(
            [float("nan") if v is None else float(v) for v in self._values],
            dtype=float,
        )

    def numeric_summary(self) -> dict[str, float]:
        """Return count / mean / min / max over non-NULL numeric values."""
        if self._ctype is ColumnType.CATEGORICAL:
            raise TypeMismatchError(
                f"column {self._name!r} is categorical; no numeric summary"
            )
        present = [float(v) for v in self._values if v is not None]
        if not present:
            return {"count": 0.0, "mean": float("nan"), "min": float("nan"), "max": float("nan")}
        return {
            "count": float(len(present)),
            "mean": float(sum(present) / len(present)),
            "min": float(min(present)),
            "max": float(max(present)),
        }
