"""Exceptions raised by the relational substrate."""


class RelationalError(Exception):
    """Base class for all errors raised by the relational engine."""


class SchemaError(RelationalError):
    """Raised when an operation references columns that do not exist or
    when column definitions are inconsistent (duplicate names, mismatched
    lengths, incompatible types)."""


class TypeMismatchError(RelationalError):
    """Raised when a value is inserted into or compared against a column
    of an incompatible type."""


class UnknownTableError(RelationalError):
    """Raised when the engine is asked for a table it does not know."""


class EmptyTableError(RelationalError):
    """Raised when an operation requires a non-empty table."""
