"""Relational operators: selection, projection, group-by, joins.

These are the Γ / σ / Π / ⋈ / × operators Algorithm 1 and 2 of the
paper are phrased in.  The one non-standard operator is
:func:`scope_match_join`, which implements the paper's join condition
``M``: a fact row joins a data row when, for every dimension column,
the fact either leaves the dimension unrestricted (NULL) or matches the
data row's value.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro.relational.aggregates import AggregateSpec
from repro.relational.column import Column, ColumnType
from repro.relational.errors import SchemaError
from repro.relational.expressions import Predicate
from repro.relational.table import Table


# ----------------------------------------------------------------------
# Selection and projection
# ----------------------------------------------------------------------
def select(table: Table, predicate: Predicate, name: str | None = None) -> Table:
    """σ — return rows of ``table`` satisfying ``predicate``."""
    mask = predicate.evaluate(table)
    result = table.mask(mask)
    return result.renamed(name) if name else result


def project(
    table: Table,
    columns: Sequence[str],
    name: str | None = None,
    distinct: bool = False,
) -> Table:
    """Π — keep only ``columns`` (optionally deduplicating rows)."""
    result = table.select_columns(list(columns))
    if distinct:
        # Materialise each column's value list once and dedup row tuples
        # in a single zip pass — the per-cell ``table.value`` accessor
        # re-resolves the column on every call, which dominated profiles.
        value_lists = [result.column(c).values for c in columns]
        seen: dict[tuple[Any, ...], int] = {}
        keep = [
            i
            for i, key in enumerate(zip(*value_lists))
            if seen.setdefault(key, i) == i
        ]
        if not columns:
            keep = [0] if result.num_rows else []
        result = result.take(keep)
    return result.renamed(name) if name else result


def extend(
    table: Table,
    column_name: str,
    ctype: ColumnType,
    fn: Callable[[Mapping[str, Any]], Any],
    name: str | None = None,
) -> Table:
    """Add a computed column (SQL ``SELECT *, expr AS column_name``).

    ``fn`` receives each row as a dict and returns the new value.
    """
    # Resolve every column's value list once; ``iter_rows`` re-resolves
    # each column per row, which made this the planner's hot spot.
    names = table.column_names
    value_lists = [table.column(n).values for n in names]
    values = [fn(dict(zip(names, row))) for row in zip(*value_lists)]
    result = table.with_column(Column(column_name, ctype, values))
    return result.renamed(name) if name else result


# ----------------------------------------------------------------------
# Grouping and aggregation
# ----------------------------------------------------------------------
def group_by(
    table: Table,
    keys: Sequence[str],
    aggregates: Sequence[AggregateSpec],
    name: str | None = None,
) -> Table:
    """Γ — group ``table`` by ``keys`` and compute ``aggregates``.

    With an empty key list, a single global group is produced (even for
    an empty input table, matching SQL's scalar aggregation).
    """
    for key in keys:
        if not table.has_column(key):
            raise SchemaError(f"group_by key {key!r} not in table {table.name!r}")
    for agg in aggregates:
        if agg.input_column is not None and not table.has_column(agg.input_column):
            raise SchemaError(
                f"aggregate input column {agg.input_column!r} not in table {table.name!r}"
            )

    # Collect row indices per group key (insertion-ordered).
    groups: dict[tuple[Any, ...], list[int]] = {}
    key_columns = [table.column(k) for k in keys]
    for i in range(table.num_rows):
        key = tuple(col[i] for col in key_columns)
        groups.setdefault(key, []).append(i)
    if not keys and not groups:
        groups[()] = []

    # Build output columns: keys first, then aggregates.
    out_key_values: list[list[Any]] = [[] for _ in keys]
    out_agg_values: list[list[Any]] = [[] for _ in aggregates]
    for key, indices in groups.items():
        for pos, value in enumerate(key):
            out_key_values[pos].append(value)
        for pos, agg in enumerate(aggregates):
            if agg.input_column is None:
                inputs: list[Any] = [None] * len(indices)
                # COUNT(*) counts rows; feed dummy entries of the right length.
                out_agg_values[pos].append(agg.compute(list(range(len(indices)))))
                continue
            col = table.column(agg.input_column)
            inputs = [col[i] for i in indices]
            out_agg_values[pos].append(agg.compute(inputs))

    columns: list[Column] = []
    for pos, key_name in enumerate(keys):
        original = table.column(key_name)
        columns.append(Column(key_name, original.ctype, out_key_values[pos]))
    for pos, agg in enumerate(aggregates):
        columns.append(Column(agg.output_column, ColumnType.NUMERIC, out_agg_values[pos]))
    return Table(name or f"groupby_{table.name}", columns)


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------
def _merged_columns(
    left: Table, right: Table, left_prefix: str, right_prefix: str
) -> tuple[list[str], list[str]]:
    """Resolve output column names, prefixing collisions."""
    left_names = []
    right_names = []
    collisions = set(left.column_names) & set(right.column_names)
    for cname in left.column_names:
        left_names.append(f"{left_prefix}{cname}" if cname in collisions else cname)
    for cname in right.column_names:
        right_names.append(f"{right_prefix}{cname}" if cname in collisions else cname)
    return left_names, right_names


def _materialise_join(
    left: Table,
    right: Table,
    pairs: Sequence[tuple[int, int]],
    name: str,
    left_prefix: str = "left_",
    right_prefix: str = "right_",
) -> Table:
    """Build the join output table from matched (left_index, right_index) pairs."""
    left_names, right_names = _merged_columns(left, right, left_prefix, right_prefix)
    columns: list[Column] = []
    left_indices = [p[0] for p in pairs]
    right_indices = [p[1] for p in pairs]
    for out_name, col in zip(left_names, left.columns):
        columns.append(col.take(left_indices).renamed(out_name))
    for out_name, col in zip(right_names, right.columns):
        columns.append(col.take(right_indices).renamed(out_name))
    return Table(name, columns)


def nested_loop_join(
    left: Table,
    right: Table,
    condition: Callable[[Mapping[str, Any], Mapping[str, Any]], bool],
    name: str | None = None,
    left_prefix: str = "left_",
    right_prefix: str = "right_",
) -> Table:
    """Theta-join with an arbitrary row-pair condition (nested loops)."""
    pairs: list[tuple[int, int]] = []
    left_rows = list(left.iter_rows())
    right_rows = list(right.iter_rows())
    for i, lrow in enumerate(left_rows):
        for j, rrow in enumerate(right_rows):
            if condition(lrow, rrow):
                pairs.append((i, j))
    return _materialise_join(
        left, right, pairs, name or f"{left.name}_join_{right.name}", left_prefix, right_prefix
    )


def hash_join(
    left: Table,
    right: Table,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    name: str | None = None,
    left_prefix: str = "left_",
    right_prefix: str = "right_",
) -> Table:
    """Equi-join on the given key columns using a hash table on the right input.

    NULL keys never match (SQL semantics).
    """
    if len(left_keys) != len(right_keys):
        raise SchemaError("hash_join requires equal numbers of left and right keys")
    right_key_cols = [right.column(k) for k in right_keys]
    left_key_cols = [left.column(k) for k in left_keys]

    index: dict[tuple[Any, ...], list[int]] = {}
    for j in range(right.num_rows):
        key = tuple(col[j] for col in right_key_cols)
        if any(v is None for v in key):
            continue
        index.setdefault(key, []).append(j)

    pairs: list[tuple[int, int]] = []
    for i in range(left.num_rows):
        key = tuple(col[i] for col in left_key_cols)
        if any(v is None for v in key):
            continue
        for j in index.get(key, ()):
            pairs.append((i, j))
    return _materialise_join(
        left, right, pairs, name or f"{left.name}_join_{right.name}", left_prefix, right_prefix
    )


def cross_product(
    left: Table,
    right: Table,
    name: str | None = None,
    left_prefix: str = "left_",
    right_prefix: str = "right_",
) -> Table:
    """× — Cartesian product of two tables."""
    pairs = [(i, j) for i in range(left.num_rows) for j in range(right.num_rows)]
    return _materialise_join(
        left, right, pairs, name or f"{left.name}_x_{right.name}", left_prefix, right_prefix
    )


def scope_match_join(
    data: Table,
    facts: Table,
    dimension_columns: Sequence[str],
    name: str | None = None,
    data_prefix: str = "data_",
    fact_prefix: str = "fact_",
) -> Table:
    """⋈M — join data rows with facts whose scope contains them.

    For every dimension column ``d`` in ``dimension_columns``, the fact
    must either have NULL (dimension unrestricted) or the same value as
    the data row.  Both tables must contain every dimension column.
    """
    for d in dimension_columns:
        if not data.has_column(d):
            raise SchemaError(f"data table {data.name!r} lacks dimension column {d!r}")
        if not facts.has_column(d):
            raise SchemaError(f"fact table {facts.name!r} lacks dimension column {d!r}")

    data_cols = [data.column(d) for d in dimension_columns]
    fact_cols = [facts.column(d) for d in dimension_columns]

    # Index facts by their restricted dimension values for cheap matching:
    # for each fact, remember which dimensions are restricted and to what.
    fact_restrictions: list[list[tuple[int, Any]]] = []
    for j in range(facts.num_rows):
        restricted = [
            (pos, fact_cols[pos][j])
            for pos in range(len(dimension_columns))
            if fact_cols[pos][j] is not None
        ]
        fact_restrictions.append(restricted)

    pairs: list[tuple[int, int]] = []
    for i in range(data.num_rows):
        row_values = [col[i] for col in data_cols]
        for j, restricted in enumerate(fact_restrictions):
            if all(row_values[pos] == value for pos, value in restricted):
                pairs.append((i, j))
    return _materialise_join(
        data,
        facts,
        pairs,
        name or f"{data.name}_scope_{facts.name}",
        data_prefix,
        fact_prefix,
    )
