"""In-memory relational substrate used by the speech summarizer.

The paper executes its algorithms as a series of SQL queries against
Postgres.  This package provides the equivalent relational vocabulary
(tables, predicates, joins, group-by aggregation, catalog statistics and
cost estimates) as a small columnar engine so the algorithms can be
expressed the same way without an external database server.
"""

from repro.relational.column import Column, ColumnType
from repro.relational.table import Table
from repro.relational.expressions import (
    AndPredicate,
    ColumnRef,
    ComparisonPredicate,
    EqualsPredicate,
    InPredicate,
    IsNullPredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
    TruePredicate,
)
from repro.relational.aggregates import AggregateSpec, AVG, COUNT, MAX, MIN, SUM
from repro.relational.operators import (
    cross_product,
    group_by,
    hash_join,
    nested_loop_join,
    project,
    scope_match_join,
    select,
)
from repro.relational.catalog import Catalog, TableStatistics
from repro.relational.planner import CostEstimator, CostEstimate
from repro.relational.csvio import read_csv, write_csv
from repro.relational.engine import RelationalEngine
from repro.relational.sql import SqlSession, execute_sql, parse_sql

__all__ = [
    "Column",
    "ColumnType",
    "Table",
    "Predicate",
    "TruePredicate",
    "EqualsPredicate",
    "ComparisonPredicate",
    "InPredicate",
    "IsNullPredicate",
    "AndPredicate",
    "OrPredicate",
    "NotPredicate",
    "ColumnRef",
    "AggregateSpec",
    "SUM",
    "AVG",
    "COUNT",
    "MIN",
    "MAX",
    "select",
    "project",
    "group_by",
    "nested_loop_join",
    "hash_join",
    "cross_product",
    "scope_match_join",
    "Catalog",
    "TableStatistics",
    "CostEstimator",
    "CostEstimate",
    "read_csv",
    "write_csv",
    "RelationalEngine",
    "SqlSession",
    "execute_sql",
    "parse_sql",
]
